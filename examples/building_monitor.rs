//! Building monitoring: the paper's surveillance / building-health
//! motivation. One proxy per floor, temperature sensors per floor, rare
//! events (equipment faults, doors) reported as semantic events, and a
//! retroactive "go back" query reconstructing the minutes before an
//! incident from the mote archives — the paper's intruder postmortem.
//!
//! Run with: `cargo run --release --example building_monitor`

use presto::core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto::sim::{SimDuration, SimTime};
use presto::workloads::LabParams;

fn main() {
    // Four floors, four sensors each; elevated event rate so the
    // postmortem has something to investigate.
    let mut system = PrestoSystem::new(SystemConfig {
        proxies: 4,
        sensors_per_proxy: 4,
        lab: LabParams {
            events_per_day: 4.0,
            ..LabParams::default()
        },
        ..SystemConfig::default()
    });

    println!("monitoring the building for 2 simulated days...");
    system.run(SimDuration::from_days(2));
    let report = system.report(2.0);
    println!(
        "{} sensors, {:.2} J/day/sensor, {} semantic events logged",
        system.total_sensors(),
        report.sensor_energy_per_day_j,
        report.events
    );

    let mut store = UnifiedStore::new(&mut system);

    // Security review: list every event, in corrected time order.
    let events = store.query(StoreQuery::Events {
        from: SimTime::ZERO,
        to: SimTime::from_days(2),
    });
    println!("\nincident log ({} entries):", events.events.len());
    for (t, sensor, ty) in events.events.iter().take(8) {
        println!("  {t}  floor {}  sensor {sensor}  type {ty}", sensor / 4);
    }

    // Postmortem: for the first incident, "go back" and reconstruct the
    // 30 minutes around it from the distributed store (the cache may not
    // hold it, in which case the proxy pulls from the mote's archive).
    if let Some(&(t, sensor, _)) = events.events.first() {
        let from = t - SimDuration::from_mins(15);
        let to = t + SimDuration::from_mins(15);
        let r = store.query(StoreQuery::Past {
            sensor,
            from,
            to,
            tolerance: 0.5,
        });
        println!(
            "\npostmortem around {t} (sensor {sensor}): {} samples via {:?}",
            r.series.len(),
            r.source
        );
        if let (Some(first), Some(max)) = (
            r.series.first(),
            r.series
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values")),
        ) {
            println!(
                "  baseline {:.2} degC -> peak {:.2} degC at {}",
                first.1, max.1, max.0
            );
        }
    } else {
        println!("\nno incidents in this run — try another seed");
    }
}
