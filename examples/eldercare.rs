//! Elder-care activity monitoring: the paper's "mostly predictable with
//! occasional unpredictable events" application. A wearable's activity
//! level follows a daily routine the model learns; anomalies (falls,
//! wandering) defeat the model and are pushed immediately, while routine
//! hours cost almost nothing.
//!
//! Run with: `cargo run --release --example eldercare`

use presto::models::{ModelKind, Predictor, SeasonalArModel};
use presto::net::LinkModel;
use presto::sensor::{DownlinkMsg, PushPolicy, SensorConfig, SensorNode, UplinkPayload};
use presto::sim::{SimDuration, SimTime};
use presto::workloads::EldercareGen;

fn main() {
    let epoch = SimDuration::from_mins(1);

    // A quiet training week teaches the routine.
    let mut train_gen = EldercareGen::new(epoch, 0.0, 21);
    let history: Vec<(SimTime, f64)> = train_gen
        .generate(SimDuration::from_days(7))
        .into_iter()
        .map(|s| (s.timestamp, s.level))
        .collect();
    let (model, report) = SeasonalArModel::train(&history, 48, 2);
    println!(
        "trained routine model on {} samples ({} cycles at the proxy, residual sigma {:.3})",
        report.samples, report.train_cycles, report.residual_sigma
    );

    // The wearable runs model-driven push with the trained replica.
    let mut node = SensorNode::new(
        0,
        SensorConfig {
            sample_period: epoch,
            push: PushPolicy::ModelDriven { tolerance: 0.25 },
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    node.handle_downlink(
        SimTime::ZERO,
        &DownlinkMsg::ModelUpdate {
            kind: ModelKind::SeasonalAr,
            params: model.encode_params(),
        },
        None,
    );

    // A live week with ~1.5 anomalies per day.
    let mut live_gen = EldercareGen::new(epoch, 1.5, 22);
    let live = live_gen.generate(SimDuration::from_days(7));
    let mut anomaly_reports = 0usize;
    let mut level_pushes = 0usize;
    let mut anomalies = 0usize;
    for s in &live {
        let msgs = node.on_sample(s.timestamp, s.level, None);
        level_pushes += msgs
            .iter()
            .filter(|m| matches!(m.payload, UplinkPayload::Deviation { .. }))
            .count();
        if s.anomaly_onset {
            anomalies += 1;
            if node
                .on_event(s.timestamp, s.state.code(), Vec::new(), None)
                .is_some()
            {
                anomaly_reports += 1;
            }
        }
    }

    let stats = node.stats();
    let ledger = node.ledger();
    println!("\none live week ({} samples):", live.len());
    println!("  anomalies injected:        {anomalies}");
    println!("  anomaly reports delivered: {anomaly_reports}");
    println!("  level deviation pushes:    {level_pushes}");
    println!(
        "  push rate: {:.1}% of samples (routine hours are silent)",
        100.0 * level_pushes as f64 / live.len() as f64
    );
    println!(
        "  sensor energy: {:.2} J total ({:.2} J radio, {:.4} J cpu, {:.4} J flash)",
        ledger.total(),
        ledger.radio_total(),
        ledger.category(presto::sim::EnergyCategory::Cpu),
        ledger.storage_total(),
    );
    println!(
        "  archive: {} records appended, pulls served: {}",
        stats.samples, stats.pulls_served
    );
}
