//! Quickstart: build a small PRESTO deployment, run it for a day, and
//! issue NOW / PAST / event queries against the unified logical store.
//!
//! Run with: `cargo run --release --example quickstart`

use presto::core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto::sim::{SimDuration, SimTime};

fn main() {
    // Two proxies, three sensors each, default Intel-Lab-style workload
    // with occasional rare events.
    let mut system = PrestoSystem::new(SystemConfig {
        proxies: 2,
        sensors_per_proxy: 3,
        ..SystemConfig::default()
    });

    println!("running 1 simulated day of the deployment...");
    system.run(SimDuration::from_days(1));

    let report = system.report(1.0);
    println!(
        "sensors: {}  |  mean sensor energy: {:.2} J/day  |  uplink messages: {}  |  models pushed: {}",
        system.total_sensors(),
        report.sensor_energy_per_day_j,
        report.uplinks,
        report.models_pushed
    );

    let truth = system.truth.clone();
    let mut store = UnifiedStore::new(&mut system);

    // NOW query: answered from cache, extrapolation, or a pull.
    for sensor in [0u16, 4] {
        let r = store.query(StoreQuery::Now {
            sensor,
            tolerance: 1.0,
        });
        println!(
            "NOW sensor {sensor}: {:.2} degC (truth {:.2}, source {:?}, latency {}, {} index hops)",
            r.value.unwrap_or(f64::NAN),
            truth[sensor as usize],
            r.source,
            r.latency,
            r.index_hops
        );
    }

    // PAST query: an hour of history from earlier in the day.
    let r = store.query(StoreQuery::Past {
        sensor: 1,
        from: SimTime::from_hours(6),
        to: SimTime::from_hours(7),
        tolerance: 1.0,
    });
    println!(
        "PAST sensor 1, 06:00-07:00: {} samples (source {:?})",
        r.series.len(),
        r.source
    );

    // Unified event view across all proxies.
    let r = store.query(StoreQuery::Events {
        from: SimTime::ZERO,
        to: SimTime::from_days(1),
    });
    println!("events across the deployment today: {}", r.events.len());
    for (t, sensor, ty) in r.events.iter().take(5) {
        println!("  {t}  sensor {sensor}  type {ty}");
    }
}
