//! Vehicle-traffic monitoring: the paper's order-preserving-view
//! motivation. Detectors along a road archive full signatures locally
//! and push classified detections; clocks drift; the unified view must
//! still present detections in true passage order so commuters can query
//! trajectories.
//!
//! Run with: `cargo run --release --example traffic_monitor`

use presto::index::{ClockCorrector, DriftClock, SkipGraph, UnifiedView};
use presto::sim::{SimDuration, SimRng, SimTime};
use presto::workloads::{TrafficGen, TrafficParams, VehicleType};

fn main() {
    let sensors = 6usize;
    let mut gen = TrafficGen::new(
        TrafficParams {
            sensors,
            ..TrafficParams::default()
        },
        99,
    );

    // Morning rush hour.
    let dets = gen.generate(SimTime::from_hours(7), SimDuration::from_hours(3));
    println!(
        "{} detections across {sensors} detectors (07:00-10:00)",
        dets.len()
    );
    let buses = dets
        .iter()
        .filter(|d| d.vehicle_type == VehicleType::Bus)
        .count();
    println!("  of which buses: {}", buses / sensors);

    // Each detector's clock drifts; calibrate correctors from beacons.
    let mut rng = SimRng::new(5);
    let clocks: Vec<DriftClock> = (0..sensors)
        .map(|_| DriftClock {
            offset_s: rng.gaussian_ms(0.0, 10.0),
            skew_ppm: rng.gaussian_ms(0.0, 60.0),
        })
        .collect();
    let mut correctors: Vec<ClockCorrector> = (0..sensors).map(|_| ClockCorrector::new()).collect();
    for h in 0..12u64 {
        let t = SimTime::from_hours(h);
        for (c, corr) in clocks.iter().zip(correctors.iter_mut()) {
            corr.observe_beacon(c.local_time(t), t);
        }
    }

    // Build the unified ordered view over per-detector streams with raw
    // (drifting) timestamps, corrected back to reference time.
    let mut view: UnifiedView<(usize, VehicleType)> = UnifiedView::new();
    for s in 0..sensors {
        let stream: Vec<(SimTime, (usize, VehicleType))> = dets
            .iter()
            .filter(|d| d.sensor == s)
            .map(|d| (clocks[s].local_time(d.timestamp), (s, d.vehicle_type)))
            .collect();
        view.add_stream(s, &correctors[s], stream);
    }

    // Verify the order-preserving property: within the view, each
    // vehicle's detections appear in detector order 0,1,2,...
    let ordered = view.ordered();
    println!("unified view holds {} corrected detections", ordered.len());
    let mut in_order = 0usize;
    let mut total = 0usize;
    let mut last_seen: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for item in ordered {
        let (detector, _) = item.item;
        let count = last_seen.get(&detector).copied().unwrap_or(0) + 1;
        last_seen.insert(detector, count);
        total += 1;
        if detector == 0 || last_seen.get(&(detector - 1)).copied().unwrap_or(0) >= count {
            in_order += 1;
        }
    }
    println!("order-preservation check: {in_order}/{total} detections consistent with road order");

    // The distributed index over proxy time-ranges: commuters ask "what
    // passed detector 3 between 08:00 and 08:10?" — the skip graph finds
    // the owning proxy in O(log n) hops.
    let mut index: SkipGraph<u64> = SkipGraph::new(1);
    for s in 0..sensors as u64 {
        index.insert(s * 1000);
    }
    let intro = index.introducer().expect("non-empty index");
    let (owner, stats) = index.search(intro, 3 * 1000 + 7);
    println!(
        "index lookup for detector 3's range: owner key {:?} in {} hops",
        owner, stats.hops
    );
}
