//! Offline shim for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! API-compatible stand-ins for `Criterion`, `BenchmarkGroup`,
//! `Bencher`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is a straightforward
//! warmup-then-measure loop over `std::time::Instant` — good enough to
//! compare arms against each other (the ratios the benches assert on),
//! without criterion's statistical machinery, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark (split across iterations).
const TARGET_MEASURE: Duration = Duration::from_millis(300);

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n[bench group] {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named benchmark id, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Calibration pass: one iteration, to size the timed batches.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = (TARGET_MEASURE.as_nanos() / samples.max(1) as u128).max(1);
    b.iters = ((per_sample / per_iter.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        f(&mut b);
        let mean = b.elapsed / b.iters.max(1) as u32;
        best = best.min(mean);
        total += b.elapsed;
        total_iters += b.iters;
    }
    let mean = if total_iters > 0 {
        Duration::from_nanos((total.as_nanos() / total_iters as u128) as u64)
    } else {
        Duration::ZERO
    };
    eprintln!("  {label}: mean {mean:?}/iter, best {best:?}/iter ({samples} samples x {} iters)", b.iters);
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran > 0);
    }
}
