//! Offline shim for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides API-compatible stand-ins for the pieces the test suites
//! consume: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! range and tuple [`Strategy`] implementations, [`collection::vec`],
//! [`any`], and [`ProptestConfig`].
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its generated inputs and the
//!   case index, but is not minimized;
//! * generation is a deterministic xorshift stream seeded from the test
//!   name, so failures reproduce exactly across runs;
//! * the default case count is 64 (not 256) to keep CI fast.

use std::ops::Range;

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator state (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from the test name so every test draws an
    /// independent, reproducible sequence.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name; avoid the all-zero state.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator. The shim generates eagerly (no shrink trees).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )+};
}

unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident $i:tt),+))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain.
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A length specification: an exact size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec` — a vector of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Asserts a condition inside a property; failure reports the generated
/// inputs for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs: Vec<String> =
                        vec![$(format!("  {} = {:?}", stringify!($arg), $arg)),+];
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body }),
                    );
                    if let Err(__panic) = __outcome {
                        eprintln!(
                            "proptest shim: case {}/{} of `{}` failed with inputs:",
                            __case + 1,
                            __cfg.cases,
                            stringify!($name),
                        );
                        for __line in &__inputs {
                            eprintln!("{__line}");
                        }
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

/// The `proptest!` block macro: one or more `#[test]` functions whose
/// arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let u = (5u64..17).generate(&mut rng);
            assert!((5..17).contains(&u));
            let i = (-30i64..-3).generate(&mut rng);
            assert!((-30..-3).contains(&i));
            let f = (-2.5f64..7.5).generate(&mut rng);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_spec() {
        let mut rng = TestRng::for_test("vecs");
        for _ in 0..200 {
            let v = collection::vec(0u8..10, 3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v.len()));
            let exact = collection::vec(0.0f64..1.0, 16usize).generate(&mut rng);
            assert_eq!(exact.len(), 16);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        let mut c = TestRng::for_test("other");
        let draw = |r: &mut TestRng| (0..32).map(|_| r.next_u64()).collect::<Vec<_>>();
        assert_eq!(draw(&mut a), draw(&mut b));
        assert_ne!(draw(&mut a), draw(&mut c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_generates_and_runs(
            x in 0u64..100,
            xs in collection::vec(any::<u8>(), 0..50),
            pair in (0u32..10, -1.0f64..1.0),
        ) {
            prop_assert!(x < 100);
            prop_assert!(xs.len() < 50);
            prop_assert!(pair.0 < 10);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }
    }
}
