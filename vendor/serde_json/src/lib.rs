//! Offline shim for the sliver of `serde_json` this workspace uses.
//!
//! `presto-bench` writes human-readable JSON report artifacts via
//! `to_string_pretty`. Without crates.io access, this facade renders a
//! value by transliterating its pretty `Debug` output (`{:#?}`) into
//! JSON: struct names are dropped, field names are quoted, tuples
//! become arrays, `None`/`NaN`/`inf` become `null`, and bare enum
//! variants become strings. That covers the plain-old-data report rows
//! (numbers, strings, vectors, nested structs) the bench crate derives
//! `Serialize` on; it is not a general serde implementation.

use std::fmt;

/// Rendering error (the transliterator itself is infallible; this exists
/// for signature compatibility).
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Pretty-prints `value` as JSON derived from its `Debug` output.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(debug_to_json(&format!("{value:#?}")))
}

/// Compact variant (same output as pretty in this shim).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

fn is_word_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Transliterates Rust pretty-`Debug` output into JSON.
fn debug_to_json(debug: &str) -> String {
    let mut out = String::with_capacity(debug.len());
    let chars: Vec<char> = debug.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '"' => {
                // String literal: copy verbatim, honouring escapes.
                out.push('"');
                i += 1;
                while i < chars.len() {
                    let s = chars[i];
                    out.push(s);
                    i += 1;
                    if s == '\\' && i < chars.len() {
                        out.push(chars[i]);
                        i += 1;
                    } else if s == '"' {
                        break;
                    }
                }
            }
            '(' => {
                out.push('[');
                i += 1;
            }
            ')' => {
                out.push(']');
                i += 1;
            }
            '-' | '0'..='9' => {
                // A number — or a negative special float like `-inf`.
                let start = i;
                if c == '-' {
                    i += 1;
                }
                if i < chars.len() && (chars[i] == 'i' || chars[i] == 'N') {
                    while i < chars.len() && is_word_char(chars[i]) {
                        i += 1;
                    }
                    out.push_str("null");
                } else {
                    while i < chars.len()
                        && (chars[i].is_ascii_digit()
                            || matches!(chars[i], '.' | 'e' | 'E' | '+' | '-'))
                    {
                        i += 1;
                    }
                    out.extend(&chars[start..i]);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                // An identifier: struct name, field name, or bare value.
                let start = i;
                while i < chars.len() && (is_word_char(chars[i]) || chars[i] == ':' && i + 1 < chars.len() && chars[i + 1] == ':') {
                    if chars[i] == ':' {
                        i += 2; // skip `::` path separator
                    } else {
                        i += 1;
                    }
                }
                let word: String = chars[start..i].iter().collect();
                let mut j = i;
                while j < chars.len() && chars[j] == ' ' {
                    j += 1;
                }
                match chars.get(j) {
                    Some('{') | Some('(') => {
                        // `Name {` struct / `Some(` tuple wrapper: drop
                        // the name, keep the delimiter.
                        i = j;
                    }
                    Some(':') => {
                        // Field name.
                        out.push('"');
                        out.push_str(&word);
                        out.push_str("\":");
                        i = j + 1;
                    }
                    _ => {
                        // Bare value: special forms map to JSON scalars,
                        // unit enum variants become strings.
                        match word.as_str() {
                            "None" | "NaN" | "inf" => out.push_str("null"),
                            "true" | "false" => out.push_str(&word),
                            _ => {
                                out.push('"');
                                out.push_str(&word);
                                out.push('"');
                            }
                        }
                    }
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    strip_trailing_commas(&out)
}

/// Removes `,` that directly precede a closing `}` or `]` (modulo
/// whitespace) — valid in Rust Debug output, invalid in JSON.
fn strip_trailing_commas(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == ',' {
            let mut j = i + 1;
            while j < chars.len() && chars[j].is_whitespace() {
                j += 1;
            }
            if matches!(chars.get(j), Some('}') | Some(']')) {
                i += 1;
                continue;
            }
        }
        // Strings must pass through untouched.
        if chars[i] == '"' {
            out.push('"');
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                out.push(c);
                i += 1;
                if c == '\\' && i < chars.len() {
                    out.push(chars[i]);
                    i += 1;
                } else if c == '"' {
                    break;
                }
            }
            continue;
        }
        out.push(chars[i]);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    #[allow(dead_code)]
    struct Row {
        name: &'static str,
        energy_j: f64,
        counts: Vec<u64>,
        pair: (f64, f64),
        missing: Option<f64>,
        bad: f64,
    }

    #[test]
    fn renders_struct_rows_as_json() {
        let row = Row {
            name: "direct",
            energy_j: 12.5,
            counts: vec![1, 2],
            pair: (0.5, -1.5),
            missing: None,
            bad: f64::NAN,
        };
        let json = to_string_pretty(&row).unwrap();
        assert!(json.contains("\"name\": \"direct\""), "{json}");
        assert!(json.contains("\"energy_j\": 12.5"), "{json}");
        assert!(json.contains("\"missing\": null"), "{json}");
        assert!(json.contains("\"bad\": null"), "{json}");
        assert!(!json.contains("Row"), "{json}");
        assert!(!json.contains(",\n}"), "{json}");
        // Tuples become arrays.
        assert!(json.contains('['), "{json}");
        assert!(!json.contains('('), "{json}");
    }

    #[test]
    fn vectors_of_structs() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct P {
            x: u32,
        }
        let json = to_string_pretty(&vec![P { x: 1 }, P { x: 2 }]).unwrap();
        assert!(json.contains("\"x\": 1"), "{json}");
        assert!(json.trim_start().starts_with('['), "{json}");
        assert!(json.trim_end().ends_with(']'), "{json}");
    }

    #[test]
    fn strings_with_braces_survive() {
        let json = to_string_pretty(&"a {b}, c").unwrap();
        assert_eq!(json, "\"a {b}, c\"");
    }
}
