//! Offline shim for the sliver of `serde` this workspace uses.
//!
//! `presto-bench` derives `Serialize` on plain-old-data report rows and
//! renders them with `serde_json::to_string_pretty`. Without crates.io
//! access we satisfy that with a facade: `Serialize` is a marker trait
//! blanket-implemented for every `Debug` type, and the vendored
//! `serde_json` pretty-printer renders values by transliterating their
//! `{:#?}` output into JSON. The `#[derive(Serialize)]` attribute is a
//! no-op provided by the vendored `serde_derive`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait satisfied by any `Debug` type; the vendored
/// `serde_json` uses the `Debug` supertrait to render values.
pub trait Serialize: std::fmt::Debug {}

impl<T: std::fmt::Debug + ?Sized> Serialize for T {}
