//! No-op `#[derive(Serialize)]` backing the vendored serde facade.
//!
//! The vendored `serde` shim implements `Serialize` as a blanket impl
//! over `Debug`, so the derive has nothing to generate — it only needs
//! to exist so `#[derive(Clone, Debug, Serialize)]` keeps compiling
//! without crates.io access.

use proc_macro::TokenStream;

/// Accepts the item and emits nothing; the blanket impl in the `serde`
/// shim provides the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Same no-op treatment for deserialization, should a future crate
/// derive it.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
