//! Simulated NOR/NAND-style flash device.
//!
//! Semantics enforced (the constraints a real archival file system must
//! design around):
//!
//! * a page can only be programmed when erased, and only whole pages are
//!   programmed;
//! * erasure happens per block (a fixed number of pages), never per page;
//! * every operation costs energy, charged to the owning node's ledger;
//! * erases increment per-block wear counters.

use presto_net::FlashModel;
use presto_sim::{EnergyCategory, EnergyLedger};

/// Errors from flash operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// Page or block index beyond the device capacity.
    OutOfRange,
    /// Attempt to program a page that has not been erased.
    NotErased,
    /// Attempt to read a page that holds no data.
    Empty,
    /// Data larger than the page size.
    TooLarge,
}

impl std::fmt::Display for FlashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FlashError::OutOfRange => "index out of range",
            FlashError::NotErased => "page not erased",
            FlashError::Empty => "page empty",
            FlashError::TooLarge => "data exceeds page size",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FlashError {}

/// Operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Pages programmed.
    pub programs: u64,
    /// Pages read.
    pub reads: u64,
    /// Blocks erased.
    pub erases: u64,
    /// Payload bytes programmed.
    pub bytes_written: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
}

presto_telemetry::observe_counters!(FlashStats {
    programs,
    reads,
    erases,
    bytes_written,
    bytes_read,
});

impl FlashStats {
    /// Accumulates another device's counters (fleet aggregation).
    pub fn merge(&mut self, other: &FlashStats) {
        self.programs += other.programs;
        self.reads += other.reads;
        self.erases += other.erases;
        self.bytes_written += other.bytes_written;
        self.bytes_read += other.bytes_read;
    }
}

/// A simulated flash device.
#[derive(Clone, Debug)]
pub struct FlashDevice {
    model: FlashModel,
    pages: Vec<Option<Vec<u8>>>,
    wear: Vec<u64>,
    stats: FlashStats,
}

impl FlashDevice {
    /// Creates a device with at least `capacity_bytes` of storage
    /// (rounded up to whole blocks).
    pub fn new(model: FlashModel, capacity_bytes: usize) -> Self {
        let block_bytes = model.page_bytes * model.pages_per_block;
        let blocks = capacity_bytes.div_ceil(block_bytes).max(1);
        let pages = blocks * model.pages_per_block;
        FlashDevice {
            pages: vec![None; pages],
            wear: vec![0; blocks],
            model,
            stats: FlashStats::default(),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.model.page_bytes
    }

    /// Pages per erase block.
    pub fn pages_per_block(&self) -> usize {
        self.model.pages_per_block
    }

    /// Total page count.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total block count.
    pub fn block_count(&self) -> usize {
        self.wear.len()
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.pages.len() * self.model.page_bytes
    }

    /// Operation counters so far.
    pub fn stats(&self) -> FlashStats {
        self.stats
    }

    /// Erase count of one block.
    pub fn wear(&self, block: usize) -> Option<u64> {
        self.wear.get(block).copied()
    }

    /// Programs `data` into an erased page, charging write energy.
    pub fn program(
        &mut self,
        page: usize,
        data: &[u8],
        ledger: &mut EnergyLedger,
    ) -> Result<(), FlashError> {
        if page >= self.pages.len() {
            return Err(FlashError::OutOfRange);
        }
        if data.len() > self.model.page_bytes {
            return Err(FlashError::TooLarge);
        }
        if self.pages[page].is_some() {
            return Err(FlashError::NotErased);
        }
        // A program touches the whole page electrically regardless of the
        // payload length.
        ledger.charge(
            EnergyCategory::FlashWrite,
            self.model.write_per_byte_j * self.model.page_bytes as f64,
        );
        self.stats.programs += 1;
        self.stats.bytes_written += data.len() as u64;
        self.pages[page] = Some(data.to_vec());
        Ok(())
    }

    /// Reads a programmed page, charging read energy.
    pub fn read(&mut self, page: usize, ledger: &mut EnergyLedger) -> Result<Vec<u8>, FlashError> {
        if page >= self.pages.len() {
            return Err(FlashError::OutOfRange);
        }
        let Some(data) = &self.pages[page] else {
            return Err(FlashError::Empty);
        };
        ledger.charge(
            EnergyCategory::FlashRead,
            self.model.read_per_byte_j * self.model.page_bytes as f64,
        );
        self.stats.reads += 1;
        self.stats.bytes_read += data.len() as u64;
        Ok(data.clone())
    }

    /// True if the page currently holds data.
    pub fn is_programmed(&self, page: usize) -> bool {
        self.pages.get(page).is_some_and(|p| p.is_some())
    }

    /// Erases a whole block, charging erase energy and bumping wear.
    pub fn erase_block(
        &mut self,
        block: usize,
        ledger: &mut EnergyLedger,
    ) -> Result<(), FlashError> {
        if block >= self.wear.len() {
            return Err(FlashError::OutOfRange);
        }
        let start = block * self.model.pages_per_block;
        for p in start..start + self.model.pages_per_block {
            self.pages[p] = None;
        }
        ledger.charge(EnergyCategory::FlashWrite, self.model.erase_per_block_j);
        self.stats.erases += 1;
        self.wear[block] += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> FlashDevice {
        FlashDevice::new(FlashModel::dataflash(), 64 * 1024)
    }

    #[test]
    fn capacity_rounds_to_blocks() {
        let d = device();
        assert_eq!(d.page_bytes(), 264);
        assert_eq!(d.pages_per_block(), 8);
        assert!(d.capacity_bytes() >= 64 * 1024);
        assert_eq!(d.page_count() % d.pages_per_block(), 0);
    }

    #[test]
    fn program_read_roundtrip() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        d.program(0, b"hello flash", &mut l).unwrap();
        assert_eq!(d.read(0, &mut l).unwrap(), b"hello flash");
        assert!(d.is_programmed(0));
        assert_eq!(d.stats().programs, 1);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn program_twice_without_erase_fails() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        d.program(3, b"a", &mut l).unwrap();
        assert_eq!(d.program(3, b"b", &mut l), Err(FlashError::NotErased));
    }

    #[test]
    fn erase_enables_reprogramming_and_bumps_wear() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        d.program(1, b"x", &mut l).unwrap();
        assert_eq!(d.wear(0), Some(0));
        d.erase_block(0, &mut l).unwrap();
        assert_eq!(d.wear(0), Some(1));
        assert!(!d.is_programmed(1));
        assert_eq!(d.read(1, &mut l), Err(FlashError::Empty));
        d.program(1, b"y", &mut l).unwrap();
        assert_eq!(d.read(1, &mut l).unwrap(), b"y");
    }

    #[test]
    fn erase_only_touches_its_block() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        let ppb = d.pages_per_block();
        d.program(0, b"block0", &mut l).unwrap();
        d.program(ppb, b"block1", &mut l).unwrap();
        d.erase_block(0, &mut l).unwrap();
        assert!(!d.is_programmed(0));
        assert_eq!(d.read(ppb, &mut l).unwrap(), b"block1");
    }

    #[test]
    fn bounds_checked() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        let n = d.page_count();
        assert_eq!(d.program(n, b"x", &mut l), Err(FlashError::OutOfRange));
        assert_eq!(
            d.read(n, &mut l),
            Err(FlashError::Empty).or(Err(FlashError::OutOfRange))
        );
        assert_eq!(
            d.erase_block(d.block_count(), &mut l),
            Err(FlashError::OutOfRange)
        );
        let big = vec![0u8; d.page_bytes() + 1];
        assert_eq!(d.program(0, &big, &mut l), Err(FlashError::TooLarge));
    }

    #[test]
    fn energy_is_charged_per_operation() {
        let mut d = device();
        let mut l = EnergyLedger::new();
        d.program(0, &[0u8; 264], &mut l).unwrap();
        let after_write = l.category(EnergyCategory::FlashWrite);
        assert!((after_write - 0.257e-6 * 264.0).abs() < 1e-12);
        d.read(0, &mut l).unwrap();
        assert!(l.category(EnergyCategory::FlashRead) > 0.0);
        d.erase_block(0, &mut l).unwrap();
        assert!(l.category(EnergyCategory::FlashWrite) > after_write);
    }

    #[test]
    fn flash_writes_are_far_cheaper_than_radio() {
        // The technology-trend argument of paper §1, checked end to end:
        // archiving a page locally costs ~100× less than radioing it.
        let mut d = device();
        let mut l = EnergyLedger::new();
        d.program(0, &[0u8; 264], &mut l).unwrap();
        let flash_j = l.total();
        let radio_j = presto_net::RadioModel::mica2().tx_energy(264);
        assert!(radio_j / flash_j > 30.0, "ratio {}", radio_j / flash_j);
    }
}
