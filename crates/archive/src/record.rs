//! On-flash record formats.
//!
//! Three record kinds cover the paper's archival needs:
//!
//! * **Scalar** — a raw sensor reading ("complete local archive of past
//!   data").
//! * **Event** — a semantic event blob ("signatures of detected vehicles
//!   would constitute useful sensor data that is archived locally").
//! * **Summary** — a wavelet-aged replacement for a reclaimed segment.
//!
//! Wire layout: `kind:u8 · ts_micros:u64 LE · len:u16 LE · payload`.

use presto_sim::SimTime;
use presto_wavelet::AgedSummary;

/// Data quality tag attached to query results.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quality {
    /// Reconstructed from a raw record.
    Exact,
    /// Reconstructed from an aged summary at the given ladder level.
    Aged(u8),
}

/// Payload of an archive record.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordPayload {
    /// A scalar reading.
    Scalar(f64),
    /// An opaque semantic event (type id + application bytes).
    Event {
        /// Application-defined event type.
        event_type: u16,
        /// Application payload (e.g. a detection signature).
        data: Vec<u8>,
    },
    /// An aged summary covering `[start, end]` with `count` original
    /// samples.
    Summary {
        /// Aging ladder level.
        level: u8,
        /// First covered timestamp.
        start: SimTime,
        /// Last covered timestamp.
        end: SimTime,
        /// Number of original samples covered.
        count: u32,
        /// Serialized summary payload.
        bytes: Vec<u8>,
    },
}

/// A timestamped archive record.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Acquisition (or summarization) time.
    pub timestamp: SimTime,
    /// The payload.
    pub payload: RecordPayload,
}

impl Record {
    /// A scalar reading record.
    pub fn scalar(t: SimTime, value: f64) -> Self {
        Record {
            timestamp: t,
            payload: RecordPayload::Scalar(value),
        }
    }

    /// A semantic event record.
    pub fn event(t: SimTime, event_type: u16, data: Vec<u8>) -> Self {
        Record {
            timestamp: t,
            payload: RecordPayload::Event { event_type, data },
        }
    }

    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, body): (u8, Vec<u8>) = match &self.payload {
            RecordPayload::Scalar(v) => (0, (*v as f32).to_le_bytes().to_vec()),
            RecordPayload::Event { event_type, data } => {
                let mut b = Vec::with_capacity(2 + data.len());
                b.extend_from_slice(&event_type.to_le_bytes());
                b.extend_from_slice(data);
                (1, b)
            }
            RecordPayload::Summary {
                level,
                start,
                end,
                count,
                bytes,
            } => {
                let mut b = Vec::with_capacity(21 + bytes.len());
                b.push(*level);
                b.extend_from_slice(&start.as_micros().to_le_bytes());
                b.extend_from_slice(&end.as_micros().to_le_bytes());
                b.extend_from_slice(&count.to_le_bytes());
                b.extend_from_slice(bytes);
                (2, b)
            }
        };
        let mut out = Vec::with_capacity(11 + body.len());
        out.push(kind);
        out.extend_from_slice(&self.timestamp.as_micros().to_le_bytes());
        out.extend_from_slice(&(body.len() as u16).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// The closed time span `[start, end]` this record can contribute
    /// query results for. Scalars and events cover their own timestamp;
    /// summaries cover the whole range they were folded from, which can
    /// reach far before the record's own (summarization-time) timestamp.
    /// The per-page time directory and the segment index are built from
    /// this span, so range queries never skip a page holding a summary
    /// of the requested era.
    pub fn covered_span(&self) -> (SimTime, SimTime) {
        match &self.payload {
            RecordPayload::Summary { start, end, .. } => {
                (self.timestamp.min(*start), self.timestamp.max(*end))
            }
            _ => (self.timestamp, self.timestamp),
        }
    }

    /// Encoded length without building the buffer.
    pub fn encoded_len(&self) -> usize {
        11 + match &self.payload {
            RecordPayload::Scalar(_) => 4,
            RecordPayload::Event { data, .. } => 2 + data.len(),
            RecordPayload::Summary { bytes, .. } => 21 + bytes.len(),
        }
    }

    /// Decodes one record from the front of `bytes`, returning it and the
    /// bytes consumed. `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<(Record, usize)> {
        if bytes.len() < 11 {
            return None;
        }
        let kind = bytes[0];
        let ts = u64::from_le_bytes(bytes[1..9].try_into().ok()?);
        let len = u16::from_le_bytes([bytes[9], bytes[10]]) as usize;
        if bytes.len() < 11 + len {
            return None;
        }
        let body = &bytes[11..11 + len];
        let payload = match kind {
            0 => {
                if len != 4 {
                    return None;
                }
                RecordPayload::Scalar(f32::from_le_bytes(body.try_into().ok()?) as f64)
            }
            1 => {
                if len < 2 {
                    return None;
                }
                RecordPayload::Event {
                    event_type: u16::from_le_bytes([body[0], body[1]]),
                    data: body[2..].to_vec(),
                }
            }
            2 => {
                if len < 21 {
                    return None;
                }
                RecordPayload::Summary {
                    level: body[0],
                    start: SimTime::from_micros(u64::from_le_bytes(body[1..9].try_into().ok()?)),
                    end: SimTime::from_micros(u64::from_le_bytes(body[9..17].try_into().ok()?)),
                    count: u32::from_le_bytes(body[17..21].try_into().ok()?),
                    bytes: body[21..].to_vec(),
                }
            }
            _ => return None,
        };
        Some((
            Record {
                timestamp: SimTime::from_micros(ts),
                payload,
            },
            11 + len,
        ))
    }
}

/// Builds a summary record from an [`AgedSummary`] produced by the aging
/// ladder. The summary's serialized form embeds its own quantizer step.
pub fn summary_record(
    t_now: SimTime,
    level: u8,
    start: SimTime,
    end: SimTime,
    count: u32,
    summary: &AgedSummary,
) -> Record {
    // Serialize: original_len:u32 · quant_step:f32 · level:u8 · packed.
    // AgedSummary exposes reconstruct(); to persist it we re-encode the
    // reconstruction compactly through the codec at matching tolerance.
    // Cheaper: store reconstructed values quantized — but that forfeits
    // the ladder. Instead store the reconstruction at the summary's
    // resolution: one value per 2^level original samples.
    let recon = summary.reconstruct();
    let stride = 1usize << summary.level;
    let decimated: Vec<f32> = recon
        .iter()
        .step_by(stride.max(1))
        .map(|&v| v as f32)
        .collect();
    let mut bytes = Vec::with_capacity(4 + decimated.len() * 4);
    bytes.extend_from_slice(&(decimated.len() as u32).to_le_bytes());
    for v in decimated {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    Record {
        timestamp: t_now,
        payload: RecordPayload::Summary {
            level,
            start,
            end,
            count,
            bytes,
        },
    }
}

/// Decodes the decimated values stored by [`summary_record`].
pub fn summary_values(bytes: &[u8]) -> Option<Vec<f64>> {
    if bytes.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(bytes[..4].try_into().ok()?) as usize;
    if bytes.len() != 4 + n * 4 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let off = 4 + k * 4;
        out.push(f32::from_le_bytes(bytes[off..off + 4].try_into().ok()?) as f64);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let r = Record::scalar(SimTime::from_secs(1234), 21.5);
        let bytes = r.encode();
        assert_eq!(bytes.len(), r.encoded_len());
        let (back, used) = Record::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back.timestamp, r.timestamp);
        match back.payload {
            RecordPayload::Scalar(v) => assert!((v - 21.5).abs() < 1e-6),
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn event_roundtrip() {
        let r = Record::event(SimTime::from_mins(9), 7, vec![1, 2, 3, 4]);
        let (back, _) = Record::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn summary_roundtrip() {
        let r = Record {
            timestamp: SimTime::from_hours(3),
            payload: RecordPayload::Summary {
                level: 2,
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(500),
                count: 64,
                bytes: vec![9, 9, 9],
            },
        };
        let (back, _) = Record::decode(&r.encode()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(Record::decode(&[]).is_none());
        assert!(Record::decode(&[0; 10]).is_none());
        // Kind 0 with wrong body length.
        let mut bad = Record::scalar(SimTime::ZERO, 1.0).encode();
        bad[9] = 3; // corrupt length
        assert!(Record::decode(&bad).is_none());
        // Unknown kind.
        let mut unk = Record::scalar(SimTime::ZERO, 1.0).encode();
        unk[0] = 77;
        assert!(Record::decode(&unk).is_none());
    }

    #[test]
    fn consecutive_records_decode_in_sequence() {
        let a = Record::scalar(SimTime::from_secs(1), 1.0);
        let b = Record::event(SimTime::from_secs(2), 3, vec![5]);
        let mut buf = a.encode();
        buf.extend(b.encode());
        let (da, used) = Record::decode(&buf).unwrap();
        let (db, _) = Record::decode(&buf[used..]).unwrap();
        assert_eq!(da.timestamp, a.timestamp);
        assert_eq!(db, b);
    }

    #[test]
    fn summary_record_decimates_by_level() {
        let xs: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let ladder = presto_wavelet::AgingLadder::new(0.01);
        let s = ladder.summarize(&xs, 3);
        let rec = summary_record(
            SimTime::from_hours(1),
            3,
            SimTime::ZERO,
            SimTime::from_secs(63),
            64,
            &s,
        );
        match &rec.payload {
            RecordPayload::Summary { bytes, .. } => {
                let vals = summary_values(bytes).unwrap();
                assert_eq!(vals.len(), 8); // 64 / 2^3
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn summary_values_rejects_malformed() {
        assert!(summary_values(&[]).is_none());
        assert!(summary_values(&[2, 0, 0, 0, 1, 2]).is_none());
    }

    proptest! {
        #[test]
        fn roundtrip_any_event(
            ts in 0u64..u64::MAX / 2,
            ty in 0u16..u16::MAX,
            data in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let r = Record::event(SimTime::from_micros(ts), ty, data);
            let (back, used) = Record::decode(&r.encode()).unwrap();
            prop_assert_eq!(used, r.encoded_len());
            prop_assert_eq!(back, r);
        }
    }
}
