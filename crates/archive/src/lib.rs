//! The PRESTO sensor's local archival store (paper §4).
//!
//! "The first [component] is an archival file-system … that provides
//! energy-efficient archival of useful sensor data at each sensor as well
//! as a simple time-based index structure to efficiently service read
//! requests." This crate implements that file system on a simulated
//! flash device:
//!
//! * [`flash::FlashDevice`] — a page/block flash model that enforces
//!   program-after-erase discipline, tracks wear, and charges read /
//!   program / erase energy to the node's ledger.
//! * [`record`] — the on-flash record formats (scalar readings, semantic
//!   events, aged summaries).
//! * [`store::ArchiveStore`] — a log-structured, append-only store with
//!   an in-RAM per-segment time index and FIFO block reclamation.
//! * graceful aging: when the flash fills, the oldest segment's scalar
//!   data is folded into a wavelet [`presto_wavelet::AgedSummary`]
//!   (re-aged again on later passes), so old history degrades in
//!   resolution instead of vanishing (paper §4, citing [10]).

pub mod flash;
pub mod record;
pub mod store;

pub use flash::{FlashDevice, FlashError, FlashStats};
pub use record::{Quality, Record, RecordPayload};
pub use store::{ArchiveConfig, ArchiveError, ArchiveStats, ArchiveStore, ArchivedEvent, ArchivedSample};
