//! Log-structured archival store with a time index and graceful aging.
//!
//! Records append into a page buffer; full pages program into the current
//! block; full blocks seal into *segments* tracked by an in-RAM time
//! index (the paper's "simple time-based index structure"). When no
//! erased block remains, the oldest segment is reclaimed: its scalar
//! content is folded into a wavelet summary (and previously aged
//! summaries are re-aged one level), its events are carried forward
//! verbatim, and the block is erased for reuse. Old data thus loses
//! resolution gracefully instead of disappearing.
//!
//! ## The indexed read path
//!
//! Queries must scale with the pages that actually overlap the window,
//! not with the archive size, so the index has three layers:
//!
//! * a **segment index** (`[start, end]` covered span per segment, where
//!   summaries count the whole range they were folded from) prunes
//!   non-overlapping blocks;
//! * a **per-page time directory** (`[(page_start, page_end,
//!   used_bytes)]`, maintained as pages are programmed) binary-searches
//!   to the first overlapping page of a segment and early-exits past the
//!   window's end, so narrow queries decode a handful of pages instead
//!   of whole blocks;
//! * a small **decoded-page LRU** short-circuits repeated reads of the
//!   same flash pages (the proxy's `answer_past` / `answer_aggregate`
//!   pulls hit the same recent blocks over and over), with hit/miss
//!   counters surfaced in [`ArchiveStats`].
//!
//! Results from the per-segment scans are combined by a streaming k-way
//! merge: segments are written in time order, so the merge almost always
//! degenerates to concatenation and no global sort happens. The
//! pre-index behaviour is preserved as
//! [`ArchiveStore::query_range_fullscan`] /
//! [`ArchiveStore::query_events_fullscan`] — the reference
//! implementations the equivalence property tests and the
//! `archive_query` bench compare against.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use presto_net::FlashModel;
use presto_sim::{EnergyLedger, SimTime};
use presto_wavelet::AgingLadder;

use crate::flash::{FlashDevice, FlashError};
use crate::record::{summary_record, summary_values, Quality, Record, RecordPayload};

/// Archive configuration.
#[derive(Clone, Debug)]
pub struct ArchiveConfig {
    /// Flash device model.
    pub flash: FlashModel,
    /// Flash capacity in bytes.
    pub capacity_bytes: usize,
    /// Enable wavelet aging on reclamation (otherwise old data is lost).
    pub aging_enabled: bool,
    /// Aging level applied to raw scalars on first reclamation.
    pub base_aging_level: u8,
    /// Quantizer step for summaries.
    pub quant_step: f64,
    /// Capacity of the decoded-page LRU, in pages (0 disables caching).
    pub page_cache_pages: usize,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            flash: FlashModel::dataflash(),
            capacity_bytes: 1 << 20, // 1 MiB default for tests; motes get more
            aging_enabled: true,
            base_aging_level: 2,
            quant_step: 0.05,
            page_cache_pages: 64,
        }
    }
}

/// A sample returned by a range query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchivedSample {
    /// Sample (or reconstructed) timestamp.
    pub timestamp: SimTime,
    /// Value.
    pub value: f64,
    /// Exact or aged provenance.
    pub quality: Quality,
}

/// A semantic event returned by an event query.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchivedEvent {
    /// Event timestamp.
    pub timestamp: SimTime,
    /// Application event type.
    pub event_type: u16,
    /// Application payload.
    pub data: Vec<u8>,
}

/// Archive errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Underlying flash failure.
    Flash(FlashError),
    /// A single record exceeds the page payload capacity.
    RecordTooLarge,
}

impl From<FlashError> for ArchiveError {
    fn from(e: FlashError) -> Self {
        ArchiveError::Flash(e)
    }
}

/// One entry of a segment's page time directory.
#[derive(Clone, Copy, Debug)]
struct PageMeta {
    /// Earliest instant any record in the page covers.
    start: SimTime,
    /// Latest instant any record in the page covers.
    end: SimTime,
    /// Payload bytes used (excluding the on-flash length prefix).
    used_bytes: u16,
}

impl PageMeta {
    fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        self.start <= t1 && self.end >= t0
    }
}

#[derive(Clone, Debug)]
struct SegmentMeta {
    block: usize,
    /// Earliest instant covered by any record in the segment (summaries
    /// count their folded-from span, not just their write timestamp).
    start: SimTime,
    /// Latest covered instant.
    end: SimTime,
    records: u32,
    /// Per-page time directory, one entry per programmed page.
    pages: Vec<PageMeta>,
    /// True while the directory is monotone in both page start and page
    /// end — the common case, which enables binary search + early exit.
    time_ordered: bool,
}

impl SegmentMeta {
    fn fresh(block: usize) -> Self {
        SegmentMeta {
            block,
            start: SimTime::MAX,
            end: SimTime::ZERO,
            records: 0,
            pages: Vec::new(),
            time_ordered: true,
        }
    }

    fn pages_used(&self) -> usize {
        self.pages.len()
    }

    /// True once the segment holds any data. `records` alone is not
    /// enough: a pending page buffer can be flushed into a *newer*
    /// segment than the one its records were credited to at append time
    /// (sealing a full block mid-flush), leaving a programmed page in a
    /// segment whose own record count is still zero.
    fn has_data(&self) -> bool {
        self.records > 0 || !self.pages.is_empty()
    }

    fn overlaps(&self, t0: SimTime, t1: SimTime) -> bool {
        self.has_data() && self.start <= t1 && self.end >= t0
    }
}

/// Store-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ArchiveStats {
    /// Records appended since creation.
    pub records_appended: u64,
    /// Segments reclaimed (aged or dropped).
    pub segments_reclaimed: u64,
    /// Scalar samples folded into summaries so far.
    pub samples_aged: u64,
    /// Query page reads served from the decoded-page LRU.
    pub page_cache_hits: u64,
    /// Query page reads that went to flash.
    pub page_cache_misses: u64,
    /// Pages skipped by the segment index and page time directory.
    pub pages_pruned: u64,
}

presto_telemetry::observe_counters!(ArchiveStats {
    records_appended,
    segments_reclaimed,
    samples_aged,
    page_cache_hits,
    page_cache_misses,
    pages_pruned,
});

impl ArchiveStats {
    /// Accumulates another archive's counters (fleet aggregation).
    pub fn merge(&mut self, other: &ArchiveStats) {
        self.records_appended += other.records_appended;
        self.segments_reclaimed += other.segments_reclaimed;
        self.samples_aged += other.samples_aged;
        self.page_cache_hits += other.page_cache_hits;
        self.page_cache_misses += other.page_cache_misses;
        self.pages_pruned += other.pages_pruned;
    }
}

/// A bounded LRU of decoded pages, keyed by absolute page index.
///
/// Pages are immutable between program and block erase, so entries stay
/// valid until [`PageLru::invalidate_block`] removes them on reclaim.
#[derive(Debug, Default)]
struct PageLru {
    cap: usize,
    entries: BTreeMap<usize, Vec<Record>>,
    /// LRU order, least recently used first.
    order: VecDeque<usize>,
}

impl PageLru {
    fn new(cap: usize) -> Self {
        PageLru {
            cap,
            entries: BTreeMap::new(),
            order: VecDeque::with_capacity(cap),
        }
    }

    fn contains(&self, page: usize) -> bool {
        self.entries.contains_key(&page)
    }

    /// Marks `page` most recently used and returns its records.
    fn touch(&mut self, page: usize) -> &Vec<Record> {
        if let Some(pos) = self.order.iter().position(|&p| p == page) {
            self.order.remove(pos);
            self.order.push_back(page);
        }
        &self.entries[&page]
    }

    /// Inserts a decoded page, evicting the least recently used entry
    /// when full. Returns a reference to the inserted records.
    fn insert(&mut self, page: usize, records: Vec<Record>) -> &Vec<Record> {
        if self.cap == 0 {
            // Caching disabled: keep exactly one transient entry so the
            // caller can still borrow the decoded records.
            self.entries.clear();
            self.order.clear();
            self.order.push_back(page);
            return self.entries.entry(page).or_insert(records);
        }
        while self.entries.len() >= self.cap {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.entries.remove(&old);
        }
        self.order.push_back(page);
        self.entries.entry(page).or_insert(records)
    }

    /// Drops every cached page of an erased block.
    fn invalidate_block(&mut self, first_page: usize, pages: usize) {
        let range = first_page..first_page + pages;
        self.order.retain(|p| !range.contains(p));
        self.entries.retain(|p, _| !range.contains(p));
    }
}

/// The sensor-local archival store.
pub struct ArchiveStore {
    flash: FlashDevice,
    config: ArchiveConfig,
    ladder: AgingLadder,
    /// Sealed + current segments, oldest first. The last entry is the
    /// currently filling segment.
    segments: VecDeque<SegmentMeta>,
    free_blocks: VecDeque<usize>,
    page_buf: Vec<u8>,
    /// Covered span of the records currently in `page_buf`.
    buf_span: Option<(SimTime, SimTime)>,
    page_cache: PageLru,
    /// Covered spans of segments sealed since the last
    /// [`ArchiveStore::take_sealed_spans`] drain — the feed for
    /// seal-notification uplinks.
    sealed_pending: Vec<(SimTime, SimTime)>,
    stats: ArchiveStats,
}

impl ArchiveStore {
    /// Creates an empty archive.
    pub fn new(config: ArchiveConfig) -> Self {
        let flash = FlashDevice::new(config.flash.clone(), config.capacity_bytes);
        assert!(flash.block_count() >= 2, "archive needs at least 2 blocks");
        let mut free_blocks: VecDeque<usize> = (0..flash.block_count()).collect();
        let first = free_blocks.pop_front().expect("at least two blocks");
        let ladder = AgingLadder::new(config.quant_step);
        let mut segments = VecDeque::new();
        segments.push_back(SegmentMeta::fresh(first));
        let page_cache = PageLru::new(config.page_cache_pages);
        ArchiveStore {
            flash,
            config,
            ladder,
            segments,
            free_blocks,
            page_buf: Vec::new(),
            buf_span: None,
            page_cache,
            sealed_pending: Vec::new(),
            stats: ArchiveStats::default(),
        }
    }

    /// Drops the RAM page buffer without programming it — the power-
    /// loss model: records not yet flushed to flash die with a crash.
    /// Segment metadata may keep counting them (its covered span can
    /// over-cover), which only makes range pruning conservative, never
    /// wrong.
    pub fn discard_ram_buffer(&mut self) {
        self.page_buf.clear();
        self.buf_span = None;
    }

    /// Drains the covered spans of segments sealed since the last call.
    /// Sensors turn these into seal-notification uplinks so the proxy
    /// tier's time-range index tracks archives as blocks seal, instead
    /// of lagging until the next periodic rebuild.
    pub fn take_sealed_spans(&mut self) -> Vec<(SimTime, SimTime)> {
        std::mem::take(&mut self.sealed_pending)
    }

    /// Appends a scalar reading.
    pub fn append_scalar(
        &mut self,
        t: SimTime,
        value: f64,
        ledger: &mut EnergyLedger,
    ) -> Result<(), ArchiveError> {
        self.append(Record::scalar(t, value), ledger)
    }

    /// Appends a semantic event.
    pub fn append_event(
        &mut self,
        t: SimTime,
        event_type: u16,
        data: &[u8],
        ledger: &mut EnergyLedger,
    ) -> Result<(), ArchiveError> {
        self.append(Record::event(t, event_type, data.to_vec()), ledger)
    }

    /// Appends any record.
    pub fn append(&mut self, rec: Record, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        let enc = rec.encode();
        let payload_capacity = self.flash.page_bytes() - 2;
        if enc.len() > payload_capacity {
            return Err(ArchiveError::RecordTooLarge);
        }
        if self.page_buf.len() + enc.len() > payload_capacity {
            self.flush_page(ledger)?;
        }
        self.page_buf.extend_from_slice(&enc);
        let (s0, s1) = rec.covered_span();
        self.buf_span = Some(match self.buf_span {
            None => (s0, s1),
            Some((a, b)) => (a.min(s0), b.max(s1)),
        });
        let seg = self.segments.back_mut().expect("current segment exists");
        seg.start = seg.start.min(s0);
        seg.end = seg.end.max(s1);
        seg.records += 1;
        self.stats.records_appended += 1;
        Ok(())
    }

    /// Programs the current page buffer into flash (no-op when empty),
    /// recording the page's covered span in the segment's time directory.
    pub fn flush_page(&mut self, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        if self.page_buf.is_empty() {
            return Ok(());
        }
        // Current segment might be full: seal and open a new block. The
        // re-appended carry-forward records inside `open_new_block` can
        // fill the fresh block too, so re-check until a page slot exists.
        while self
            .segments
            .back()
            .expect("current segment exists")
            .pages_used()
            >= self.flash.pages_per_block()
        {
            self.open_new_block(ledger)?;
        }
        let (span_start, span_end) = self.buf_span.expect("non-empty buffer has a span");
        let seg = self.segments.back_mut().expect("current segment exists");
        let page = seg.block * self.flash.pages_per_block() + seg.pages_used();
        let mut data = Vec::with_capacity(2 + self.page_buf.len());
        data.extend_from_slice(&(self.page_buf.len() as u16).to_le_bytes());
        data.extend_from_slice(&self.page_buf);
        self.flash.program(page, &data, ledger)?;
        let meta = PageMeta {
            start: span_start,
            end: span_end,
            used_bytes: self.page_buf.len() as u16,
        };
        if let Some(last) = seg.pages.last() {
            if last.start > meta.start || last.end > meta.end {
                seg.time_ordered = false;
            }
        }
        seg.pages.push(meta);
        // Pages can land in a newer segment than the one that indexed
        // their records at append time (a carry-forward can seal the old
        // block while this buffer was pending), so fold the page span
        // into the receiving segment as well.
        seg.start = seg.start.min(span_start);
        seg.end = seg.end.max(span_end);
        self.page_buf.clear();
        self.buf_span = None;
        Ok(())
    }

    /// Seals the current segment and starts a new one on a fresh block,
    /// reclaiming the oldest segment if no erased block remains.
    fn open_new_block(&mut self, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        if let Some(seg) = self.segments.back() {
            if seg.has_data() {
                self.sealed_pending.push((seg.start, seg.end));
            }
        }
        let carried = if self.free_blocks.is_empty() {
            self.reclaim_oldest(ledger)?
        } else {
            Vec::new()
        };
        let block = self
            .free_blocks
            .pop_front()
            .expect("reclaim produced a free block");
        self.segments.push_back(SegmentMeta::fresh(block));
        // Re-append carried-forward records (summaries + events) into the
        // fresh segment. They are far smaller than a block.
        for rec in carried {
            self.append(rec, ledger)?;
        }
        Ok(())
    }

    /// Reclaims the oldest sealed segment, returning the records to carry
    /// forward (aged summaries + preserved events).
    fn reclaim_oldest(&mut self, ledger: &mut EnergyLedger) -> Result<Vec<Record>, ArchiveError> {
        let seg = self
            .segments
            .pop_front()
            .expect("at least one sealed segment when flash is full");
        let records = self.read_segment(&seg, ledger)?;
        self.flash.erase_block(seg.block, ledger)?;
        self.page_cache.invalidate_block(
            seg.block * self.flash.pages_per_block(),
            self.flash.pages_per_block(),
        );
        self.free_blocks.push_back(seg.block);
        self.stats.segments_reclaimed += 1;

        if !self.config.aging_enabled {
            return Ok(Vec::new());
        }

        let mut carried = Vec::new();
        // Scalars → one summary at the base aging level.
        let scalars: Vec<&Record> = records
            .iter()
            .filter(|r| matches!(r.payload, RecordPayload::Scalar(_)))
            .collect();
        if scalars.len() >= 2 {
            let values: Vec<f64> = scalars
                .iter()
                .map(|r| match r.payload {
                    RecordPayload::Scalar(v) => v,
                    _ => unreachable!("filtered to scalars"),
                })
                .collect();
            let start = scalars.first().expect("non-empty").timestamp;
            let end = scalars.last().expect("non-empty").timestamp;
            let level = self.config.base_aging_level;
            let summary = self.ladder.summarize(&values, level as usize);
            carried.push(summary_record(
                end,
                level,
                start,
                end,
                values.len() as u32,
                &summary,
            ));
            self.stats.samples_aged += values.len() as u64;
        }
        // Existing summaries → re-aged one more level (halved again).
        for r in &records {
            if let RecordPayload::Summary {
                level,
                start,
                end,
                count,
                bytes,
            } = &r.payload
            {
                let Some(values) = summary_values(bytes) else {
                    continue;
                };
                if values.len() <= 1 {
                    carried.push(r.clone());
                    continue;
                }
                let resummary = self.ladder.summarize(&values, 1);
                carried.push(summary_record(
                    r.timestamp,
                    level.saturating_add(1),
                    *start,
                    *end,
                    *count,
                    &resummary,
                ));
            }
        }
        // Events are carried forward verbatim: the paper treats archived
        // event logs (surveillance) as the primary PAST-query payload.
        for r in records {
            if matches!(r.payload, RecordPayload::Event { .. }) {
                carried.push(r);
            }
        }
        // Budget the carry-forward set to half a block so re-aged
        // summaries cannot snowball across reclamations and consume the
        // whole device: beyond the budget, the *oldest* summaries are
        // finally forgotten (events are kept preferentially).
        let budget = self.flash.page_bytes() * self.flash.pages_per_block() / 2;
        let mut total: usize = carried.iter().map(Record::encoded_len).sum();
        if total > budget {
            // Oldest summaries (smallest covered start) drop first.
            let mut order: Vec<usize> = (0..carried.len()).collect();
            order.sort_by_key(|&i| match &carried[i].payload {
                RecordPayload::Summary { start, .. } => (0u8, start.as_micros()),
                _ => (1u8, carried[i].timestamp.as_micros()),
            });
            let mut drop = std::collections::BTreeSet::new();
            for &i in &order {
                if total <= budget {
                    break;
                }
                if matches!(carried[i].payload, RecordPayload::Summary { .. }) {
                    total -= carried[i].encoded_len();
                    drop.insert(i);
                }
            }
            let mut kept = Vec::with_capacity(carried.len() - drop.len());
            for (i, r) in carried.into_iter().enumerate() {
                if !drop.contains(&i) {
                    kept.push(r);
                }
            }
            carried = kept;
        }
        Ok(carried)
    }

    /// Returns a page's decoded records, via the LRU when possible.
    fn page_records(
        &mut self,
        page: usize,
        ledger: &mut EnergyLedger,
    ) -> Result<&Vec<Record>, ArchiveError> {
        // cap == 0 disables caching entirely: the transient entry kept
        // for borrowing must never satisfy a later lookup.
        if self.page_cache.cap > 0 && self.page_cache.contains(page) {
            self.stats.page_cache_hits += 1;
            return Ok(self.page_cache.touch(page));
        }
        self.stats.page_cache_misses += 1;
        let data = self.flash.read(page, ledger)?;
        let records = decode_page(&data);
        Ok(self.page_cache.insert(page, records))
    }

    /// Reads and decodes every record of a segment (used by reclaim).
    /// Reads flash directly, bypassing the page LRU: these pages are
    /// about to be erased, so caching them would only evict hot query
    /// pages for entries that die moments later.
    fn read_segment(
        &mut self,
        seg: &SegmentMeta,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<Record>, ArchiveError> {
        let mut out = Vec::with_capacity(seg.records as usize);
        let base = seg.block * self.flash.pages_per_block();
        for p in 0..seg.pages_used() {
            let data = self.flash.read(base + p, ledger)?;
            out.extend(decode_page(&data));
        }
        Ok(out)
    }

    /// Visits every record of a segment that can contribute to
    /// `[t0, t1]`, using the page time directory to binary-search to the
    /// first overlapping page and early-exit past the window.
    fn for_each_record_in_range<F: FnMut(&Record)>(
        &mut self,
        seg: &SegmentMeta,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
        mut visit: F,
    ) -> Result<(), ArchiveError> {
        let base = seg.block * self.flash.pages_per_block();
        let first = if seg.time_ordered {
            // Page ends are non-decreasing: everything before this index
            // ends strictly before the window.
            seg.pages.partition_point(|p| p.end < t0)
        } else {
            0
        };
        self.stats.pages_pruned += first as u64;
        for idx in first..seg.pages.len() {
            let page = seg.pages[idx];
            if seg.time_ordered && page.start > t1 {
                // Page starts are non-decreasing: nothing further back in
                // this segment can overlap the window.
                self.stats.pages_pruned += (seg.pages.len() - idx) as u64;
                break;
            }
            if !page.overlaps(t0, t1) {
                self.stats.pages_pruned += 1;
                continue;
            }
            for rec in self.page_records(base + idx, ledger)? {
                visit(rec);
            }
        }
        Ok(())
    }

    /// Queries scalar samples in `[t0, t1]`, oldest first. Aged ranges
    /// come back as evenly re-spaced reconstructed samples tagged
    /// [`Quality::Aged`].
    ///
    /// Cost scales with the pages overlapping the window: the segment
    /// index prunes blocks, the page directory prunes pages, decoded
    /// pages come from the LRU when hot, and per-segment results are
    /// combined by a streaming merge (no global sort on the time-ordered
    /// common case). Result contents and order are identical to
    /// [`ArchiveStore::query_range_fullscan`].
    pub fn query_range(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedSample>, ArchiveError> {
        self.indexed_query(t0, t1, ledger, Self::collect_scalar, |s| s.timestamp)
    }

    /// Shared scaffolding of the indexed queries: prune segments via the
    /// segment index, collect per-segment runs through the page
    /// directory, append the RAM-tail run, and stream-merge. `collect`
    /// filters records into results; `key` orders them.
    fn indexed_query<T>(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
        collect: impl Fn(&Record, SimTime, SimTime, &mut Vec<T>),
        key: impl Fn(&T) -> SimTime + Copy,
    ) -> Result<Vec<T>, ArchiveError> {
        let segments = std::mem::take(&mut self.segments);
        let mut runs: Vec<Vec<T>> = Vec::new();
        let mut failure = None;
        for seg in &segments {
            if !seg.overlaps(t0, t1) {
                self.stats.pages_pruned += seg.pages_used() as u64;
                continue;
            }
            let mut run = Vec::new();
            let outcome = self.for_each_record_in_range(seg, t0, t1, ledger, |rec| {
                collect(rec, t0, t1, &mut run)
            });
            if let Err(e) = outcome {
                failure = Some(e);
                break;
            }
            sort_run(&mut run, key);
            if !run.is_empty() {
                runs.push(run);
            }
        }
        self.segments = segments;
        if let Some(e) = failure {
            return Err(e);
        }
        // Records still in the RAM page buffer.
        let mut tail = Vec::new();
        let mut body = self.page_buf.as_slice();
        while !body.is_empty() {
            let Some((rec, consumed)) = Record::decode(body) else {
                break;
            };
            collect(&rec, t0, t1, &mut tail);
            body = &body[consumed..];
        }
        sort_run(&mut tail, key);
        if !tail.is_empty() {
            runs.push(tail);
        }
        Ok(merge_runs(runs, key))
    }

    /// Reference full-scan implementation of [`ArchiveStore::query_range`]:
    /// decodes every programmed page of every segment, bypassing the
    /// segment index, the page directory, and the LRU. Kept public as the
    /// baseline the equivalence property tests and the `archive_query`
    /// bench compare the indexed path against.
    pub fn query_range_fullscan(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedSample>, ArchiveError> {
        let mut out = Vec::new();
        let outcome = self.fullscan(ledger, |rec| Self::collect_scalar(rec, t0, t1, &mut out));
        outcome?;
        out.sort_by_key(|s| s.timestamp);
        Ok(out)
    }

    /// Visits every record in the store (flash then RAM tail), reading
    /// flash directly with no index assistance.
    fn fullscan<F: FnMut(&Record)>(
        &mut self,
        ledger: &mut EnergyLedger,
        mut visit: F,
    ) -> Result<(), ArchiveError> {
        let segments = std::mem::take(&mut self.segments);
        let mut failure = None;
        'segments: for seg in &segments {
            let base = seg.block * self.flash.pages_per_block();
            for p in 0..seg.pages_used() {
                match self.flash.read(base + p, ledger) {
                    Ok(data) => {
                        for rec in decode_page(&data) {
                            visit(&rec);
                        }
                    }
                    Err(e) => {
                        failure = Some(e.into());
                        break 'segments;
                    }
                }
            }
        }
        self.segments = segments;
        if let Some(e) = failure {
            return Err(e);
        }
        let mut body = self.page_buf.as_slice();
        while !body.is_empty() {
            let Some((rec, consumed)) = Record::decode(body) else {
                break;
            };
            visit(&rec);
            body = &body[consumed..];
        }
        Ok(())
    }

    fn collect_scalar(rec: &Record, t0: SimTime, t1: SimTime, out: &mut Vec<ArchivedSample>) {
        match &rec.payload {
            RecordPayload::Scalar(v) => {
                if rec.timestamp >= t0 && rec.timestamp <= t1 {
                    out.push(ArchivedSample {
                        timestamp: rec.timestamp,
                        value: *v,
                        quality: Quality::Exact,
                    });
                }
            }
            RecordPayload::Summary {
                level,
                start,
                end,
                bytes,
                ..
            } => {
                if *start > t1 || *end < t0 {
                    return;
                }
                let Some(values) = summary_values(bytes) else {
                    return;
                };
                let n = values.len();
                if n == 0 {
                    return;
                }
                let span = end.as_micros().saturating_sub(start.as_micros());
                for (k, v) in values.iter().enumerate() {
                    let frac = if n == 1 {
                        0.0
                    } else {
                        k as f64 / (n - 1) as f64
                    };
                    let ts = SimTime::from_micros(start.as_micros() + (span as f64 * frac) as u64);
                    if ts >= t0 && ts <= t1 {
                        out.push(ArchivedSample {
                            timestamp: ts,
                            value: *v,
                            quality: Quality::Aged(*level),
                        });
                    }
                }
            }
            RecordPayload::Event { .. } => {}
        }
    }

    fn collect_event(rec: &Record, t0: SimTime, t1: SimTime, out: &mut Vec<ArchivedEvent>) {
        if let RecordPayload::Event { event_type, data } = &rec.payload {
            if rec.timestamp >= t0 && rec.timestamp <= t1 {
                out.push(ArchivedEvent {
                    timestamp: rec.timestamp,
                    event_type: *event_type,
                    data: data.clone(),
                });
            }
        }
    }

    /// Queries semantic events in `[t0, t1]`, oldest first, over the same
    /// indexed read path as [`ArchiveStore::query_range`].
    pub fn query_events(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedEvent>, ArchiveError> {
        self.indexed_query(t0, t1, ledger, Self::collect_event, |e| e.timestamp)
    }

    /// Reference full-scan implementation of [`ArchiveStore::query_events`];
    /// see [`ArchiveStore::query_range_fullscan`].
    pub fn query_events_fullscan(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedEvent>, ArchiveError> {
        let mut out = Vec::new();
        let outcome = self.fullscan(ledger, |rec| Self::collect_event(rec, t0, t1, &mut out));
        outcome?;
        out.sort_by_key(|e| e.timestamp);
        Ok(out)
    }

    /// Earliest timestamp still queryable (exactly or aged).
    pub fn oldest_available(&self) -> Option<SimTime> {
        self.segments
            .iter()
            .filter(|s| s.has_data())
            .map(|s| s.start)
            .min()
    }

    /// Covered `[start, end]` spans of live segments with data, oldest
    /// first — what a proxy registers in the distributed range index so
    /// multi-proxy queries can prune archives with nothing in range.
    pub fn segment_spans(&self) -> impl Iterator<Item = (SimTime, SimTime)> + '_ {
        self.segments
            .iter()
            .filter(|s| s.has_data())
            .map(|s| (s.start, s.end))
    }

    /// Fraction of programmed page payload capacity actually holding
    /// record bytes (from the page time directory), `None` before the
    /// first page is programmed. Low utilization means records are
    /// being flushed on partial pages.
    pub fn utilization(&self) -> Option<f64> {
        let payload_capacity = (self.flash.page_bytes() - 2) as f64;
        let (used, pages) = self
            .segments
            .iter()
            .flat_map(|s| &s.pages)
            .fold((0u64, 0u64), |(u, n), p| (u + p.used_bytes as u64, n + 1));
        (pages > 0).then(|| used as f64 / (pages as f64 * payload_capacity))
    }

    /// Store statistics.
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }

    /// Underlying flash statistics.
    pub fn flash_stats(&self) -> crate::flash::FlashStats {
        self.flash.stats()
    }

    /// Number of live segments (including the one being filled).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// Decodes the record stream of one on-flash page image.
fn decode_page(data: &[u8]) -> Vec<Record> {
    let mut out = Vec::new();
    if data.len() < 2 {
        return out;
    }
    let used = u16::from_le_bytes([data[0], data[1]]) as usize;
    let mut body = &data[2..2 + used.min(data.len() - 2)];
    while !body.is_empty() {
        let Some((rec, consumed)) = Record::decode(body) else {
            break;
        };
        out.push(rec);
        body = &body[consumed..];
    }
    out
}

/// Stable-sorts a run by key unless it is already ordered (the common
/// case for log-structured segments).
fn sort_run<T, K: Ord, F: Fn(&T) -> K>(run: &mut [T], key: F) {
    if !run.windows(2).all(|w| key(&w[0]) <= key(&w[1])) {
        run.sort_by_key(key);
    }
}

/// Merges per-segment runs (each stably sorted by `key`) into one
/// ordered vector. Equal keys preserve run order, so the output is
/// byte-identical to a stable sort of the concatenation. When the runs
/// are already mutually ordered — segments are written through time, so
/// almost always — this is a straight concatenation with zero compares
/// beyond the boundary checks.
fn merge_runs<T, K: Ord + Copy, F: Fn(&T) -> K>(mut runs: Vec<Vec<T>>, key: F) -> Vec<T> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().expect("length checked"),
        _ => {}
    }
    let ordered = runs.windows(2).all(|w| match (w[0].last(), w[1].first()) {
        (Some(a), Some(b)) => key(a) <= key(b),
        _ => true,
    });
    if ordered {
        return runs.into_iter().flatten().collect();
    }
    let total = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();
    let mut heap: BinaryHeap<Reverse<(K, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(i, h)| h.as_ref().map(|x| Reverse((key(x), i))))
        .collect();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, i))) = heap.pop() {
        let item = heads[i].take().expect("head present while queued");
        out.push(item);
        if let Some(next) = iters[i].next() {
            heap.push(Reverse((key(&next), i)));
            heads[i] = Some(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    fn small_config(capacity: usize) -> ArchiveConfig {
        ArchiveConfig {
            capacity_bytes: capacity,
            ..ArchiveConfig::default()
        }
    }

    fn fill(
        store: &mut ArchiveStore,
        n: u64,
        step: SimDuration,
        ledger: &mut EnergyLedger,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = SimTime::ZERO + step * i;
            let v = 20.0 + (i as f64 * 0.01).sin() * 5.0;
            store.append_scalar(t, v, ledger).unwrap();
            out.push((t, v));
        }
        out
    }

    #[test]
    fn sealed_spans_drain_once_per_seal() {
        let mut store = ArchiveStore::new(small_config(1 << 16));
        let mut l = EnergyLedger::new();
        assert!(store.take_sealed_spans().is_empty());
        // Fill far beyond one block so several segments seal.
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        let sealed = store.take_sealed_spans();
        assert!(
            sealed.len() >= 2,
            "expected multiple seals, got {}",
            sealed.len()
        );
        // Spans are ordered and non-degenerate.
        for w in sealed.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        for &(s, e) in &sealed {
            assert!(s <= e);
        }
        // Draining again yields nothing until the next seal.
        assert!(store.take_sealed_spans().is_empty());
    }

    #[test]
    fn roundtrip_within_capacity() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        let written = fill(&mut store, 1000, SimDuration::from_secs(31), &mut l);
        let got = store
            .query_range(SimTime::ZERO, SimTime::from_days(1), &mut l)
            .unwrap();
        assert_eq!(got.len(), 1000);
        for (s, (t, v)) in got.iter().zip(&written) {
            assert_eq!(s.timestamp, *t);
            assert!((s.value - v).abs() < 1e-3);
            assert_eq!(s.quality, Quality::Exact);
        }
    }

    #[test]
    fn range_query_filters() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        fill(&mut store, 100, SimDuration::from_secs(10), &mut l);
        let got = store
            .query_range(SimTime::from_secs(200), SimTime::from_secs(400), &mut l)
            .unwrap();
        assert_eq!(got.len(), 21); // 200, 210, ..., 400
        assert!(got
            .iter()
            .all(|s| s.timestamp >= SimTime::from_secs(200)
                && s.timestamp <= SimTime::from_secs(400)));
    }

    #[test]
    fn events_roundtrip_and_filter() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        store
            .append_event(SimTime::from_secs(5), 1, &[0xAA], &mut l)
            .unwrap();
        store
            .append_event(SimTime::from_secs(15), 2, &[0xBB, 0xCC], &mut l)
            .unwrap();
        store
            .append_scalar(SimTime::from_secs(10), 21.0, &mut l)
            .unwrap();
        let evs = store
            .query_events(SimTime::from_secs(10), SimTime::from_secs(20), &mut l)
            .unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].event_type, 2);
        assert_eq!(evs[0].data, vec![0xBB, 0xCC]);
    }

    #[test]
    fn aging_preserves_old_ranges_at_reduced_quality() {
        // Tiny flash: forces several reclamations.
        let mut store = ArchiveStore::new(small_config(16 * 1024));
        let mut l = EnergyLedger::new();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);

        // The earliest data must still be queryable, but aged.
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 500), &mut l)
            .unwrap();
        assert!(!early.is_empty(), "old range vanished");
        assert!(
            early.iter().any(|s| matches!(s.quality, Quality::Aged(_))),
            "old data not aged"
        );
        // Aged values still approximate the signal.
        for s in &early {
            assert!(
                (s.value - 20.0).abs() < 6.0,
                "implausible value {}",
                s.value
            );
        }
        // Recent data stays exact.
        let late = store
            .query_range(
                SimTime::from_secs(31 * 3900),
                SimTime::from_secs(31 * 4000),
                &mut l,
            )
            .unwrap();
        assert!(late.iter().all(|s| s.quality == Quality::Exact));
    }

    #[test]
    fn without_aging_old_data_is_dropped() {
        let cfg = ArchiveConfig {
            aging_enabled: false,
            ..small_config(16 * 1024)
        };
        let mut store = ArchiveStore::new(cfg);
        let mut l = EnergyLedger::new();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 100), &mut l)
            .unwrap();
        assert!(early.is_empty(), "dropped data reappeared");
    }

    #[test]
    fn events_survive_reclamation() {
        let mut store = ArchiveStore::new(small_config(16 * 1024));
        let mut l = EnergyLedger::new();
        store
            .append_event(SimTime::from_secs(1), 42, &[1, 2, 3], &mut l)
            .unwrap();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);
        let evs = store
            .query_events(SimTime::ZERO, SimTime::from_secs(2), &mut l)
            .unwrap();
        assert_eq!(evs.len(), 1, "event lost during reclamation");
        assert_eq!(evs[0].event_type, 42);
    }

    #[test]
    fn repeated_reclamation_compounds_aging_levels() {
        let mut store = ArchiveStore::new(small_config(8 * 1024));
        let mut l = EnergyLedger::new();
        fill(&mut store, 8000, SimDuration::from_secs(31), &mut l);
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 200), &mut l)
            .unwrap();
        let max_level = early
            .iter()
            .filter_map(|s| match s.quality {
                Quality::Aged(lv) => Some(lv),
                Quality::Exact => None,
            })
            .max();
        assert!(
            max_level.unwrap_or(0) > ArchiveConfig::default().base_aging_level,
            "levels did not compound: {max_level:?}"
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let mut store = ArchiveStore::new(small_config(1 << 16));
        let mut l = EnergyLedger::new();
        let big = vec![0u8; 10_000];
        assert_eq!(
            store.append_event(SimTime::ZERO, 1, &big, &mut l),
            Err(ArchiveError::RecordTooLarge)
        );
    }

    #[test]
    fn append_energy_is_small_and_charged() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        fill(&mut store, 1000, SimDuration::from_secs(31), &mut l);
        let flash_j = l.storage_total();
        assert!(flash_j > 0.0);
        // Archiving 1000 scalars must cost far less than radioing them:
        // the architectural premise of local archival.
        let radio_j = presto_net::RadioModel::mica2().tx_energy(1000 * 15);
        assert!(radio_j / flash_j > 10.0, "ratio {}", radio_j / flash_j);
    }

    #[test]
    fn oldest_available_tracks_reclamation() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        assert_eq!(store.oldest_available(), None);
        fill(&mut store, 10, SimDuration::from_secs(31), &mut l);
        assert_eq!(store.oldest_available(), Some(SimTime::ZERO));
    }

    #[test]
    fn narrow_query_touches_only_overlapping_pages() {
        // 64 KiB of dataflash = 32 blocks of 8 pages; fill it (without
        // reclamation) and check a one-hour window reads a bounded page
        // count while the full scan reads every programmed page.
        let cfg = ArchiveConfig {
            page_cache_pages: 0, // count raw flash reads
            ..small_config(64 * 1024)
        };
        let mut store = ArchiveStore::new(cfg);
        let mut l = EnergyLedger::new();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        store.flush_page(&mut l).unwrap();
        let programmed = store.flash_stats().programs;
        assert!(programmed > 200, "expected a multi-block archive");

        let before = store.flash_stats().reads;
        let narrow = store
            .query_range(SimTime::from_hours(10), SimTime::from_hours(11), &mut l)
            .unwrap();
        let narrow_reads = store.flash_stats().reads - before;
        assert!(!narrow.is_empty());
        // ~116 samples of 15 B in 262-B pages: ≤ 9 data pages, plus the
        // directory boundary pages.
        assert!(
            narrow_reads <= 12,
            "narrow window read {narrow_reads} pages"
        );

        let before = store.flash_stats().reads;
        let scan = store
            .query_range_fullscan(SimTime::from_hours(10), SimTime::from_hours(11), &mut l)
            .unwrap();
        let scan_reads = store.flash_stats().reads - before;
        assert_eq!(scan, narrow, "fullscan and indexed results diverge");
        assert_eq!(scan_reads, programmed, "fullscan must touch every page");
        assert!(
            scan_reads / narrow_reads.max(1) >= 10,
            "index saved only {scan_reads}/{narrow_reads}"
        );
    }

    #[test]
    fn page_cache_short_circuits_repeat_queries() {
        let mut store = ArchiveStore::new(small_config(64 * 1024));
        let mut l = EnergyLedger::new();
        fill(&mut store, 2000, SimDuration::from_secs(31), &mut l);
        store.flush_page(&mut l).unwrap();

        let t0 = SimTime::from_hours(10);
        let t1 = SimTime::from_hours(11);
        let first = store.query_range(t0, t1, &mut l).unwrap();
        let misses_after_first = store.stats().page_cache_misses;
        let reads_after_first = store.flash_stats().reads;

        let second = store.query_range(t0, t1, &mut l).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            store.flash_stats().reads,
            reads_after_first,
            "repeat query must not touch flash"
        );
        assert_eq!(store.stats().page_cache_misses, misses_after_first);
        assert!(store.stats().page_cache_hits > 0);
    }

    #[test]
    fn disabled_page_cache_never_serves_hits() {
        let cfg = ArchiveConfig {
            page_cache_pages: 0,
            ..small_config(64 * 1024)
        };
        let mut store = ArchiveStore::new(cfg);
        let mut l = EnergyLedger::new();
        fill(&mut store, 40, SimDuration::from_secs(31), &mut l);
        store.flush_page(&mut l).unwrap();
        // A single-page window queried twice: both passes must read
        // flash (the transient decode buffer is not a cache).
        let (t0, t1) = (SimTime::from_secs(31), SimTime::from_secs(62));
        let first = store.query_range(t0, t1, &mut l).unwrap();
        let reads = store.flash_stats().reads;
        let second = store.query_range(t0, t1, &mut l).unwrap();
        assert_eq!(first, second);
        assert!(store.flash_stats().reads > reads, "cap=0 served a hit");
        assert_eq!(store.stats().page_cache_hits, 0);
    }

    #[test]
    fn utilization_reflects_page_fill() {
        let mut store = ArchiveStore::new(small_config(64 * 1024));
        let mut l = EnergyLedger::new();
        assert_eq!(store.utilization(), None);
        // Full pages: utilization near 1.
        fill(&mut store, 500, SimDuration::from_secs(31), &mut l);
        store.flush_page(&mut l).unwrap();
        assert!(store.utilization().unwrap() > 0.8);
        // A page flushed with a single record drags it down.
        store
            .append_scalar(SimTime::from_days(2), 20.0, &mut l)
            .unwrap();
        store.flush_page(&mut l).unwrap();
        let after = store.utilization().unwrap();
        assert!(after < 1.0);
    }

    #[test]
    fn indexed_queries_match_fullscan_with_aging_and_events() {
        let mut store = ArchiveStore::new(small_config(16 * 1024));
        let mut l = EnergyLedger::new();
        for i in 0..4000u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            store
                .append_scalar(t, 20.0 + (i as f64 * 0.01).sin() * 5.0, &mut l)
                .unwrap();
            if i % 97 == 0 {
                store
                    .append_event(t, (i % 7) as u16, &[i as u8], &mut l)
                    .unwrap();
            }
        }
        assert!(store.stats().segments_reclaimed > 0);
        for (a, b) in [
            (SimTime::ZERO, SimTime::from_days(2)),
            (SimTime::from_hours(3), SimTime::from_hours(4)),
            (SimTime::from_secs(31 * 3990), SimTime::from_days(3)),
            (SimTime::from_days(10), SimTime::from_days(11)),
        ] {
            let indexed = store.query_range(a, b, &mut l).unwrap();
            let scanned = store.query_range_fullscan(a, b, &mut l).unwrap();
            assert_eq!(indexed, scanned, "range divergence on [{a:?}, {b:?}]");
            let ev_indexed = store.query_events(a, b, &mut l).unwrap();
            let ev_scanned = store.query_events_fullscan(a, b, &mut l).unwrap();
            assert_eq!(ev_indexed, ev_scanned, "event divergence on [{a:?}, {b:?}]");
        }
    }

    #[test]
    fn merge_runs_is_stable_across_runs() {
        // Equal keys must come out in run order (matching a stable sort
        // of the concatenation).
        let runs = vec![
            vec![(1u64, "a"), (5, "b")],
            vec![(1, "c"), (3, "d")],
            vec![(0, "e"), (5, "f")],
        ];
        let merged = merge_runs(runs, |&(k, _)| k);
        let labels: Vec<&str> = merged.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec!["e", "a", "c", "d", "b", "f"]);
    }
}
