//! Log-structured archival store with a time index and graceful aging.
//!
//! Records append into a page buffer; full pages program into the current
//! block; full blocks seal into *segments* tracked by an in-RAM time
//! index (`[start, end]` per segment — the paper's "simple time-based
//! index structure"). When no erased block remains, the oldest segment is
//! reclaimed: its scalar content is folded into a wavelet summary (and
//! previously aged summaries are re-aged one level), its events are
//! carried forward verbatim, and the block is erased for reuse. Old data
//! thus loses resolution gracefully instead of disappearing.

use std::collections::VecDeque;

use presto_net::FlashModel;
use presto_sim::{EnergyLedger, SimTime};
use presto_wavelet::AgingLadder;

use crate::flash::{FlashDevice, FlashError};
use crate::record::{summary_record, summary_values, Quality, Record, RecordPayload};

/// Archive configuration.
#[derive(Clone, Debug)]
pub struct ArchiveConfig {
    /// Flash device model.
    pub flash: FlashModel,
    /// Flash capacity in bytes.
    pub capacity_bytes: usize,
    /// Enable wavelet aging on reclamation (otherwise old data is lost).
    pub aging_enabled: bool,
    /// Aging level applied to raw scalars on first reclamation.
    pub base_aging_level: u8,
    /// Quantizer step for summaries.
    pub quant_step: f64,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            flash: FlashModel::dataflash(),
            capacity_bytes: 1 << 20, // 1 MiB default for tests; motes get more
            aging_enabled: true,
            base_aging_level: 2,
            quant_step: 0.05,
        }
    }
}

/// A sample returned by a range query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArchivedSample {
    /// Sample (or reconstructed) timestamp.
    pub timestamp: SimTime,
    /// Value.
    pub value: f64,
    /// Exact or aged provenance.
    pub quality: Quality,
}

/// A semantic event returned by an event query.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchivedEvent {
    /// Event timestamp.
    pub timestamp: SimTime,
    /// Application event type.
    pub event_type: u16,
    /// Application payload.
    pub data: Vec<u8>,
}

/// Archive errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArchiveError {
    /// Underlying flash failure.
    Flash(FlashError),
    /// A single record exceeds the page payload capacity.
    RecordTooLarge,
}

impl From<FlashError> for ArchiveError {
    fn from(e: FlashError) -> Self {
        ArchiveError::Flash(e)
    }
}

#[derive(Clone, Debug)]
struct SegmentMeta {
    block: usize,
    start: SimTime,
    end: SimTime,
    records: u32,
    /// Pages programmed in this segment's block.
    pages_used: usize,
}

/// Store-level statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ArchiveStats {
    /// Records appended since creation.
    pub records_appended: u64,
    /// Segments reclaimed (aged or dropped).
    pub segments_reclaimed: u64,
    /// Scalar samples folded into summaries so far.
    pub samples_aged: u64,
}

/// The sensor-local archival store.
pub struct ArchiveStore {
    flash: FlashDevice,
    config: ArchiveConfig,
    ladder: AgingLadder,
    /// Sealed + current segments, oldest first. The last entry is the
    /// currently filling segment.
    segments: VecDeque<SegmentMeta>,
    free_blocks: VecDeque<usize>,
    page_buf: Vec<u8>,
    stats: ArchiveStats,
}

impl ArchiveStore {
    /// Creates an empty archive.
    pub fn new(config: ArchiveConfig) -> Self {
        let flash = FlashDevice::new(config.flash.clone(), config.capacity_bytes);
        assert!(flash.block_count() >= 2, "archive needs at least 2 blocks");
        let mut free_blocks: VecDeque<usize> = (0..flash.block_count()).collect();
        let first = free_blocks.pop_front().expect("at least two blocks");
        let ladder = AgingLadder::new(config.quant_step);
        let mut segments = VecDeque::new();
        segments.push_back(SegmentMeta {
            block: first,
            start: SimTime::MAX,
            end: SimTime::ZERO,
            records: 0,
            pages_used: 0,
        });
        ArchiveStore {
            flash,
            config,
            ladder,
            segments,
            free_blocks,
            page_buf: Vec::new(),
            stats: ArchiveStats::default(),
        }
    }

    /// Appends a scalar reading.
    pub fn append_scalar(
        &mut self,
        t: SimTime,
        value: f64,
        ledger: &mut EnergyLedger,
    ) -> Result<(), ArchiveError> {
        self.append(Record::scalar(t, value), ledger)
    }

    /// Appends a semantic event.
    pub fn append_event(
        &mut self,
        t: SimTime,
        event_type: u16,
        data: Vec<u8>,
        ledger: &mut EnergyLedger,
    ) -> Result<(), ArchiveError> {
        self.append(Record::event(t, event_type, data), ledger)
    }

    /// Appends any record.
    pub fn append(&mut self, rec: Record, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        let enc = rec.encode();
        let payload_capacity = self.flash.page_bytes() - 2;
        if enc.len() > payload_capacity {
            return Err(ArchiveError::RecordTooLarge);
        }
        if self.page_buf.len() + enc.len() > payload_capacity {
            self.flush_page(ledger)?;
        }
        self.page_buf.extend_from_slice(&enc);
        let seg = self.segments.back_mut().expect("current segment exists");
        seg.start = seg.start.min(rec.timestamp);
        seg.end = seg.end.max(rec.timestamp);
        seg.records += 1;
        self.stats.records_appended += 1;
        Ok(())
    }

    /// Programs the current page buffer into flash (no-op when empty).
    pub fn flush_page(&mut self, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        if self.page_buf.is_empty() {
            return Ok(());
        }
        // Current segment might be full: seal and open a new block. The
        // re-appended carry-forward records inside `open_new_block` can
        // fill the fresh block too, so re-check until a page slot exists.
        while self
            .segments
            .back()
            .expect("current segment exists")
            .pages_used
            >= self.flash.pages_per_block()
        {
            self.open_new_block(ledger)?;
        }
        let seg = self.segments.back_mut().expect("current segment exists");
        let page = seg.block * self.flash.pages_per_block() + seg.pages_used;
        let mut data = Vec::with_capacity(2 + self.page_buf.len());
        data.extend_from_slice(&(self.page_buf.len() as u16).to_le_bytes());
        data.extend_from_slice(&self.page_buf);
        self.flash.program(page, &data, ledger)?;
        seg.pages_used += 1;
        self.page_buf.clear();
        Ok(())
    }

    /// Seals the current segment and starts a new one on a fresh block,
    /// reclaiming the oldest segment if no erased block remains.
    fn open_new_block(&mut self, ledger: &mut EnergyLedger) -> Result<(), ArchiveError> {
        let carried = if self.free_blocks.is_empty() {
            self.reclaim_oldest(ledger)?
        } else {
            Vec::new()
        };
        let block = self
            .free_blocks
            .pop_front()
            .expect("reclaim produced a free block");
        self.segments.push_back(SegmentMeta {
            block,
            start: SimTime::MAX,
            end: SimTime::ZERO,
            records: 0,
            pages_used: 0,
        });
        // Re-append carried-forward records (summaries + events) into the
        // fresh segment. They are far smaller than a block.
        for rec in carried {
            self.append(rec, ledger)?;
        }
        Ok(())
    }

    /// Reclaims the oldest sealed segment, returning the records to carry
    /// forward (aged summaries + preserved events).
    fn reclaim_oldest(&mut self, ledger: &mut EnergyLedger) -> Result<Vec<Record>, ArchiveError> {
        let seg = self
            .segments
            .pop_front()
            .expect("at least one sealed segment when flash is full");
        let records = self.read_segment(&seg, ledger)?;
        self.flash.erase_block(seg.block, ledger)?;
        self.free_blocks.push_back(seg.block);
        self.stats.segments_reclaimed += 1;

        if !self.config.aging_enabled {
            return Ok(Vec::new());
        }

        let mut carried = Vec::new();
        // Scalars → one summary at the base aging level.
        let scalars: Vec<&Record> = records
            .iter()
            .filter(|r| matches!(r.payload, RecordPayload::Scalar(_)))
            .collect();
        if scalars.len() >= 2 {
            let values: Vec<f64> = scalars
                .iter()
                .map(|r| match r.payload {
                    RecordPayload::Scalar(v) => v,
                    _ => unreachable!("filtered to scalars"),
                })
                .collect();
            let start = scalars.first().expect("non-empty").timestamp;
            let end = scalars.last().expect("non-empty").timestamp;
            let level = self.config.base_aging_level;
            let summary = self.ladder.summarize(&values, level as usize);
            carried.push(summary_record(
                end,
                level,
                start,
                end,
                values.len() as u32,
                &summary,
            ));
            self.stats.samples_aged += values.len() as u64;
        }
        // Existing summaries → re-aged one more level (halved again).
        for r in &records {
            if let RecordPayload::Summary {
                level,
                start,
                end,
                count,
                bytes,
            } = &r.payload
            {
                let Some(values) = summary_values(bytes) else {
                    continue;
                };
                if values.len() <= 1 {
                    carried.push(r.clone());
                    continue;
                }
                let resummary = self.ladder.summarize(&values, 1);
                carried.push(summary_record(
                    r.timestamp,
                    level.saturating_add(1),
                    *start,
                    *end,
                    *count,
                    &resummary,
                ));
            }
        }
        // Events are carried forward verbatim: the paper treats archived
        // event logs (surveillance) as the primary PAST-query payload.
        for r in records {
            if matches!(r.payload, RecordPayload::Event { .. }) {
                carried.push(r);
            }
        }
        // Budget the carry-forward set to half a block so re-aged
        // summaries cannot snowball across reclamations and consume the
        // whole device: beyond the budget, the *oldest* summaries are
        // finally forgotten (events are kept preferentially).
        let budget = self.flash.page_bytes() * self.flash.pages_per_block() / 2;
        let mut total: usize = carried.iter().map(Record::encoded_len).sum();
        if total > budget {
            // Oldest summaries (smallest covered start) drop first.
            let mut order: Vec<usize> = (0..carried.len()).collect();
            order.sort_by_key(|&i| match &carried[i].payload {
                RecordPayload::Summary { start, .. } => (0u8, start.as_micros()),
                _ => (1u8, carried[i].timestamp.as_micros()),
            });
            let mut drop = std::collections::HashSet::new();
            for &i in &order {
                if total <= budget {
                    break;
                }
                if matches!(carried[i].payload, RecordPayload::Summary { .. }) {
                    total -= carried[i].encoded_len();
                    drop.insert(i);
                }
            }
            let mut kept = Vec::with_capacity(carried.len() - drop.len());
            for (i, r) in carried.into_iter().enumerate() {
                if !drop.contains(&i) {
                    kept.push(r);
                }
            }
            carried = kept;
        }
        Ok(carried)
    }

    /// Reads and decodes every record of a segment.
    fn read_segment(
        &mut self,
        seg: &SegmentMeta,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<Record>, ArchiveError> {
        let mut out = Vec::with_capacity(seg.records as usize);
        let base = seg.block * self.flash.pages_per_block();
        for p in base..base + seg.pages_used {
            let data = self.flash.read(p, ledger)?;
            if data.len() < 2 {
                continue;
            }
            let used = u16::from_le_bytes([data[0], data[1]]) as usize;
            let mut body = &data[2..2 + used.min(data.len() - 2)];
            while !body.is_empty() {
                let Some((rec, consumed)) = Record::decode(body) else {
                    break;
                };
                out.push(rec);
                body = &body[consumed..];
            }
        }
        Ok(out)
    }

    /// Queries scalar samples in `[t0, t1]`, oldest first. Aged ranges
    /// come back as evenly re-spaced reconstructed samples tagged
    /// [`Quality::Aged`].
    pub fn query_range(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedSample>, ArchiveError> {
        let mut out = Vec::new();
        let metas: Vec<SegmentMeta> = self
            .segments
            .iter()
            .filter(|s| s.records > 0 && s.start <= t1 && s.end >= t0)
            .cloned()
            .collect();
        for seg in metas {
            for rec in self.read_segment(&seg, ledger)? {
                Self::collect_scalar(&rec, t0, t1, &mut out);
            }
        }
        // Records still in the RAM page buffer.
        let mut body = self.page_buf.as_slice();
        while !body.is_empty() {
            let Some((rec, consumed)) = Record::decode(body) else {
                break;
            };
            Self::collect_scalar(&rec, t0, t1, &mut out);
            body = &body[consumed..];
        }
        out.sort_by_key(|s| s.timestamp);
        Ok(out)
    }

    fn collect_scalar(rec: &Record, t0: SimTime, t1: SimTime, out: &mut Vec<ArchivedSample>) {
        match &rec.payload {
            RecordPayload::Scalar(v) => {
                if rec.timestamp >= t0 && rec.timestamp <= t1 {
                    out.push(ArchivedSample {
                        timestamp: rec.timestamp,
                        value: *v,
                        quality: Quality::Exact,
                    });
                }
            }
            RecordPayload::Summary {
                level,
                start,
                end,
                bytes,
                ..
            } => {
                if *start > t1 || *end < t0 {
                    return;
                }
                let Some(values) = summary_values(bytes) else {
                    return;
                };
                let n = values.len();
                if n == 0 {
                    return;
                }
                let span = end.as_micros().saturating_sub(start.as_micros());
                for (k, v) in values.iter().enumerate() {
                    let frac = if n == 1 {
                        0.0
                    } else {
                        k as f64 / (n - 1) as f64
                    };
                    let ts = SimTime::from_micros(start.as_micros() + (span as f64 * frac) as u64);
                    if ts >= t0 && ts <= t1 {
                        out.push(ArchivedSample {
                            timestamp: ts,
                            value: *v,
                            quality: Quality::Aged(*level),
                        });
                    }
                }
            }
            RecordPayload::Event { .. } => {}
        }
    }

    /// Queries semantic events in `[t0, t1]`, oldest first.
    pub fn query_events(
        &mut self,
        t0: SimTime,
        t1: SimTime,
        ledger: &mut EnergyLedger,
    ) -> Result<Vec<ArchivedEvent>, ArchiveError> {
        let mut out = Vec::new();
        let metas: Vec<SegmentMeta> = self
            .segments
            .iter()
            .filter(|s| s.records > 0 && s.start <= t1 && s.end >= t0)
            .cloned()
            .collect();
        for seg in metas {
            for rec in self.read_segment(&seg, ledger)? {
                if let RecordPayload::Event { event_type, data } = rec.payload {
                    if rec.timestamp >= t0 && rec.timestamp <= t1 {
                        out.push(ArchivedEvent {
                            timestamp: rec.timestamp,
                            event_type,
                            data,
                        });
                    }
                }
            }
        }
        let mut body = self.page_buf.as_slice();
        while !body.is_empty() {
            let Some((rec, consumed)) = Record::decode(body) else {
                break;
            };
            if let RecordPayload::Event { event_type, data } = rec.payload {
                if rec.timestamp >= t0 && rec.timestamp <= t1 {
                    out.push(ArchivedEvent {
                        timestamp: rec.timestamp,
                        event_type,
                        data,
                    });
                }
            }
            body = &body[consumed..];
        }
        out.sort_by_key(|e| e.timestamp);
        Ok(out)
    }

    /// Earliest timestamp still queryable (exactly or aged).
    pub fn oldest_available(&self) -> Option<SimTime> {
        self.segments
            .iter()
            .filter(|s| s.records > 0)
            .map(|s| s.start)
            .min()
    }

    /// Store statistics.
    pub fn stats(&self) -> ArchiveStats {
        self.stats
    }

    /// Underlying flash statistics.
    pub fn flash_stats(&self) -> crate::flash::FlashStats {
        self.flash.stats()
    }

    /// Number of live segments (including the one being filled).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    fn small_config(capacity: usize) -> ArchiveConfig {
        ArchiveConfig {
            capacity_bytes: capacity,
            ..ArchiveConfig::default()
        }
    }

    fn fill(
        store: &mut ArchiveStore,
        n: u64,
        step: SimDuration,
        ledger: &mut EnergyLedger,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = SimTime::ZERO + step * i;
            let v = 20.0 + (i as f64 * 0.01).sin() * 5.0;
            store.append_scalar(t, v, ledger).unwrap();
            out.push((t, v));
        }
        out
    }

    #[test]
    fn roundtrip_within_capacity() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        let written = fill(&mut store, 1000, SimDuration::from_secs(31), &mut l);
        let got = store
            .query_range(SimTime::ZERO, SimTime::from_days(1), &mut l)
            .unwrap();
        assert_eq!(got.len(), 1000);
        for (s, (t, v)) in got.iter().zip(&written) {
            assert_eq!(s.timestamp, *t);
            assert!((s.value - v).abs() < 1e-3);
            assert_eq!(s.quality, Quality::Exact);
        }
    }

    #[test]
    fn range_query_filters() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        fill(&mut store, 100, SimDuration::from_secs(10), &mut l);
        let got = store
            .query_range(SimTime::from_secs(200), SimTime::from_secs(400), &mut l)
            .unwrap();
        assert_eq!(got.len(), 21); // 200, 210, ..., 400
        assert!(got
            .iter()
            .all(|s| s.timestamp >= SimTime::from_secs(200)
                && s.timestamp <= SimTime::from_secs(400)));
    }

    #[test]
    fn events_roundtrip_and_filter() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        store
            .append_event(SimTime::from_secs(5), 1, vec![0xAA], &mut l)
            .unwrap();
        store
            .append_event(SimTime::from_secs(15), 2, vec![0xBB, 0xCC], &mut l)
            .unwrap();
        store
            .append_scalar(SimTime::from_secs(10), 21.0, &mut l)
            .unwrap();
        let evs = store
            .query_events(SimTime::from_secs(10), SimTime::from_secs(20), &mut l)
            .unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].event_type, 2);
        assert_eq!(evs[0].data, vec![0xBB, 0xCC]);
    }

    #[test]
    fn aging_preserves_old_ranges_at_reduced_quality() {
        // Tiny flash: forces several reclamations.
        let mut store = ArchiveStore::new(small_config(16 * 1024));
        let mut l = EnergyLedger::new();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);

        // The earliest data must still be queryable, but aged.
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 500), &mut l)
            .unwrap();
        assert!(!early.is_empty(), "old range vanished");
        assert!(
            early.iter().any(|s| matches!(s.quality, Quality::Aged(_))),
            "old data not aged"
        );
        // Aged values still approximate the signal.
        for s in &early {
            assert!(
                (s.value - 20.0).abs() < 6.0,
                "implausible value {}",
                s.value
            );
        }
        // Recent data stays exact.
        let late = store
            .query_range(
                SimTime::from_secs(31 * 3900),
                SimTime::from_secs(31 * 4000),
                &mut l,
            )
            .unwrap();
        assert!(late.iter().all(|s| s.quality == Quality::Exact));
    }

    #[test]
    fn without_aging_old_data_is_dropped() {
        let cfg = ArchiveConfig {
            aging_enabled: false,
            ..small_config(16 * 1024)
        };
        let mut store = ArchiveStore::new(cfg);
        let mut l = EnergyLedger::new();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 100), &mut l)
            .unwrap();
        assert!(early.is_empty(), "dropped data reappeared");
    }

    #[test]
    fn events_survive_reclamation() {
        let mut store = ArchiveStore::new(small_config(16 * 1024));
        let mut l = EnergyLedger::new();
        store
            .append_event(SimTime::from_secs(1), 42, vec![1, 2, 3], &mut l)
            .unwrap();
        fill(&mut store, 4000, SimDuration::from_secs(31), &mut l);
        assert!(store.stats().segments_reclaimed > 0);
        let evs = store
            .query_events(SimTime::ZERO, SimTime::from_secs(2), &mut l)
            .unwrap();
        assert_eq!(evs.len(), 1, "event lost during reclamation");
        assert_eq!(evs[0].event_type, 42);
    }

    #[test]
    fn repeated_reclamation_compounds_aging_levels() {
        let mut store = ArchiveStore::new(small_config(8 * 1024));
        let mut l = EnergyLedger::new();
        fill(&mut store, 8000, SimDuration::from_secs(31), &mut l);
        let early = store
            .query_range(SimTime::ZERO, SimTime::from_secs(31 * 200), &mut l)
            .unwrap();
        let max_level = early
            .iter()
            .filter_map(|s| match s.quality {
                Quality::Aged(lv) => Some(lv),
                Quality::Exact => None,
            })
            .max();
        assert!(
            max_level.unwrap_or(0) > ArchiveConfig::default().base_aging_level,
            "levels did not compound: {max_level:?}"
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let mut store = ArchiveStore::new(small_config(1 << 16));
        let mut l = EnergyLedger::new();
        let big = vec![0u8; 10_000];
        assert_eq!(
            store.append_event(SimTime::ZERO, 1, big, &mut l),
            Err(ArchiveError::RecordTooLarge)
        );
    }

    #[test]
    fn append_energy_is_small_and_charged() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        fill(&mut store, 1000, SimDuration::from_secs(31), &mut l);
        let flash_j = l.storage_total();
        assert!(flash_j > 0.0);
        // Archiving 1000 scalars must cost far less than radioing them:
        // the architectural premise of local archival.
        let radio_j = presto_net::RadioModel::mica2().tx_energy(1000 * 15);
        assert!(radio_j / flash_j > 10.0, "ratio {}", radio_j / flash_j);
    }

    #[test]
    fn oldest_available_tracks_reclamation() {
        let mut store = ArchiveStore::new(small_config(1 << 20));
        let mut l = EnergyLedger::new();
        assert_eq!(store.oldest_available(), None);
        fill(&mut store, 10, SimDuration::from_secs(31), &mut l);
        assert_eq!(store.oldest_available(), Some(SimTime::ZERO));
    }
}
