//! Stream-everything (TinyDB-feed / Aurora-archival style).
//!
//! Every sample is pushed to the tethered tier, which answers all queries
//! locally: minimal latency, maximal energy. "This model is less energy
//! efficient since it does not exploit the fact that only a subset of
//! sensor data may be actually queried" (paper §1).

use presto_proxy::{PrestoProxy, ProxyConfig};
use presto_sensor::PushPolicy;
use presto_sim::{SimDuration, SimTime};
use presto_workloads::{QueryTarget, TimeScope};

use crate::driver::{build, ArchReport, DriverConfig, ReportBuilder};

/// Streaming motes keep a snappy LPL so the sink can be reached, though
/// the uplink dominates anyway.
const STREAM_LPL: SimDuration = SimDuration::from_secs(1);

/// Runs the streaming architecture. `per_sample` sends each sample in
/// its own packet (TinyDB-style); otherwise samples batch per minute
/// (a mild concession the authors' streaming comparators also made).
pub fn run(cfg: &DriverConfig, per_sample: bool) -> ArchReport {
    let interval = if per_sample {
        SimDuration::ZERO
    } else {
        SimDuration::from_mins(1)
    };
    let mut dep = build(
        cfg,
        PushPolicy::Batched {
            interval,
            compression: None,
        },
        STREAM_LPL,
    );
    let mut proxy = PrestoProxy::new(ProxyConfig {
        sensor_lpl: STREAM_LPL,
        // Streaming architectures do not predict.
        engine: presto_proxy::EngineConfig {
            min_history: usize::MAX,
            ..presto_proxy::EngineConfig::default()
        },
        ..ProxyConfig::default()
    });
    for i in 0..cfg.sensors {
        proxy.register_sensor(i as u16);
    }

    let mut rb = ReportBuilder::default();
    let epochs = SimDuration::from_days(cfg.days).div_duration(dep.epoch);
    let mut qi = 0usize;
    let mut truth_now = vec![0.0f64; cfg.sensors];

    for e in 0..epochs {
        let t = SimTime::ZERO + dep.epoch * e;
        let readings = dep.lab.step();
        for (s, r) in readings.iter().enumerate() {
            truth_now[s] = r.value;
            for msg in dep.nodes[s].on_sample(r.timestamp, r.value, None) {
                proxy.on_uplink(&msg);
            }
        }
        while qi < dep.queries.len() && dep.queries[qi].arrival <= t + dep.epoch {
            let q = dep.queries[qi];
            qi += 1;
            let sensor = match q.target {
                QueryTarget::Sensor(s) => (s.min(cfg.sensors - 1)) as u16,
                QueryTarget::ProxyGroup(_) => 0,
            };
            match q.scope {
                TimeScope::Now => {
                    let a = proxy.answer_now(
                        q.arrival,
                        sensor,
                        q.tolerance,
                        &mut dep.nodes[sensor as usize],
                        &mut dep.downlinks[sensor as usize],
                    );
                    rb.now_latency_ms.record(a.latency.as_millis_f64());
                    rb.now_error
                        .record((a.value - truth_now[sensor as usize]).abs());
                }
                TimeScope::Past { from, to } => {
                    rb.past_total += 1;
                    let a = proxy.answer_past(
                        q.arrival,
                        sensor,
                        from,
                        to,
                        q.tolerance,
                        &mut dep.nodes[sensor as usize],
                        &mut dep.downlinks[sensor as usize],
                    );
                    if !a.samples.is_empty() {
                        rb.past_answered += 1;
                    }
                }
            }
        }
    }
    let end = SimTime::ZERO + dep.epoch * epochs;
    for n in &mut dep.nodes {
        n.advance_to(end);
    }
    let label = if per_sample {
        "stream-all (TinyDB)"
    } else {
        "stream-batched (Aurora)"
    };
    rb.finish(label, &dep.nodes, cfg.days, true, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DriverConfig {
        DriverConfig {
            sensors: 3,
            days: 1,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn streaming_answers_fast_and_accurately() {
        let r = run(&quick_cfg(), true);
        // Proxy-local answers: milliseconds, not preamble-bound seconds.
        assert!(r.now_latency_mean_ms < 100.0, "{}", r.now_latency_mean_ms);
        assert!(r.now_error_mean < 1.0, "{}", r.now_error_mean);
        assert!(r.past_answered_fraction > 0.8);
    }

    #[test]
    fn per_sample_streaming_costs_more_than_minutely_batching() {
        let a = run(&quick_cfg(), true);
        let b = run(&quick_cfg(), false);
        assert!(
            a.radio_energy_per_day_j > b.radio_energy_per_day_j * 1.5,
            "per-sample {} vs batched {}",
            a.radio_energy_per_day_j,
            b.radio_energy_per_day_j
        );
    }

    #[test]
    fn streaming_moves_far_more_bytes_than_direct() {
        let s = run(&quick_cfg(), true);
        let d = crate::direct::run(&quick_cfg());
        assert!(
            s.bytes_per_sensor_per_day > 3.0 * d.bytes_per_sensor_per_day.max(1.0),
            "stream {} vs direct {}",
            s.bytes_per_sensor_per_day,
            d.bytes_per_sensor_per_day
        );
    }
}
