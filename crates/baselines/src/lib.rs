//! Baseline architectures for the Table 1 comparison.
//!
//! The paper compares PRESTO against four families of systems; the
//! behavioural essence of each is reimplemented here so Table 1 can be
//! regenerated *quantitatively* on the same workload:
//!
//! * **Direct sensor querying** (Directed Diffusion [2], Cougar [1]):
//!   queries travel to the sensors; no proxy cache, no archival
//!   visibility beyond the mote, high latency through duty-cycled radios
//!   — [`direct`].
//! * **Stream-everything** (TinyDB [6] / BBQ-style acquisition feeding a
//!   proxy, Aurora/Medusa [7] server archival): every sample is pushed to
//!   the tethered tier, where all queries are answered instantly —
//!   [`stream`].
//! * **Value-driven push**: the Δ-threshold policy of Figure 2 —
//!   [`valuepush`].
//!
//! [`driver`] supplies the shared single-proxy deployment loop so every
//! arm (including PRESTO, driven from `presto-core`) sees the identical
//! workload and query stream.

pub mod direct;
pub mod driver;
pub mod stream;
pub mod valuepush;

pub use driver::{ArchReport, DriverConfig};
