//! Direct sensor querying (Directed Diffusion / Cougar style).
//!
//! Queries are routed to the sensors themselves: no proxy cache, no
//! prediction, every query costs a radio round trip through a
//! duty-cycled mote. "Such querying renders the system unusable for
//! interactive use due to the high latency, low availability, and low
//! reliability inherent in duty-cycled, energy-limited wireless sensor
//! networks" (paper §1) — this arm measures exactly that trade.

use presto_proxy::{PrestoProxy, ProxyConfig};
use presto_sensor::{DownlinkMsg, PushPolicy, UplinkPayload};
use presto_sim::{SimDuration, SimTime};
use presto_workloads::{QueryTarget, TimeScope};

use crate::driver::{build, ArchReport, DriverConfig, ReportBuilder};

/// LPL check interval for direct-query motes: long, because the radio is
/// their dominant drain and no push traffic exists.
const DIRECT_LPL: SimDuration = SimDuration::from_secs(2);

/// Runs the direct-querying architecture.
pub fn run(cfg: &DriverConfig) -> ArchReport {
    let mut dep = build(cfg, PushPolicy::Silent, DIRECT_LPL);
    // A thin proxy exists only as the querying sink — its cache is never
    // consulted; its fabric-routed `rpc` is reused for the energy-
    // metered, lossy downlink path.
    let mut sink = PrestoProxy::new(ProxyConfig {
        sensor_lpl: DIRECT_LPL,
        ..ProxyConfig::default()
    });
    for i in 0..cfg.sensors {
        sink.register_sensor(i as u16);
    }

    let mut rb = ReportBuilder::default();
    let epochs = SimDuration::from_days(cfg.days).div_duration(dep.epoch);
    let mut qi = 0usize;
    let mut truth_now = vec![0.0f64; cfg.sensors];
    let mut next_query_id = 1u64;

    for e in 0..epochs {
        let t = SimTime::ZERO + dep.epoch * e;
        let readings = dep.lab.step();
        for (s, r) in readings.iter().enumerate() {
            truth_now[s] = r.value;
            dep.nodes[s].on_sample(r.timestamp, r.value, None);
        }
        // Serve queries that arrived during this epoch.
        while qi < dep.queries.len() && dep.queries[qi].arrival <= t + dep.epoch {
            let q = dep.queries[qi];
            qi += 1;
            let sensor = match q.target {
                QueryTarget::Sensor(s) => s.min(cfg.sensors - 1),
                QueryTarget::ProxyGroup(_) => 0,
            };
            match q.scope {
                TimeScope::Now => {
                    let msg = DownlinkMsg::PullRequest {
                        query_id: next_query_id,
                        from: q.arrival - dep.epoch * 3,
                        to: q.arrival,
                        tolerance: q.tolerance,
                    };
                    next_query_id += 1;
                    let out = sink.rpc(
                        q.arrival,
                        &msg,
                        &mut dep.nodes[sensor],
                        &mut dep.downlinks[sensor],
                    );
                    rb.now_latency_ms.record(out.latency.as_millis_f64());
                    if let Some(r) = out.reply {
                        if let UplinkPayload::PullReply { samples, .. } = &r.payload {
                            if let Some(last) = samples.last() {
                                rb.now_error.record((last.value - truth_now[sensor]).abs());
                            }
                        }
                    }
                }
                TimeScope::Past { from, to } => {
                    rb.past_total += 1;
                    let msg = DownlinkMsg::PullRequest {
                        query_id: next_query_id,
                        from,
                        to,
                        tolerance: q.tolerance,
                    };
                    next_query_id += 1;
                    let out = sink.rpc(
                        q.arrival,
                        &msg,
                        &mut dep.nodes[sensor],
                        &mut dep.downlinks[sensor],
                    );
                    if let Some(r) = out.reply {
                        if let UplinkPayload::PullReply { samples, .. } = &r.payload {
                            if !samples.is_empty() {
                                rb.past_answered += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    // Charge trailing idle listening.
    let end = SimTime::ZERO + dep.epoch * epochs;
    for n in &mut dep.nodes {
        n.advance_to(end);
    }
    rb.finish(
        "direct-query (Diffusion)",
        &dep.nodes,
        cfg.days,
        true,
        false,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DriverConfig {
        DriverConfig {
            sensors: 3,
            days: 1,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn latency_dominated_by_wakeup_preamble() {
        let r = run(&quick_cfg());
        // Every NOW query pays at least the 2 s LPL preamble.
        assert!(r.now_latency_mean_ms >= 2000.0, "{}", r.now_latency_mean_ms);
    }

    #[test]
    fn answers_are_accurate_when_delivered() {
        let r = run(&quick_cfg());
        // Direct answers come from the archive: accurate to the reply codec.
        assert!(r.now_error_mean < 0.5, "{}", r.now_error_mean);
    }

    #[test]
    fn past_queries_are_served_from_mote_archive() {
        let r = run(&quick_cfg());
        assert!(r.supports_past);
        assert!(
            r.past_answered_fraction > 0.5,
            "{}",
            r.past_answered_fraction
        );
    }

    #[test]
    fn no_push_traffic_outside_queries() {
        let mut cfg = quick_cfg();
        // No queries → no sensor radio TX at all.
        cfg.queries.rate_per_hour = 0.0;
        let r = run(&cfg);
        assert_eq!(r.bytes_per_sensor_per_day, 0.0);
        assert!(!r.uses_prediction);
    }
}
