//! Value-driven push (the Δ-threshold baseline of Figure 2).
//!
//! The sensor pushes a sample whenever it differs from the last pushed
//! value by more than Δ. The sink's view is then always within Δ of the
//! truth (modulo losses), with no model, no batching, and no archival
//! query path — PAST queries can only be answered from whatever happened
//! to be pushed.

use presto_net::LinkModel;
use presto_proxy::{PrestoProxy, ProxyConfig};
use presto_sensor::{PushPolicy, SensorConfig, SensorNode, UplinkMsg};
use presto_sim::{SimDuration, SimTime};
use presto_workloads::lab::LabReading;
use presto_workloads::{QueryTarget, TimeScope};

use crate::driver::{build, ArchReport, DriverConfig, ReportBuilder};

/// Runs the value-driven architecture for Table 1.
pub fn run(cfg: &DriverConfig, delta: f64) -> ArchReport {
    let mut dep = build(
        cfg,
        PushPolicy::ValueDriven { delta },
        SimDuration::from_secs(1),
    );
    let mut proxy = PrestoProxy::new(ProxyConfig {
        engine: presto_proxy::EngineConfig {
            min_history: usize::MAX,
            ..presto_proxy::EngineConfig::default()
        },
        ..ProxyConfig::default()
    });
    for i in 0..cfg.sensors {
        proxy.register_sensor(i as u16);
    }

    let mut rb = ReportBuilder::default();
    let epochs = SimDuration::from_days(cfg.days).div_duration(dep.epoch);
    let mut qi = 0usize;
    let mut truth_now = vec![0.0f64; cfg.sensors];

    for e in 0..epochs {
        let t = SimTime::ZERO + dep.epoch * e;
        let readings = dep.lab.step();
        for (s, r) in readings.iter().enumerate() {
            truth_now[s] = r.value;
            for msg in dep.nodes[s].on_sample(r.timestamp, r.value, None) {
                proxy.on_uplink(&msg);
            }
        }
        while qi < dep.queries.len() && dep.queries[qi].arrival <= t + dep.epoch {
            let q = dep.queries[qi];
            qi += 1;
            let sensor = match q.target {
                QueryTarget::Sensor(s) => (s.min(cfg.sensors - 1)) as u16,
                QueryTarget::ProxyGroup(_) => 0,
            };
            let cache = proxy.cache(sensor).expect("registered");
            match q.scope {
                TimeScope::Now => {
                    // Answer: the last pushed value; within Δ by design.
                    if let Some(s) = cache.latest() {
                        rb.now_error
                            .record((s.value - truth_now[sensor as usize]).abs());
                    }
                    rb.now_latency_ms.record(1.0);
                }
                TimeScope::Past { from: _, to } => {
                    rb.past_total += 1;
                    // Only incidentally pushed values cover the range; a
                    // push at-or-before the range also bounds it (the
                    // value did not move more than Δ since).
                    if cache.latest_at(to).is_some() {
                        rb.past_answered += 1;
                    }
                }
            }
        }
    }
    let end = SimTime::ZERO + dep.epoch * epochs;
    for n in &mut dep.nodes {
        n.advance_to(end);
    }
    rb.finish(
        &format!("value-push (delta={delta})"),
        &dep.nodes,
        cfg.days,
        false,
        false,
    )
}

/// Result of running one push policy over a single-sensor trace —
/// the quantum of the Figure 2 sweep.
#[derive(Clone, Debug)]
pub struct PolicyEnergy {
    /// Policy label.
    pub label: String,
    /// Push energy: radio TX + RX only (preambles, frames, ACKs), joules.
    /// This is the quantity Figure 2 plots — idle listening is identical
    /// across arms and reported separately.
    pub push_j: f64,
    /// Total sensor radio energy including idle listening, joules.
    pub radio_j: f64,
    /// Total sensor energy (radio + cpu + flash + sensing), joules.
    pub total_j: f64,
    /// Payload bytes offered to the MAC.
    pub bytes: u64,
    /// Messages that reached the proxy.
    pub delivered: u64,
}

/// Runs one push policy over a prepared single-sensor trace and returns
/// its energy account. Used by the Figure 2 harness for all four arms.
pub fn energy_of_policy(
    trace: &[LabReading],
    policy: PushPolicy,
    loss: f64,
    seed: u64,
) -> PolicyEnergy {
    let label = policy.label();
    let link = if loss > 0.0 {
        LinkModel::new(
            presto_net::LossProcess::Bernoulli(loss),
            presto_sim::SimRng::new(seed),
        )
    } else {
        LinkModel::perfect()
    };
    let mut node = SensorNode::new(
        0,
        SensorConfig {
            push: policy,
            ..SensorConfig::default()
        },
        link,
    );
    let mut delivered: u64 = 0;
    for r in trace {
        delivered += node.on_sample(r.timestamp, r.value, None).len() as u64;
    }
    // Drain any residual batch so arms are charged for all data.
    if let Some(t) = trace.last().map(|r| r.timestamp) {
        if node.flush_batch(t, None).is_some() {
            delivered += 1;
        }
    }
    let ledger = node.ledger();
    PolicyEnergy {
        label,
        push_j: ledger.category(presto_sim::EnergyCategory::RadioTx)
            + ledger.category(presto_sim::EnergyCategory::RadioRx),
        radio_j: ledger.radio_total(),
        total_j: ledger.total(),
        bytes: node.stats().bytes_sent,
        delivered,
    }
}

/// Convenience: `UplinkMsg` count sanity helper used in tests.
pub fn delivered_count(msgs: &[UplinkMsg]) -> usize {
    msgs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_workloads::{LabDeployment, LabParams};

    fn quick_cfg() -> DriverConfig {
        DriverConfig {
            sensors: 3,
            days: 1,
            ..DriverConfig::default()
        }
    }

    fn week_trace(seed: u64) -> Vec<LabReading> {
        LabDeployment::single_sensor_trace(LabParams::default(), seed, SimDuration::from_days(3))
    }

    #[test]
    fn now_error_bounded_by_delta() {
        let r = run(&quick_cfg(), 1.0);
        // Mean error well under Δ (worst case Δ + loss effects).
        assert!(r.now_error_mean < 1.2, "{}", r.now_error_mean);
        assert!(!r.supports_past);
    }

    #[test]
    fn smaller_delta_costs_more_energy() {
        let r1 = run(&quick_cfg(), 1.0);
        let r2 = run(&quick_cfg(), 2.0);
        assert!(
            r1.radio_energy_per_day_j > r2.radio_energy_per_day_j,
            "delta=1 {} vs delta=2 {}",
            r1.radio_energy_per_day_j,
            r2.radio_energy_per_day_j
        );
    }

    #[test]
    fn figure2_arms_are_ordered_as_in_the_paper() {
        // On the same trace: value-driven Δ=1 > Δ=2, batched raw >
        // batched wavelet, and both batched arms decrease with interval.
        let trace = week_trace(7);
        let v1 = energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 1.0 }, 0.0, 1);
        let v2 = energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 2.0 }, 0.0, 1);
        assert!(
            v1.radio_j > v2.radio_j * 1.3,
            "{} vs {}",
            v1.radio_j,
            v2.radio_j
        );

        let batched = |mins: f64, comp: bool| {
            energy_of_policy(
                &trace,
                PushPolicy::Batched {
                    interval: SimDuration::from_mins_f64(mins),
                    compression: comp.then(presto_wavelet::CodecParams::denoising),
                },
                0.0,
                1,
            )
        };
        let raw_small = batched(16.5, false);
        let raw_big = batched(264.0, false);
        assert!(
            raw_small.radio_j > raw_big.radio_j,
            "{} vs {}",
            raw_small.radio_j,
            raw_big.radio_j
        );
        let wav_big = batched(264.0, true);
        assert!(
            wav_big.radio_j < raw_big.radio_j,
            "wavelet {} vs raw {}",
            wav_big.radio_j,
            raw_big.radio_j
        );
    }

    #[test]
    fn lossy_links_waste_energy_on_retries() {
        let trace = week_trace(9);
        let clean = energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 1.0 }, 0.0, 2);
        let lossy = energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 1.0 }, 0.3, 2);
        // Retransmissions cost extra frame energy (the wake-up preamble
        // is paid once per send either way), and some pushes are lost
        // outright.
        assert!(
            lossy.radio_j > clean.radio_j,
            "lossy {} vs clean {}",
            lossy.radio_j,
            clean.radio_j
        );
        assert!(lossy.delivered < clean.delivered);
    }
}
