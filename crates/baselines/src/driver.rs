//! Shared deployment driver for the architecture comparison.
//!
//! Every arm — the three baselines here and PRESTO in `presto-core` —
//! runs the same Intel-Lab-style workload and the same Poisson query
//! stream, and reports the same [`ArchReport`] row, so the regenerated
//! Table 1 compares like with like.

use presto_net::{LinkModel, LossProcess};
use presto_reliability::DownlinkChannel;
use presto_sensor::{PushPolicy, SensorConfig, SensorNode};
use presto_sim::metrics::Summary;
use presto_sim::{SimDuration, SimRng, SimTime};
use presto_workloads::{LabDeployment, LabParams, QueryGen, QueryParams, QuerySpec};

/// Configuration shared by every architecture arm.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Number of sensors under the proxy.
    pub sensors: usize,
    /// Simulated duration in days.
    pub days: u64,
    /// Master seed.
    pub seed: u64,
    /// Workload parameters.
    pub lab: LabParams,
    /// Query workload parameters.
    pub queries: QueryParams,
    /// Uplink/downlink frame loss probability.
    pub loss: f64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        let sensors = 8;
        DriverConfig {
            sensors,
            days: 2,
            seed: 42,
            lab: LabParams {
                sensors,
                ..LabParams::default()
            },
            queries: QueryParams {
                sensors,
                proxies: 1,
                group_fraction: 0.0,
                rate_per_hour: 20.0,
                ..QueryParams::default()
            },
            loss: 0.05,
        }
    }
}

/// One row of the regenerated Table 1.
#[derive(Clone, Debug)]
pub struct ArchReport {
    /// Architecture label.
    pub label: String,
    /// Mean sensor energy, joules per day (all categories).
    pub sensor_energy_per_day_j: f64,
    /// Mean sensor *radio* energy, joules per day.
    pub radio_energy_per_day_j: f64,
    /// Mean NOW-query latency, milliseconds.
    pub now_latency_mean_ms: f64,
    /// 95th-percentile NOW-query latency, milliseconds.
    pub now_latency_p95_ms: f64,
    /// Mean absolute NOW answer error vs ground truth.
    pub now_error_mean: f64,
    /// Fraction of PAST queries answered with data.
    pub past_answered_fraction: f64,
    /// Mean payload bytes offered to the MAC per sensor per day.
    pub bytes_per_sensor_per_day: f64,
    /// Whether the architecture supports historical queries at all.
    pub supports_past: bool,
    /// Whether prediction is used anywhere in the answer path.
    pub uses_prediction: bool,
}

/// A built deployment: nodes, their downlink links, the workload, and
/// the query stream (merged and time-sorted against epochs by callers).
pub struct Deployment {
    /// Sensor nodes.
    pub nodes: Vec<SensorNode>,
    /// Per-sensor downlink channels (fabric-routed proxy→sensor path).
    pub downlinks: Vec<DownlinkChannel>,
    /// The workload generator.
    pub lab: LabDeployment,
    /// The query stream, time-ordered.
    pub queries: Vec<QuerySpec>,
    /// Ground truth: `truth[epoch][sensor]`.
    pub truth: Vec<Vec<f64>>,
    /// Epoch length.
    pub epoch: SimDuration,
}

/// Builds a deployment with the given push policy applied to every node.
pub fn build(cfg: &DriverConfig, push: PushPolicy, lpl: SimDuration) -> Deployment {
    let lab = LabDeployment::new(
        LabParams {
            sensors: cfg.sensors,
            ..cfg.lab.clone()
        },
        cfg.seed,
    );
    let rng = SimRng::new(cfg.seed);
    let loss = |p: f64, r: SimRng| {
        if p > 0.0 {
            LinkModel::new(LossProcess::Bernoulli(p), r)
        } else {
            LinkModel::perfect()
        }
    };
    let nodes = (0..cfg.sensors)
        .map(|i| {
            let config = SensorConfig {
                push: push.clone(),
                duty: presto_net::DutyCycle::lpl(lpl),
                ..SensorConfig::default()
            };
            SensorNode::new(
                i as u16,
                config,
                loss(cfg.loss, rng.split(&format!("uplink-{i}"))),
            )
        })
        .collect();
    let downlinks = (0..cfg.sensors)
        .map(|i| DownlinkChannel::over(loss(cfg.loss, rng.split(&format!("downlink-{i}")))))
        .collect();
    let queries = QueryGen::new(
        QueryParams {
            sensors: cfg.sensors,
            ..cfg.queries.clone()
        },
        cfg.seed ^ 0x51ab,
    )
    .generate(
        // Let queries start after a warm-up day (or half the horizon).
        SimTime::from_hours((cfg.days * 24 / 4).max(6)),
        SimDuration::from_days(cfg.days) - SimDuration::from_hours((cfg.days * 24 / 4).max(6)),
    );
    let epoch = cfg.lab.epoch;
    Deployment {
        nodes,
        downlinks,
        lab,
        queries,
        truth: Vec::new(),
        epoch,
    }
}

/// Accumulates per-query measurements into an [`ArchReport`].
#[derive(Default)]
pub struct ReportBuilder {
    /// NOW latencies, ms.
    pub now_latency_ms: Summary,
    /// NOW absolute errors.
    pub now_error: Summary,
    /// PAST queries issued.
    pub past_total: u64,
    /// PAST queries answered with at least one sample.
    pub past_answered: u64,
}

impl ReportBuilder {
    /// Finalizes the report from the builder plus node ledgers.
    pub fn finish(
        self,
        label: &str,
        nodes: &[SensorNode],
        days: u64,
        supports_past: bool,
        uses_prediction: bool,
    ) -> ArchReport {
        let n = nodes.len().max(1) as f64;
        let d = days.max(1) as f64;
        let total: f64 = nodes.iter().map(|s| s.ledger().total()).sum();
        let radio: f64 = nodes.iter().map(|s| s.ledger().radio_total()).sum();
        let bytes: f64 = nodes.iter().map(|s| s.stats().bytes_sent as f64).sum();
        ArchReport {
            label: label.to_string(),
            sensor_energy_per_day_j: total / n / d,
            radio_energy_per_day_j: radio / n / d,
            now_latency_mean_ms: self.now_latency_ms.mean(),
            now_latency_p95_ms: self.now_latency_ms.p95(),
            now_error_mean: self.now_error.mean(),
            past_answered_fraction: if self.past_total == 0 {
                0.0
            } else {
                self.past_answered as f64 / self.past_total as f64
            },
            bytes_per_sensor_per_day: bytes / n / d,
            supports_past,
            uses_prediction,
        }
    }
}

/// Renders a collection of reports as the Table 1 text block.
pub fn render_table(reports: &[ArchReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>12} {:>6} {:>6}\n",
        "architecture",
        "J/day/node",
        "radio J/day",
        "now ms",
        "now p95 ms",
        "now err",
        "past frac",
        "B/day/node",
        "past",
        "pred"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<28} {:>12.2} {:>12.2} {:>12.1} {:>12.1} {:>10.3} {:>10.2} {:>12.0} {:>6} {:>6}\n",
            r.label,
            r.sensor_energy_per_day_j,
            r.radio_energy_per_day_j,
            r.now_latency_mean_ms,
            r.now_latency_p95_ms,
            r.now_error_mean,
            r.past_answered_fraction,
            r.bytes_per_sensor_per_day,
            if r.supports_past { "yes" } else { "no" },
            if r.uses_prediction { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_creates_matching_counts() {
        let cfg = DriverConfig::default();
        let d = build(&cfg, PushPolicy::Silent, SimDuration::from_secs(1));
        assert_eq!(d.nodes.len(), cfg.sensors);
        assert_eq!(d.downlinks.len(), cfg.sensors);
        assert!(!d.queries.is_empty());
        // Queries arrive after the warm-up period.
        assert!(d.queries[0].arrival >= SimTime::from_hours(6));
    }

    #[test]
    fn report_builder_aggregates() {
        let cfg = DriverConfig {
            sensors: 2,
            ..DriverConfig::default()
        };
        let d = build(&cfg, PushPolicy::Silent, SimDuration::from_secs(1));
        let mut rb = ReportBuilder::default();
        rb.now_latency_ms.record(10.0);
        rb.now_latency_ms.record(20.0);
        rb.now_error.record(0.5);
        rb.past_total = 4;
        rb.past_answered = 3;
        let r = rb.finish("test", &d.nodes, 2, true, false);
        assert_eq!(r.now_latency_mean_ms, 15.0);
        assert_eq!(r.past_answered_fraction, 0.75);
        assert!(r.supports_past);
        assert!(!r.uses_prediction);
        let table = render_table(&[r]);
        assert!(table.contains("test"));
        assert!(table.contains("architecture"));
    }

    #[test]
    fn deterministic_build() {
        let cfg = DriverConfig::default();
        let a = build(&cfg, PushPolicy::Silent, SimDuration::from_secs(1));
        let b = build(&cfg, PushPolicy::Silent, SimDuration::from_secs(1));
        assert_eq!(a.queries, b.queries);
    }
}
