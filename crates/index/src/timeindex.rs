//! Range routing over archived time intervals.
//!
//! Sealed archive segments carry a covered `[start, end]` span (see
//! `presto-archive`). Each proxy registers the spans of its sensors'
//! segments here; a multi-proxy range query then asks the index which
//! proxies hold *any* data overlapping the window and prunes the rest
//! before issuing pulls — the paper's "simple time-based index
//! structure" lifted to the proxy tier.
//!
//! The interval starts live in the existing [`SkipGraph`] (keyed by
//! start microseconds), so lookups pay — and report — the same
//! distributed hop accounting as sensor-id routing. A side table maps
//! each start key to the registered `(end, proxy)` pairs, and the
//! index tracks the longest registered span so a stabbing query knows
//! how far left of the window it must scan.

use std::collections::BTreeMap;

use presto_sim::SimTime;

use crate::skipgraph::{OpStats, SkipGraph};

/// One registered interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IntervalEntry {
    /// Covered end, microseconds.
    end_us: u64,
    /// Owning proxy.
    proxy: usize,
}

/// A distributed index of per-proxy archived time intervals.
#[derive(Clone, Debug)]
pub struct TimeRangeIndex {
    graph: SkipGraph<u64>,
    /// start-micros → registered intervals beginning there.
    entries: BTreeMap<u64, Vec<IntervalEntry>>,
    /// Longest registered `end - start`, bounding the leftward scan of a
    /// stabbing query.
    max_span_us: u64,
    registered: u64,
    seed: u64,
}

impl TimeRangeIndex {
    /// Creates an empty index; `seed` drives skip-graph membership
    /// vectors.
    pub fn new(seed: u64) -> Self {
        TimeRangeIndex {
            graph: SkipGraph::new(seed),
            entries: BTreeMap::new(),
            max_span_us: 0,
            registered: 0,
            seed,
        }
    }

    /// Drops every registration (keeping the membership seed). Callers
    /// rebuild from live segment spans so entries for reclaimed
    /// segments do not accumulate forever.
    pub fn clear(&mut self) {
        self.graph = SkipGraph::new(self.seed);
        self.entries.clear();
        self.max_span_us = 0;
        self.registered = 0;
    }

    /// Number of distinct `(proxy, start)` registrations.
    pub fn len(&self) -> u64 {
        self.registered
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.registered == 0
    }

    /// Registers (or widens) a proxy's archived interval. Returns the
    /// skip-graph insertion cost when the start was new.
    pub fn register(&mut self, proxy: usize, start: SimTime, end: SimTime) -> OpStats {
        let start_us = start.as_micros();
        let end_us = end.as_micros().max(start_us);
        self.max_span_us = self.max_span_us.max(end_us - start_us);
        let slot = self.entries.entry(start_us).or_default();
        if let Some(existing) = slot.iter_mut().find(|e| e.proxy == proxy) {
            // Same segment re-registered after growing: keep the widest
            // end seen.
            existing.end_us = existing.end_us.max(end_us);
            return OpStats::default();
        }
        slot.push(IntervalEntry { end_us, proxy });
        self.registered += 1;
        if self.graph.contains(start_us) {
            OpStats::default()
        } else {
            self.graph.insert(start_us)
        }
    }

    /// Proxies whose registered intervals overlap `[from, to]`, sorted
    /// and deduplicated, with the skip-graph routing cost. An empty
    /// index reports no proxies (callers fall back to broadcast).
    pub fn proxies_overlapping(&self, from: SimTime, to: SimTime) -> (Vec<usize>, OpStats) {
        if to < from {
            return (Vec::new(), OpStats::default());
        }
        // An interval overlaps iff start ≤ to and end ≥ from; every
        // candidate start lies in [from - max_span, to].
        let lo = from.as_micros().saturating_sub(self.max_span_us);
        let (starts, stats) = self.graph.range(lo, to.as_micros());
        let mut proxies: Vec<usize> = starts
            .into_iter()
            .filter_map(|s| self.entries.get(&s))
            .flatten()
            .filter(|e| e.end_us >= from.as_micros())
            .map(|e| e.proxy)
            .collect();
        proxies.sort_unstable();
        proxies.dedup();
        (proxies, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_index_prunes_everything() {
        let idx = TimeRangeIndex::new(7);
        assert!(idx.is_empty());
        let (proxies, _) = idx.proxies_overlapping(t(0), t(100));
        assert!(proxies.is_empty());
    }

    #[test]
    fn overlap_and_pruning() {
        let mut idx = TimeRangeIndex::new(7);
        idx.register(0, t(0), t(100));
        idx.register(1, t(50), t(150));
        idx.register(2, t(400), t(500));
        assert_eq!(idx.len(), 3);

        let (p, _) = idx.proxies_overlapping(t(60), t(90));
        assert_eq!(p, vec![0, 1]);
        // A window past every interval prunes all proxies.
        let (p, _) = idx.proxies_overlapping(t(600), t(700));
        assert!(p.is_empty());
        // A window inside only the late interval prunes the early two.
        let (p, _) = idx.proxies_overlapping(t(450), t(460));
        assert_eq!(p, vec![2]);
        // Stabbing query: window strictly inside [0, 100].
        let (p, _) = idx.proxies_overlapping(t(10), t(20));
        assert_eq!(p, vec![0]);
    }

    #[test]
    fn reregistration_widens_instead_of_duplicating() {
        let mut idx = TimeRangeIndex::new(3);
        idx.register(0, t(0), t(50));
        idx.register(0, t(0), t(80));
        assert_eq!(idx.len(), 1);
        let (p, _) = idx.proxies_overlapping(t(60), t(70));
        assert_eq!(p, vec![0]);
    }

    #[test]
    fn shared_start_keys_keep_both_proxies() {
        let mut idx = TimeRangeIndex::new(3);
        idx.register(0, t(10), t(20));
        idx.register(1, t(10), t(30));
        let (p, _) = idx.proxies_overlapping(t(25), t(26));
        assert_eq!(p, vec![1]);
        let (p, _) = idx.proxies_overlapping(t(15), t(16));
        assert_eq!(p, vec![0, 1]);
    }

    #[test]
    fn clear_drops_stale_registrations() {
        let mut idx = TimeRangeIndex::new(5);
        idx.register(0, t(0), t(100));
        idx.register(1, t(500), t(600));
        idx.clear();
        assert!(idx.is_empty());
        let (p, _) = idx.proxies_overlapping(t(0), t(1000));
        assert!(p.is_empty(), "cleared index still routed {p:?}");
        // Rebuild with only the live interval: the stale one is gone.
        idx.register(1, t(500), t(600));
        let (p, _) = idx.proxies_overlapping(t(0), t(100));
        assert!(p.is_empty());
        let (p, _) = idx.proxies_overlapping(t(550), t(560));
        assert_eq!(p, vec![1]);
    }

    #[test]
    fn routing_reports_hops() {
        let mut idx = TimeRangeIndex::new(11);
        for i in 0..64u64 {
            idx.register((i % 4) as usize, t(i * 100), t(i * 100 + 50));
        }
        let (p, stats) = idx.proxies_overlapping(t(1000), t(1200));
        assert!(!p.is_empty());
        assert!(stats.hops > 0, "skip-graph routing must cost hops");
    }
}
