//! Spatial consistency between overlapping proxies, and wired-side
//! replication of wireless proxy caches.
//!
//! "Multiple proxies might be responsible for a group of sensor nodes for
//! redundancy, reliability, and fault-tolerance reasons, and hence, cache
//! consistency issues need to be addressed. … caches and prediction
//! models at the wireless proxies may need to be further replicated at
//! the wired proxies to enable low-latency query responses" (paper §5).

use std::collections::BTreeMap;

use presto_sim::{SimDuration, SimTime};

/// Data quality rank of a cache entry (higher wins on conflict).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum EntryQuality {
    /// Model-extrapolated filler.
    Extrapolated,
    /// Lossy pushed/batched view.
    Lossy,
    /// Pulled exact data.
    Exact,
}

/// One replicated cache entry for a `(sensor, epoch)` cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicaEntry {
    /// Owning proxy.
    pub proxy: usize,
    /// Sensor id.
    pub sensor: u16,
    /// Epoch timestamp.
    pub t: SimTime,
    /// Value.
    pub value: f64,
    /// Quality rank.
    pub quality: EntryQuality,
    /// Per-proxy monotonic version.
    pub version: u64,
}

/// Reconciles entries for cells covered by multiple proxies.
///
/// Conflict rule: higher quality wins; equal quality → higher version;
/// equal version → lower proxy id (deterministic tiebreak).
#[derive(Clone, Debug, Default)]
pub struct ConsistencyManager {
    cells: BTreeMap<(u16, u64), ReplicaEntry>,
    /// Conflicts observed (both sides present, different values).
    pub conflicts_resolved: u64,
}

impl ConsistencyManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(sensor: u16, t: SimTime) -> (u16, u64) {
        (sensor, t.as_micros())
    }

    /// Integrates an entry, applying the conflict rule. Returns `true`
    /// if the entry became (or stayed) the winner.
    pub fn integrate(&mut self, entry: ReplicaEntry) -> bool {
        let key = Self::key(entry.sensor, entry.t);
        match self.cells.get(&key) {
            None => {
                self.cells.insert(key, entry);
                true
            }
            Some(existing) => {
                let wins = (entry.quality, entry.version, std::cmp::Reverse(entry.proxy))
                    > (
                        existing.quality,
                        existing.version,
                        std::cmp::Reverse(existing.proxy),
                    );
                if existing.value != entry.value {
                    self.conflicts_resolved += 1;
                }
                if wins {
                    self.cells.insert(key, entry);
                }
                wins
            }
        }
    }

    /// The winning entry for a cell.
    pub fn get(&self, sensor: u16, t: SimTime) -> Option<ReplicaEntry> {
        self.cells.get(&Self::key(sensor, t)).copied()
    }

    /// Number of distinct cells held.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if no cells are held.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Replicates a wireless proxy's cache entries onto a wired proxy over a
/// bandwidth-limited backhaul, tracking staleness and bytes moved.
#[derive(Clone, Debug)]
pub struct Replicator {
    /// Backhaul bandwidth, bytes/second (802.11 mesh link).
    pub bandwidth_bps: f64,
    /// Replication batch period.
    pub period: SimDuration,
    /// Entries awaiting shipment.
    pending: Vec<ReplicaEntry>,
    /// Mirror at the wired side.
    mirror: ConsistencyManager,
    last_ship: SimTime,
    /// Total bytes shipped.
    pub bytes_shipped: u64,
    /// Cumulative shipment delay experienced by entries.
    pub total_staleness: SimDuration,
    /// Entries shipped.
    pub entries_shipped: u64,
}

/// Bytes per replicated entry on the backhaul (ids + timestamp + value +
/// version + quality).
const ENTRY_BYTES: usize = 2 + 8 + 4 + 8 + 1 + 2;

impl Replicator {
    /// Creates a replicator with the given backhaul characteristics.
    pub fn new(bandwidth_bps: f64, period: SimDuration) -> Self {
        Replicator {
            bandwidth_bps,
            period,
            pending: Vec::new(),
            mirror: ConsistencyManager::new(),
            last_ship: SimTime::ZERO,
            bytes_shipped: 0,
            total_staleness: SimDuration::ZERO,
            entries_shipped: 0,
        }
    }

    /// Queues an entry produced at the wireless proxy.
    pub fn enqueue(&mut self, entry: ReplicaEntry) {
        self.pending.push(entry);
    }

    /// Ships pending entries if the period elapsed; returns the transfer
    /// latency of this shipment (size / bandwidth), if one happened.
    pub fn tick(&mut self, now: SimTime) -> Option<SimDuration> {
        if now - self.last_ship < self.period || self.pending.is_empty() {
            return None;
        }
        self.last_ship = now;
        let bytes = self.pending.len() * ENTRY_BYTES;
        let latency = SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps);
        for e in self.pending.drain(..) {
            self.total_staleness += now - e.t;
            self.entries_shipped += 1;
            self.mirror.integrate(e);
        }
        self.bytes_shipped += bytes as u64;
        Some(latency)
    }

    /// The wired-side mirror.
    pub fn mirror(&self) -> &ConsistencyManager {
        &self.mirror
    }

    /// Mean staleness of shipped entries.
    pub fn mean_staleness(&self) -> SimDuration {
        if self.entries_shipped == 0 {
            SimDuration::ZERO
        } else {
            self.total_staleness / self.entries_shipped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        proxy: usize,
        sensor: u16,
        t_secs: u64,
        value: f64,
        q: EntryQuality,
        v: u64,
    ) -> ReplicaEntry {
        ReplicaEntry {
            proxy,
            sensor,
            t: SimTime::from_secs(t_secs),
            value,
            quality: q,
            version: v,
        }
    }

    #[test]
    fn exact_beats_lossy_beats_extrapolated() {
        let mut m = ConsistencyManager::new();
        assert!(m.integrate(entry(0, 1, 10, 20.0, EntryQuality::Extrapolated, 5)));
        assert!(m.integrate(entry(1, 1, 10, 20.5, EntryQuality::Lossy, 1)));
        assert_eq!(m.get(1, SimTime::from_secs(10)).unwrap().value, 20.5);
        assert!(m.integrate(entry(0, 1, 10, 20.2, EntryQuality::Exact, 1)));
        assert_eq!(m.get(1, SimTime::from_secs(10)).unwrap().value, 20.2);
        // A later lossy write cannot displace exact data.
        assert!(!m.integrate(entry(1, 1, 10, 30.0, EntryQuality::Lossy, 9)));
        assert_eq!(m.get(1, SimTime::from_secs(10)).unwrap().value, 20.2);
    }

    #[test]
    fn version_breaks_equal_quality() {
        let mut m = ConsistencyManager::new();
        m.integrate(entry(0, 2, 5, 1.0, EntryQuality::Lossy, 3));
        assert!(!m.integrate(entry(1, 2, 5, 2.0, EntryQuality::Lossy, 2)));
        assert!(m.integrate(entry(1, 2, 5, 3.0, EntryQuality::Lossy, 4)));
        assert_eq!(m.get(2, SimTime::from_secs(5)).unwrap().value, 3.0);
    }

    #[test]
    fn proxy_id_is_deterministic_tiebreak() {
        let mut m = ConsistencyManager::new();
        m.integrate(entry(3, 1, 7, 1.0, EntryQuality::Lossy, 2));
        // Same quality + version from a lower proxy id wins.
        assert!(m.integrate(entry(1, 1, 7, 2.0, EntryQuality::Lossy, 2)));
        // And from a higher proxy id loses.
        assert!(!m.integrate(entry(5, 1, 7, 3.0, EntryQuality::Lossy, 2)));
        assert_eq!(m.conflicts_resolved, 2);
    }

    #[test]
    fn distinct_cells_do_not_conflict() {
        let mut m = ConsistencyManager::new();
        m.integrate(entry(0, 1, 1, 1.0, EntryQuality::Lossy, 1));
        m.integrate(entry(0, 1, 2, 2.0, EntryQuality::Lossy, 1));
        m.integrate(entry(0, 2, 1, 3.0, EntryQuality::Lossy, 1));
        assert_eq!(m.len(), 3);
        assert_eq!(m.conflicts_resolved, 0);
    }

    #[test]
    fn replicator_ships_on_period_and_tracks_staleness() {
        // 1 Mbps backhaul, 60 s batches.
        let mut r = Replicator::new(1e6, SimDuration::from_secs(60));
        for i in 0..100 {
            r.enqueue(entry(0, 1, i, 20.0, EntryQuality::Lossy, i));
        }
        // Too early: nothing ships.
        assert!(r.tick(SimTime::from_secs(30)).is_none());
        let latency = r.tick(SimTime::from_secs(60)).unwrap();
        assert!(latency > SimDuration::ZERO);
        assert_eq!(r.entries_shipped, 100);
        assert_eq!(r.mirror().len(), 100);
        assert!(r.bytes_shipped >= 100 * 25);
        // Mean staleness spans roughly the batch window.
        let stale = r.mean_staleness();
        assert!(stale > SimDuration::ZERO && stale < SimDuration::from_secs(62));
    }

    #[test]
    fn slower_backhaul_means_longer_transfer() {
        let mut fast = Replicator::new(10e6, SimDuration::from_secs(10));
        let mut slow = Replicator::new(0.5e6, SimDuration::from_secs(10));
        for i in 0..500 {
            fast.enqueue(entry(0, 1, i, 1.0, EntryQuality::Lossy, i));
            slow.enqueue(entry(0, 1, i, 1.0, EntryQuality::Lossy, i));
        }
        let lf = fast.tick(SimTime::from_secs(10)).unwrap();
        let ls = slow.tick(SimTime::from_secs(10)).unwrap();
        assert!(ls > lf * 10);
    }

    #[test]
    fn empty_replicator_never_ships() {
        let mut r = Replicator::new(1e6, SimDuration::from_secs(1));
        assert!(r.tick(SimTime::from_hours(1)).is_none());
        assert_eq!(r.mean_staleness(), SimDuration::ZERO);
    }
}
