//! The temporally ordered unified view.
//!
//! "A traffic monitoring network requires a view that preserves the order
//! in which moving vehicles are detected across a spatial region. Such
//! querying requires a single temporally ordered view of detections
//! across distributed proxies and sensors" (paper §5).
//!
//! [`UnifiedView`] merges per-proxy event streams into one stream ordered
//! by *corrected* timestamps: each source stream passes through its
//! sensor's [`crate::clock::ClockCorrector`] before the k-way merge.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use presto_sim::SimTime;

use crate::clock::ClockCorrector;

/// An item in the unified view.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewItem<T> {
    /// Corrected timestamp.
    pub t: SimTime,
    /// Source proxy.
    pub proxy: usize,
    /// The payload.
    pub item: T,
}

/// A merged, temporally ordered view over per-proxy streams.
#[derive(Clone, Debug, Default)]
pub struct UnifiedView<T> {
    items: Vec<ViewItem<T>>,
    sorted: bool,
}

impl<T: Clone> UnifiedView<T> {
    /// Creates an empty view.
    pub fn new() -> Self {
        UnifiedView {
            items: Vec::new(),
            sorted: true,
        }
    }

    /// Adds one proxy's stream, correcting timestamps through the
    /// supplied corrector (pass an uncalibrated corrector for wired
    /// proxies whose clocks are trusted).
    pub fn add_stream(
        &mut self,
        proxy: usize,
        corrector: &ClockCorrector,
        stream: impl IntoIterator<Item = (SimTime, T)>,
    ) {
        for (raw_t, item) in stream {
            self.items.push(ViewItem {
                t: corrector.correct(raw_t),
                proxy,
                item,
            });
        }
        self.sorted = false;
    }

    /// Number of items across all streams.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the view holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.items.sort_by_key(|i| i.t);
            self.sorted = true;
        }
    }

    /// The ordered view (oldest first).
    pub fn ordered(&mut self) -> &[ViewItem<T>] {
        self.ensure_sorted();
        &self.items
    }

    /// Items within `[from, to]`, ordered. Binary-searches the sorted
    /// view instead of scanning every item, so narrow windows cost
    /// O(log n + matches).
    pub fn range(&mut self, from: SimTime, to: SimTime) -> Vec<ViewItem<T>> {
        self.ensure_sorted();
        let lo = self.items.partition_point(|i| i.t < from);
        let hi = self.items.partition_point(|i| i.t <= to);
        self.items[lo..hi].to_vec()
    }

    /// Counts adjacent-pair ordering violations that *would* occur if the
    /// given raw (uncorrected) streams were naively concatenated and
    /// sorted per arrival — the metric E8 reports.
    pub fn ordering_violations(pairs: &[(SimTime, SimTime)]) -> u64 {
        // `pairs` maps true time → reported time; count inversions where
        // true order and reported order disagree.
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        for &(true_t, reported) in pairs {
            heap.push(Reverse((true_t.as_micros(), reported.as_micros())));
        }
        let mut violations = 0;
        let mut last_reported = 0u64;
        while let Some(Reverse((_, rep))) = heap.pop() {
            if rep < last_reported {
                violations += 1;
            } else {
                last_reported = rep;
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::DriftClock;

    #[test]
    fn merges_streams_in_time_order() {
        let mut v: UnifiedView<&str> = UnifiedView::new();
        let trusted = ClockCorrector::new();
        v.add_stream(
            0,
            &trusted,
            vec![(SimTime::from_secs(10), "a"), (SimTime::from_secs(30), "c")],
        );
        v.add_stream(
            1,
            &trusted,
            vec![(SimTime::from_secs(20), "b"), (SimTime::from_secs(40), "d")],
        );
        let order: Vec<&str> = v.ordered().iter().map(|i| i.item).collect();
        assert_eq!(order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn correction_restores_cross_proxy_order() {
        // Proxy 1's sensor clock runs 30 s fast; raw merge misorders.
        let skewed = DriftClock {
            offset_s: 30.0,
            skew_ppm: 0.0,
        };
        let mut corrector = ClockCorrector::new();
        for h in 0..4u64 {
            let t = SimTime::from_secs(h * 100);
            corrector.observe_beacon(skewed.local_time(t), t);
        }

        // True order: e1 (t=200, proxy 1), e2 (t=210, proxy 0).
        let raw_e1 = skewed.local_time(SimTime::from_secs(200)); // reads 230
        let mut naive: UnifiedView<&str> = UnifiedView::new();
        let trusted = ClockCorrector::new();
        naive.add_stream(1, &trusted, vec![(raw_e1, "e1")]);
        naive.add_stream(0, &trusted, vec![(SimTime::from_secs(210), "e2")]);
        let wrong: Vec<&str> = naive.ordered().iter().map(|i| i.item).collect();
        assert_eq!(wrong, vec!["e2", "e1"], "premise: naive order is wrong");

        let mut fixed: UnifiedView<&str> = UnifiedView::new();
        fixed.add_stream(1, &corrector, vec![(raw_e1, "e1")]);
        fixed.add_stream(0, &trusted, vec![(SimTime::from_secs(210), "e2")]);
        let right: Vec<&str> = fixed.ordered().iter().map(|i| i.item).collect();
        assert_eq!(right, vec!["e1", "e2"]);
    }

    #[test]
    fn range_filters_inclusively() {
        let mut v: UnifiedView<u32> = UnifiedView::new();
        let trusted = ClockCorrector::new();
        v.add_stream(
            0,
            &trusted,
            (0..10u32).map(|i| (SimTime::from_secs(i as u64 * 10), i)),
        );
        let r = v.range(SimTime::from_secs(20), SimTime::from_secs(50));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].item, 2);
        assert_eq!(r[3].item, 5);
    }

    #[test]
    fn ordering_violations_counts_inversions() {
        // Reported timestamps that invert two true-order pairs.
        let pairs = vec![
            (SimTime::from_secs(1), SimTime::from_secs(1)),
            (SimTime::from_secs(2), SimTime::from_secs(5)),
            (SimTime::from_secs(3), SimTime::from_secs(3)), // inverted vs 5
            (SimTime::from_secs(4), SimTime::from_secs(4)), // inverted vs 5
        ];
        assert_eq!(UnifiedView::<()>::ordering_violations(&pairs), 2);
        let clean: Vec<(SimTime, SimTime)> = (0..10)
            .map(|i| (SimTime::from_secs(i), SimTime::from_secs(i)))
            .collect();
        assert_eq!(UnifiedView::<()>::ordering_violations(&clean), 0);
    }

    #[test]
    fn empty_view() {
        let mut v: UnifiedView<u8> = UnifiedView::new();
        assert!(v.is_empty());
        assert!(v.ordered().is_empty());
        assert!(v.range(SimTime::ZERO, SimTime::from_secs(10)).is_empty());
    }
}
