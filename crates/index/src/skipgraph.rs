//! A Skip Graph (Aspnes & Shah, SODA 2003).
//!
//! Each node owns a key and a random membership vector. At level 0 all
//! nodes form one sorted doubly linked list; at level `l` a node belongs
//! to the list of nodes sharing its first `l` membership bits. Search
//! starts at the highest level and descends, giving O(log n) expected
//! hops; inserts splice the node into every level it belongs to.
//!
//! The structure is simulated centrally, but every pointer traversal is
//! counted as a network hop in [`OpStats`], because in a deployment each
//! node is a proxy and each traversal is a message.

use std::collections::BTreeMap;

use presto_sim::SimRng;

/// Per-operation cost accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Pointer traversals (inter-proxy messages).
    pub hops: u64,
}

presto_telemetry::observe_counters!(OpStats { hops });

impl OpStats {
    /// Accumulates another operation's hop count.
    pub fn merge(&mut self, other: &OpStats) {
        self.hops += other.hops;
    }
}

/// Which pointer of a `(left, right)` neighbour pair to set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Left,
    Right,
}

#[derive(Clone, Debug)]
struct Node<K> {
    /// Random membership vector (bit `l` decides the level-`l+1` list).
    mv: u64,
    /// `(left, right)` neighbour keys per level; index 0 is the base list.
    neighbors: Vec<(Option<K>, Option<K>)>,
}

/// A Skip Graph over keys `K`.
#[derive(Clone, Debug)]
pub struct SkipGraph<K: Ord + Copy> {
    nodes: BTreeMap<K, Node<K>>,
    rng: SimRng,
}

impl<K: Ord + Copy + std::fmt::Debug> SkipGraph<K> {
    /// Creates an empty graph with a deterministic membership-vector RNG.
    pub fn new(seed: u64) -> Self {
        SkipGraph {
            nodes: BTreeMap::new(),
            rng: SimRng::new(seed).split("skipgraph"),
        }
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True if `key` is a member.
    pub fn contains(&self, key: K) -> bool {
        self.nodes.contains_key(&key)
    }

    /// The smallest member key, usable as a search introducer. (BTreeMap
    /// makes this the *same* key on every run — the introducer feeds hop
    /// counts, so it must not depend on map internals.)
    pub fn introducer(&self) -> Option<K> {
        self.nodes.keys().next().copied()
    }

    fn level_count(&self) -> usize {
        // log2(n) + 1 levels suffice with high probability.
        (usize::BITS - self.nodes.len().leading_zeros()) as usize + 1
    }

    /// Matching membership-prefix test for the level-`l` list (levels > 0
    /// require the first `l` bits to agree; level 0 always matches).
    fn same_list(&self, a: K, b: K, level: usize) -> bool {
        if level == 0 {
            return true;
        }
        let ma = self.nodes[&a].mv;
        let mb = self.nodes[&b].mv;
        let mask = (1u64 << level) - 1;
        (ma & mask) == (mb & mask)
    }

    /// Finds the member with the greatest key ≤ `target`, starting from
    /// `start`. Returns `None` if every member key exceeds `target`.
    pub fn search(&self, start: K, target: K) -> (Option<K>, OpStats) {
        let mut stats = OpStats::default();
        if !self.nodes.contains_key(&start) {
            return (None, stats);
        }
        let mut cur = start;
        let mut level = self.nodes[&cur].neighbors.len().saturating_sub(1);
        loop {
            if cur <= target {
                // Move right as far as possible without passing target.
                while let Some(r) = self.nodes[&cur].neighbors.get(level).and_then(|n| n.1) {
                    if r <= target {
                        cur = r;
                        stats.hops += 1;
                    } else {
                        break;
                    }
                }
            } else {
                // Move left until at or below target.
                while cur > target {
                    match self.nodes[&cur].neighbors.get(level).and_then(|n| n.0) {
                        Some(l) => {
                            cur = l;
                            stats.hops += 1;
                        }
                        None => break,
                    }
                }
            }
            if level == 0 {
                break;
            }
            level -= 1;
        }
        if cur <= target {
            (Some(cur), stats)
        } else {
            (None, stats)
        }
    }

    /// Inserts a key (no-op for duplicates), returning the hop cost.
    pub fn insert(&mut self, key: K) -> OpStats {
        let mut stats = OpStats::default();
        if self.nodes.contains_key(&key) {
            return stats;
        }
        let mv = self.rng.next_u64();
        if self.nodes.is_empty() {
            self.nodes.insert(
                key,
                Node {
                    mv,
                    neighbors: vec![(None, None)],
                },
            );
            return stats;
        }

        // Level 0: find the predecessor via search and splice in.
        let intro = self.introducer().expect("non-empty graph");
        let (pred, s) = self.search(intro, key);
        stats.hops += s.hops;

        self.nodes.insert(
            key,
            Node {
                mv,
                neighbors: vec![(None, None)],
            },
        );
        match pred {
            Some(p) => {
                let succ = self.nodes[&p].neighbors[0].1;
                self.link(p, Some(key), 0, Side::Right);
                self.link(key, Some(p), 0, Side::Left);
                self.link(key, succ, 0, Side::Right);
                if let Some(s2) = succ {
                    self.link(s2, Some(key), 0, Side::Left);
                }
            }
            None => {
                // New minimum: find the old minimum by walking left from
                // the introducer at level 0.
                let mut cur = intro;
                while let Some(l) = self.nodes[&cur].neighbors[0].0 {
                    if l == key {
                        break;
                    }
                    cur = l;
                    stats.hops += 1;
                }
                self.link(key, Some(cur), 0, Side::Right);
                self.link(cur, Some(key), 0, Side::Left);
            }
        }

        // Higher levels: scan the level below for the nearest neighbours
        // in the same membership-prefix list.
        let max_levels = self.level_count();
        for level in 1..max_levels {
            // Walk left from key at level-1 to find the closest left
            // member of our level-`level` list.
            let left = {
                let mut cur = key;
                let mut found = None;
                while let Some(l) = self.nodes[&cur].neighbors[level - 1].0 {
                    stats.hops += 1;
                    cur = l;
                    if self.same_list(key, cur, level) {
                        found = Some(cur);
                        break;
                    }
                }
                found
            };
            let right = {
                let mut cur = key;
                let mut found = None;
                while let Some(r) = self.nodes[&cur].neighbors.get(level - 1).and_then(|n| n.1) {
                    stats.hops += 1;
                    cur = r;
                    if self.same_list(key, cur, level) {
                        found = Some(cur);
                        break;
                    }
                }
                found
            };
            if left.is_none() && right.is_none() {
                break;
            }
            self.ensure_level(key, level);
            self.nodes.get_mut(&key).expect("inserted").neighbors[level] = (left, right);
            if let Some(l) = left {
                self.ensure_level(l, level);
                self.nodes.get_mut(&l).expect("member").neighbors[level].1 = Some(key);
            }
            if let Some(r) = right {
                self.ensure_level(r, level);
                self.nodes.get_mut(&r).expect("member").neighbors[level].0 = Some(key);
            }
        }
        stats
    }

    /// Removes a key, relinking its neighbours at every level.
    pub fn remove(&mut self, key: K) -> OpStats {
        let mut stats = OpStats::default();
        let Some(node) = self.nodes.remove(&key) else {
            return stats;
        };
        for (level, (left, right)) in node.neighbors.iter().enumerate() {
            if let Some(l) = left {
                self.ensure_level(*l, level);
                self.nodes.get_mut(l).expect("member").neighbors[level].1 = *right;
                stats.hops += 1;
            }
            if let Some(r) = right {
                self.ensure_level(*r, level);
                self.nodes.get_mut(r).expect("member").neighbors[level].0 = *left;
                stats.hops += 1;
            }
        }
        stats
    }

    /// All keys in `[from, to]`, in order, with the hop cost (search +
    /// base-list walk — the range-query pattern a traffic application
    /// uses).
    pub fn range(&self, from: K, to: K) -> (Vec<K>, OpStats) {
        let mut stats = OpStats::default();
        let Some(intro) = self.introducer() else {
            return (Vec::new(), stats);
        };
        // Find the first key ≥ from: search for predecessor, step right.
        let (pred, s) = self.search(intro, from);
        stats.hops += s.hops;
        let mut cur = match pred {
            Some(p) if p == from => Some(p),
            Some(p) => {
                stats.hops += 1;
                self.nodes[&p].neighbors[0].1
            }
            None => {
                // Everything is > from: walk to the global minimum.
                let mut c = intro;
                while let Some(l) = self.nodes[&c].neighbors[0].0 {
                    c = l;
                    stats.hops += 1;
                }
                Some(c)
            }
        };
        let mut out = Vec::new();
        while let Some(k) = cur {
            if k > to {
                break;
            }
            if k >= from {
                out.push(k);
            }
            cur = self.nodes[&k].neighbors[0].1;
            stats.hops += 1;
        }
        (out, stats)
    }

    fn ensure_level(&mut self, key: K, level: usize) {
        let node = self.nodes.get_mut(&key).expect("member");
        while node.neighbors.len() <= level {
            node.neighbors.push((None, None));
        }
    }

    fn link(&mut self, key: K, to: Option<K>, level: usize, side: Side) {
        self.ensure_level(key, level);
        let node = self.nodes.get_mut(&key).expect("member");
        match side {
            Side::Left => node.neighbors[level].0 = to,
            Side::Right => node.neighbors[level].1 = to,
        }
    }

    /// Validates the level-0 list: sorted, doubly linked, covering every
    /// member exactly once. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Ok(());
        }
        // Find the minimum by walking left.
        let mut cur = self.introducer().expect("non-empty graph");
        let mut guard = self.nodes.len() + 1;
        while let Some(l) = self.nodes[&cur].neighbors[0].0 {
            cur = l;
            guard -= 1;
            if guard == 0 {
                return Err("cycle while seeking minimum".into());
            }
        }
        let mut seen = 1usize;
        let mut prev = cur;
        while let Some(r) = self.nodes[&prev].neighbors[0].1 {
            if r <= prev {
                return Err(format!("order violation: {prev:?} -> {r:?}"));
            }
            if self.nodes[&r].neighbors[0].0 != Some(prev) {
                return Err(format!("back-pointer broken at {r:?}"));
            }
            prev = r;
            seen += 1;
            if seen > self.nodes.len() {
                return Err("cycle in base list".into());
            }
        }
        if seen != self.nodes.len() {
            return Err(format!("base list covers {seen}/{}", self.nodes.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn build(keys: &[u64], seed: u64) -> SkipGraph<u64> {
        let mut g = SkipGraph::new(seed);
        for &k in keys {
            g.insert(k);
        }
        g
    }

    #[test]
    fn insert_and_search_small() {
        let g = build(&[10, 20, 30, 40, 50], 1);
        g.check_invariants().unwrap();
        let intro = g.introducer().unwrap();
        assert_eq!(g.search(intro, 30).0, Some(30));
        assert_eq!(g.search(intro, 35).0, Some(30));
        assert_eq!(g.search(intro, 5).0, None);
        assert_eq!(g.search(intro, 1000).0, Some(50));
    }

    #[test]
    fn search_matches_sorted_vector_reference() {
        let keys: Vec<u64> = (0..500).map(|i| i * 7 + (i % 3)).collect();
        let g = build(&keys, 2);
        g.check_invariants().unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let intro = g.introducer().unwrap();
        for target in (0..3700).step_by(13) {
            let expect = sorted.iter().rev().find(|&&k| k <= target).copied();
            assert_eq!(g.search(intro, target).0, expect, "target {target}");
        }
    }

    #[test]
    fn range_query_returns_ordered_keys() {
        let g = build(&[5, 1, 9, 3, 7, 11, 2], 3);
        let (r, _) = g.range(3, 9);
        assert_eq!(r, vec![3, 5, 7, 9]);
        let (all, _) = g.range(0, 100);
        assert_eq!(all, vec![1, 2, 3, 5, 7, 9, 11]);
        let (none, _) = g.range(50, 60);
        assert!(none.is_empty());
    }

    #[test]
    fn remove_keeps_invariants_and_hides_key() {
        let mut g = build(&[1, 2, 3, 4, 5, 6, 7, 8], 4);
        g.remove(4);
        g.remove(1);
        g.remove(8);
        g.check_invariants().unwrap();
        let intro = g.introducer().unwrap();
        assert_eq!(g.search(intro, 4).0, Some(3));
        assert_eq!(g.len(), 5);
        // Removing a non-member is a no-op.
        g.remove(99);
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn search_hops_scale_logarithmically() {
        // Average search hops at n=512 should be far below n/4 (a linear
        // scan) and within a small multiple of log2(n).
        let keys: Vec<u64> = (0..512).collect();
        let g = build(&keys, 5);
        // Fixed introducer, independent of `introducer()`'s choice of the
        // smallest key, so the expected-hops bound is exercised mid-list.
        let intro = 0;
        let mut total = 0u64;
        let mut count = 0u64;
        for target in (0..512).step_by(7) {
            let (_, s) = g.search(intro, target);
            total += s.hops;
            count += 1;
        }
        let avg = total as f64 / count as f64;
        assert!(avg < 40.0, "avg hops {avg} not logarithmic");
        assert!(avg > 1.0);
    }

    #[test]
    fn hops_grow_slowly_with_size() {
        let avg_hops = |n: u64, seed: u64| {
            let keys: Vec<u64> = (0..n).collect();
            let g = build(&keys, seed);
            // Fixed introducer, as above: keep hop counts deterministic.
            let intro = 0;
            let mut total = 0u64;
            let mut cnt = 0u64;
            for target in (0..n).step_by((n / 32).max(1) as usize) {
                total += g.search(intro, target).1.hops;
                cnt += 1;
            }
            total as f64 / cnt as f64
        };
        let h64 = avg_hops(64, 6);
        let h1024 = avg_hops(1024, 6);
        // 16× more nodes should cost far less than 16× more hops.
        assert!(h1024 < h64 * 6.0, "h64 {h64} h1024 {h1024}");
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut g = build(&[1, 2, 3], 7);
        let before = g.len();
        g.insert(2);
        assert_eq!(g.len(), before);
        g.check_invariants().unwrap();
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let mut g: SkipGraph<u64> = SkipGraph::new(8);
        assert!(g.is_empty());
        assert_eq!(g.introducer(), None);
        assert_eq!(g.range(1, 5).0, Vec::<u64>::new());
        g.insert(42);
        assert_eq!(g.search(42, 42).0, Some(42));
        assert_eq!(g.search(42, 41).0, None);
        g.check_invariants().unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_ops_preserve_invariants(
            inserts in proptest::collection::vec(0u64..1000, 1..120),
            removals in proptest::collection::vec(0usize..120, 0..40),
            seed in 0u64..1000,
        ) {
            let mut g = SkipGraph::new(seed);
            for &k in &inserts {
                g.insert(k);
            }
            prop_assert!(g.check_invariants().is_ok());
            for &r in &removals {
                let k = inserts[r % inserts.len()];
                g.remove(k);
            }
            prop_assert_eq!(g.check_invariants().map_err(|e| e.to_string()), Ok(()));
            // Search agrees with a reference set.
            let mut remaining: Vec<u64> = inserts.clone();
            remaining.sort_unstable();
            remaining.dedup();
            let removed: std::collections::HashSet<u64> =
                removals.iter().map(|&r| inserts[r % inserts.len()]).collect();
            remaining.retain(|k| !removed.contains(k));
            if let Some(intro) = g.introducer() {
                for probe in [0u64, 250, 500, 999] {
                    let expect = remaining.iter().rev().find(|&&k| k <= probe).copied();
                    prop_assert_eq!(g.search(intro, probe).0, expect);
                }
            } else {
                prop_assert!(remaining.is_empty());
            }
        }
    }
}
