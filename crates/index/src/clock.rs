//! Sensor clock drift/skew modelling and correction.
//!
//! "Drift and skew of clocks at the remote sensors can result in
//! erroneous timestamps, which need to be corrected to provide an
//! accurate temporal view of data" (paper §5).
//!
//! [`DriftClock`] simulates a mote oscillator: a fixed offset plus a
//! rate error in parts-per-million (real 32 kHz crystals drift tens of
//! ppm). [`ClockCorrector`] recovers offset and skew per sensor from
//! timestamped reference beacons (the proxy broadcasts its own time; the
//! sensor reports the local receive time) via least-squares regression,
//! then maps local timestamps back to reference time.

use presto_sim::SimTime;

/// A drifting local clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftClock {
    /// Fixed offset, seconds (local − reference at t=0).
    pub offset_s: f64,
    /// Rate error, parts per million (positive = runs fast).
    pub skew_ppm: f64,
}

impl DriftClock {
    /// A perfect clock.
    pub fn perfect() -> Self {
        DriftClock {
            offset_s: 0.0,
            skew_ppm: 0.0,
        }
    }

    /// The local timestamp this clock produces at true time `t`.
    pub fn local_time(&self, t: SimTime) -> SimTime {
        let true_s = t.as_secs_f64();
        let local_s = self.offset_s + true_s * (1.0 + self.skew_ppm * 1e-6);
        SimTime::from_secs_f64(local_s.max(0.0))
    }

    /// Timestamp error at true time `t`, in seconds.
    pub fn error_at(&self, t: SimTime) -> f64 {
        self.local_time(t).as_secs_f64() - t.as_secs_f64()
    }
}

/// Least-squares clock corrector for one sensor.
#[derive(Clone, Debug, Default)]
pub struct ClockCorrector {
    /// Collected `(local_s, reference_s)` beacon pairs.
    pairs: Vec<(f64, f64)>,
    /// Fitted mapping `reference = a + b·local`.
    fit: Option<(f64, f64)>,
}

impl ClockCorrector {
    /// Creates an empty corrector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a beacon: the sensor observed reference time `reference`
    /// when its local clock read `local`.
    pub fn observe_beacon(&mut self, local: SimTime, reference: SimTime) {
        self.pairs
            .push((local.as_secs_f64(), reference.as_secs_f64()));
        if self.pairs.len() >= 2 {
            self.refit();
        }
    }

    /// Number of beacons observed.
    pub fn beacons(&self) -> usize {
        self.pairs.len()
    }

    /// True once a correction is available.
    pub fn is_calibrated(&self) -> bool {
        self.fit.is_some()
    }

    fn refit(&mut self) {
        let n = self.pairs.len() as f64;
        let (mut sl, mut sr, mut sll, mut slr) = (0.0, 0.0, 0.0, 0.0);
        for &(l, r) in &self.pairs {
            sl += l;
            sr += r;
            sll += l * l;
            slr += l * r;
        }
        let denom = n * sll - sl * sl;
        if denom.abs() < 1e-12 {
            return;
        }
        let b = (n * slr - sl * sr) / denom;
        let a = (sr - b * sl) / n;
        self.fit = Some((a, b));
    }

    /// Maps a local timestamp to reference time. Uncalibrated correctors
    /// pass timestamps through unchanged.
    pub fn correct(&self, local: SimTime) -> SimTime {
        match self.fit {
            Some((a, b)) => SimTime::from_secs_f64(a + b * local.as_secs_f64()),
            None => local,
        }
    }

    /// The fitted skew in ppm, if calibrated.
    pub fn fitted_skew_ppm(&self) -> Option<f64> {
        self.fit.map(|(_, b)| (1.0 / b - 1.0) * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    #[test]
    fn drift_clock_accumulates_error() {
        let c = DriftClock {
            offset_s: 0.5,
            skew_ppm: 50.0,
        };
        // At t=0: 0.5 s offset. After a day: 0.5 + 86400·50e-6 ≈ 4.82 s.
        assert!((c.error_at(SimTime::ZERO) - 0.5).abs() < 1e-6);
        let day_err = c.error_at(SimTime::from_days(1));
        assert!((day_err - 4.82).abs() < 0.01, "{day_err}");
        assert_eq!(DriftClock::perfect().error_at(SimTime::from_days(10)), 0.0);
    }

    #[test]
    fn corrector_recovers_offset_and_skew() {
        let clock = DriftClock {
            offset_s: 2.0,
            skew_ppm: 80.0,
        };
        let mut corr = ClockCorrector::new();
        // Hourly beacons for a day.
        for h in 0..24 {
            let t = SimTime::from_hours(h);
            corr.observe_beacon(clock.local_time(t), t);
        }
        assert!(corr.is_calibrated());
        let skew = corr.fitted_skew_ppm().unwrap();
        assert!((skew - 80.0).abs() < 1.0, "fitted skew {skew}");
        // Correction error an hour past the last beacon stays tiny.
        let t = SimTime::from_hours(25);
        let corrected = corr.correct(clock.local_time(t));
        let err = (corrected.as_secs_f64() - t.as_secs_f64()).abs();
        assert!(err < 0.01, "residual error {err}");
    }

    #[test]
    fn correction_fixes_cross_sensor_ordering() {
        // Two sensors observe the same pair of events 10 s apart; sensor
        // B's clock is 30 s ahead, so raw timestamps misorder the events.
        let a = DriftClock::perfect();
        let b = DriftClock {
            offset_s: 30.0,
            skew_ppm: 0.0,
        };
        let e1 = SimTime::from_secs(100); // seen by A
        let e2 = SimTime::from_secs(110); // seen by B
        let raw_a = a.local_time(e1);
        let raw_b = b.local_time(e2);
        // Raw: B's event appears to precede... actually B reads 140 > 100,
        // so consider the reverse pair (B first).
        let e3 = SimTime::from_secs(200); // seen by B
        let e4 = SimTime::from_secs(210); // seen by A
        let raw_b2 = b.local_time(e3); // reads 230
        let raw_a2 = a.local_time(e4); // reads 210 — misordered!
        assert!(raw_b2 > raw_a2, "premise: raw order is wrong");
        let _ = (raw_a, raw_b);

        let mut corr_b = ClockCorrector::new();
        for h in 0..4 {
            let t = SimTime::from_secs(h * 60);
            corr_b.observe_beacon(b.local_time(t), t);
        }
        let fixed_b = corr_b.correct(raw_b2);
        assert!(fixed_b < raw_a2, "corrected order still wrong");
        assert!((fixed_b.as_secs_f64() - 200.0).abs() < 0.01);
    }

    #[test]
    fn uncalibrated_passthrough() {
        let c = ClockCorrector::new();
        assert!(!c.is_calibrated());
        assert_eq!(c.correct(SimTime::from_secs(5)), SimTime::from_secs(5));
        assert_eq!(c.fitted_skew_ppm(), None);
    }

    #[test]
    fn identical_beacons_do_not_crash() {
        let mut c = ClockCorrector::new();
        c.observe_beacon(SimTime::from_secs(10), SimTime::from_secs(10));
        c.observe_beacon(SimTime::from_secs(10), SimTime::from_secs(10));
        // Degenerate design matrix: stays uncalibrated.
        assert!(!c.is_calibrated());
    }

    #[test]
    fn beacon_density_improves_accuracy() {
        let clock = DriftClock {
            offset_s: -1.5,
            skew_ppm: 120.0,
        };
        let residual = |beacons: u64| {
            let mut corr = ClockCorrector::new();
            for k in 0..beacons {
                let t = SimTime::ZERO + SimDuration::from_hours(24) / beacons.max(1) * k;
                corr.observe_beacon(clock.local_time(t), t);
            }
            let t = SimTime::from_hours(30);
            (corr.correct(clock.local_time(t)).as_secs_f64() - t.as_secs_f64()).abs()
        };
        // Even sparse beacons calibrate; dense beacons are at least as good.
        assert!(residual(24) <= residual(2) + 1e-6);
    }
}
