//! The PRESTO data abstraction layer (paper §5).
//!
//! "PRESTO aims to provide a single logical view of data that integrates
//! archived data stored at numerous distributed remote sensors as well as
//! caches and prediction models at numerous proxies."
//!
//! Three mechanisms from the paper:
//!
//! * [`skipgraph`] — the order-preserving distributed index ("we are
//!   exploring the use of order-preserving index structures such as Skip
//!   Graphs [14]"): a full Skip Graph with membership vectors, levelled
//!   doubly linked lists, O(log n) search, and per-operation hop
//!   accounting so index cost is measurable across proxy overlays.
//! * [`clock`] — timestamp correction: "drift and skew of clocks at the
//!   remote sensors can result in erroneous timestamps, which need to be
//!   corrected"; reference-beacon regression recovers offset and skew.
//! * [`consistency`] — spatial consistency between overlapping proxies
//!   (versioned entries, quality-aware reconciliation) and replication of
//!   wireless-proxy caches onto wired proxies for low-latency answers.
//! * [`view`] — the temporally ordered unified view over per-proxy
//!   streams (k-way merge over corrected timestamps), which is what a
//!   traffic-monitoring application queries.
//! * [`timeindex`] — per-proxy archived `[start, end]` intervals
//!   registered in the Skip Graph, so multi-proxy range queries prune
//!   proxies with no overlapping data before issuing pulls.

pub mod clock;
pub mod consistency;
pub mod skipgraph;
pub mod timeindex;
pub mod view;

pub use clock::{ClockCorrector, DriftClock};
pub use consistency::{ConsistencyManager, ReplicaEntry, Replicator};
pub use skipgraph::{OpStats, SkipGraph};
pub use timeindex::TimeRangeIndex;
pub use view::UnifiedView;
