//! Synthetic workloads for the PRESTO experiments.
//!
//! The paper's evaluation data — the Intel Lab temperature trace [11] —
//! and its motivating applications (vehicle traffic, elder care) are not
//! distributable, so this crate synthesizes statistically equivalent
//! workloads with controllable parameters:
//!
//! * [`lab`] — indoor temperature: diurnal cycle + slow seasonal drift +
//!   AR(1) correlated weather + per-sensor offsets + spatially shared
//!   field + heavy-tailed per-epoch jitter + rare event spikes. The
//!   Figure 2 reproduction runs on this.
//! * [`traffic`] — vehicle detections as a time-of-day-modulated Poisson
//!   process with typed signatures (the paper's archival/event example).
//! * [`eldercare`] — daily-activity (ADL) state machine with regular
//!   habits and rare anomalies (the paper's predictable-with-exceptions
//!   example).
//! * [`queries`] — NOW/PAST query streams with Poisson arrivals,
//!   tolerance and latency-bound distributions.

pub mod eldercare;
pub mod lab;
pub mod queries;
pub mod traffic;

pub use eldercare::{Activity, EldercareGen, EldercareSample};
pub use lab::{LabDeployment, LabParams};
pub use queries::{QueryGen, QueryParams, QuerySpec, QueryTarget, TimeScope};
pub use traffic::{TrafficGen, TrafficParams, VehicleDetection, VehicleType};
