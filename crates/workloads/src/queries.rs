//! Query workload generator.
//!
//! PRESTO supports one-time NOW and PAST queries with per-query precision
//! and latency requirements (paper §2, §3). The generator produces a
//! Poisson stream of [`QuerySpec`]s over a deployment, with configurable
//! NOW:PAST mix, PAST age distribution, and tolerance/latency ranges —
//! the inputs the proxy's query–sensor matching consumes.

use presto_sim::{SimDuration, SimRng, SimTime};

/// What a query targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryTarget {
    /// One sensor by index.
    Sensor(usize),
    /// All sensors of one proxy (spatial aggregate).
    ProxyGroup(usize),
}

/// The time scope of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeScope {
    /// Current value.
    Now,
    /// Historical range `[from, to]`.
    Past {
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
    },
}

/// A single one-time query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuerySpec {
    /// Arrival time.
    pub arrival: SimTime,
    /// Target.
    pub target: QueryTarget,
    /// Time scope.
    pub scope: TimeScope,
    /// Acceptable absolute error in the answer.
    pub tolerance: f64,
    /// Latency the issuer will tolerate.
    pub latency_bound: SimDuration,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct QueryParams {
    /// Mean queries per hour across the deployment.
    pub rate_per_hour: f64,
    /// Fraction of queries that are NOW (the rest are PAST).
    pub now_fraction: f64,
    /// Number of sensors (for target sampling).
    pub sensors: usize,
    /// Number of proxies (for group-target sampling).
    pub proxies: usize,
    /// Fraction of queries that target whole proxy groups.
    pub group_fraction: f64,
    /// PAST query age: mean lookback from the arrival time.
    pub past_mean_age: SimDuration,
    /// PAST query range length bounds.
    pub past_span: (SimDuration, SimDuration),
    /// Tolerance bounds (uniform), in value units.
    pub tolerance_range: (f64, f64),
    /// Latency-bound choices (mixture of interactive and relaxed).
    pub latency_choices: Vec<SimDuration>,
}

impl Default for QueryParams {
    fn default() -> Self {
        QueryParams {
            rate_per_hour: 30.0,
            now_fraction: 0.7,
            sensors: 40,
            proxies: 4,
            group_fraction: 0.2,
            past_mean_age: SimDuration::from_hours(12),
            past_span: (SimDuration::from_mins(10), SimDuration::from_hours(2)),
            tolerance_range: (0.25, 2.0),
            latency_choices: vec![
                SimDuration::from_secs(5),
                SimDuration::from_mins(1),
                SimDuration::from_mins(10),
            ],
        }
    }
}

/// Poisson query stream generator.
#[derive(Clone, Debug)]
pub struct QueryGen {
    params: QueryParams,
    rng: SimRng,
}

impl QueryGen {
    /// Creates a generator.
    pub fn new(params: QueryParams, seed: u64) -> Self {
        assert!(params.sensors > 0, "need at least one sensor");
        QueryGen {
            params,
            rng: SimRng::new(seed).split("queries"),
        }
    }

    /// Generates all queries arriving in `[start, start + duration)`,
    /// ordered by arrival.
    pub fn generate(&mut self, start: SimTime, duration: SimDuration) -> Vec<QuerySpec> {
        let mut out = Vec::new();
        let end = start + duration;
        let mut t = start;
        loop {
            let gap_hours = self.rng.exponential(self.params.rate_per_hour);
            if !gap_hours.is_finite() {
                break;
            }
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            out.push(self.sample_query(t));
        }
        out
    }

    fn sample_query(&mut self, arrival: SimTime) -> QuerySpec {
        let target = if self.params.proxies > 0 && self.rng.chance(self.params.group_fraction) {
            QueryTarget::ProxyGroup(self.rng.below(self.params.proxies as u64) as usize)
        } else {
            QueryTarget::Sensor(self.rng.below(self.params.sensors as u64) as usize)
        };
        let scope = if self.rng.chance(self.params.now_fraction) {
            TimeScope::Now
        } else {
            let age = SimDuration::from_secs_f64(
                self.rng
                    .exponential(1.0 / self.params.past_mean_age.as_secs_f64().max(1.0)),
            );
            let (lo, hi) = self.params.past_span;
            let span = SimDuration::from_secs_f64(self.rng.uniform_range(
                lo.as_secs_f64(),
                hi.as_secs_f64().max(lo.as_secs_f64() + 1.0),
            ));
            let to = arrival - age;
            let from = to - span;
            TimeScope::Past { from, to }
        };
        let (tlo, thi) = self.params.tolerance_range;
        let tolerance = self.rng.uniform_range(tlo, thi.max(tlo + 1e-9));
        let latency_bound = *self
            .rng
            .choose(&self.params.latency_choices)
            .unwrap_or(&SimDuration::from_mins(1));
        QuerySpec {
            arrival,
            target,
            scope,
            tolerance,
            latency_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_of_queries(seed: u64) -> Vec<QuerySpec> {
        QueryGen::new(QueryParams::default(), seed)
            .generate(SimTime::from_days(2), SimDuration::from_days(1))
    }

    #[test]
    fn rate_roughly_matches() {
        let qs = day_of_queries(1);
        // 30/hour × 24 h = 720 expected.
        assert!((500..950).contains(&qs.len()), "{}", qs.len());
    }

    #[test]
    fn arrivals_are_ordered_and_in_window() {
        let qs = day_of_queries(2);
        assert!(qs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(qs
            .iter()
            .all(|q| q.arrival >= SimTime::from_days(2) && q.arrival < SimTime::from_days(3)));
    }

    #[test]
    fn now_past_mix_matches_fraction() {
        let qs = day_of_queries(3);
        let now = qs
            .iter()
            .filter(|q| matches!(q.scope, TimeScope::Now))
            .count() as f64;
        let frac = now / qs.len() as f64;
        assert!((0.6..0.8).contains(&frac), "{frac}");
    }

    #[test]
    fn past_ranges_precede_arrival() {
        let qs = day_of_queries(4);
        for q in &qs {
            if let TimeScope::Past { from, to } = q.scope {
                assert!(from <= to);
                assert!(to <= q.arrival);
            }
        }
    }

    #[test]
    fn tolerances_within_range() {
        let qs = day_of_queries(5);
        assert!(qs.iter().all(|q| (0.25..=2.0).contains(&q.tolerance)));
    }

    #[test]
    fn latency_bounds_from_choices() {
        let qs = day_of_queries(6);
        let choices = QueryParams::default().latency_choices;
        assert!(qs.iter().all(|q| choices.contains(&q.latency_bound)));
        // All three classes should appear over a day.
        for c in &choices {
            assert!(qs.iter().any(|q| q.latency_bound == *c));
        }
    }

    #[test]
    fn group_queries_appear() {
        let qs = day_of_queries(7);
        let groups = qs
            .iter()
            .filter(|q| matches!(q.target, QueryTarget::ProxyGroup(_)))
            .count() as f64;
        let frac = groups / qs.len() as f64;
        assert!((0.1..0.35).contains(&frac), "{frac}");
        for q in &qs {
            match q.target {
                QueryTarget::Sensor(s) => assert!(s < 40),
                QueryTarget::ProxyGroup(p) => assert!(p < 4),
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(day_of_queries(8), day_of_queries(8));
    }
}
