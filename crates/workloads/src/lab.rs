//! Intel-Lab-style indoor temperature deployment.
//!
//! The generator reproduces the statistical features the PRESTO
//! mechanisms are sensitive to:
//!
//! * a **diurnal cycle** (time-of-day effects — what the seasonal model
//!   learns);
//! * a **slow trend** across days (seasons / HVAC drift);
//! * a **shared AR(1) weather field** correlated across all sensors of a
//!   deployment (what the spatial Gaussian exploits);
//! * **per-sensor offsets** (a sensor near a window reads warmer);
//! * **heavy-tailed per-epoch jitter** (a Gaussian mixture approximating
//!   the lab trace's occasional fast swings — this sets the value-driven
//!   push rates for Figure 2);
//! * **rare events**: sporadic spikes (a door opens, equipment turns on)
//!   arriving as a Poisson process — the "unpredictable" rare events
//!   model-driven push must never miss.
//!
//! Sampling is epoch-based (default 31 s, matching the lab trace).

use presto_sim::{SimDuration, SimRng, SimTime};

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct LabParams {
    /// Number of sensors in the deployment.
    pub sensors: usize,
    /// Sampling epoch.
    pub epoch: SimDuration,
    /// Mean temperature, °C.
    pub base_temp: f64,
    /// Diurnal amplitude, °C.
    pub diurnal_amp: f64,
    /// Linear trend, °C per day.
    pub trend_per_day: f64,
    /// AR(1) coefficient of the shared weather field (per epoch).
    pub field_phi: f64,
    /// Innovation std-dev of the shared field, °C.
    pub field_sigma: f64,
    /// Std-dev of the common (small) jitter component, °C.
    pub jitter_sigma: f64,
    /// Probability that an epoch draws from the heavy tail instead.
    pub heavy_prob: f64,
    /// Std-dev of the heavy-tail jitter component, °C.
    pub heavy_sigma: f64,
    /// Spread of fixed per-sensor offsets, °C.
    pub offset_spread: f64,
    /// Mean rate of rare events per sensor per day.
    pub events_per_day: f64,
    /// Event spike magnitude, °C.
    pub event_amp: f64,
    /// Event duration.
    pub event_duration: SimDuration,
}

impl Default for LabParams {
    fn default() -> Self {
        LabParams {
            sensors: 4,
            epoch: SimDuration::from_secs(31),
            base_temp: 21.0,
            diurnal_amp: 4.0,
            trend_per_day: 0.05,
            field_phi: 0.995,
            field_sigma: 0.12,
            jitter_sigma: 0.35,
            heavy_prob: 0.08,
            heavy_sigma: 1.9,
            offset_spread: 1.5,
            events_per_day: 0.5,
            event_amp: 8.0,
            event_duration: SimDuration::from_mins(5),
        }
    }
}

/// One sensor's reading at an epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LabReading {
    /// Epoch timestamp.
    pub timestamp: SimTime,
    /// Temperature, °C.
    pub value: f64,
    /// True if a rare event spike is active at this sensor.
    pub event_active: bool,
}

/// A running deployment generator.
#[derive(Clone, Debug)]
pub struct LabDeployment {
    params: LabParams,
    rng: SimRng,
    epoch_index: u64,
    field: f64,
    offsets: Vec<f64>,
    /// Per-sensor event end time (if an event is active).
    event_until: Vec<Option<SimTime>>,
    /// Per-sensor smoothed private jitter state.
    private: Vec<f64>,
}

impl LabDeployment {
    /// Creates a deployment from parameters and a seed.
    pub fn new(params: LabParams, seed: u64) -> Self {
        let mut rng = SimRng::new(seed).split("lab");
        let offsets = (0..params.sensors)
            .map(|_| rng.gaussian_ms(0.0, params.offset_spread / 2.0))
            .collect();
        LabDeployment {
            event_until: vec![None; params.sensors],
            private: vec![0.0; params.sensors],
            offsets,
            params,
            rng,
            epoch_index: 0,
            field: 0.0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &LabParams {
        &self.params
    }

    /// Timestamp of the next epoch to be generated.
    pub fn next_epoch_time(&self) -> SimTime {
        SimTime::ZERO + self.params.epoch * self.epoch_index
    }

    /// Advances one epoch, returning every sensor's reading.
    pub fn step(&mut self) -> Vec<LabReading> {
        let t = self.next_epoch_time();
        self.epoch_index += 1;

        // Shared field: AR(1) around zero.
        self.field =
            self.params.field_phi * self.field + self.rng.gaussian_ms(0.0, self.params.field_sigma);

        let hours = t.hour_of_day();
        let diurnal =
            self.params.diurnal_amp * ((hours - 14.0) / 24.0 * std::f64::consts::TAU).cos();
        let trend = self.params.trend_per_day * t.as_days_f64();
        let base = self.params.base_temp + diurnal + trend + self.field;

        // Poisson event arrivals per sensor per epoch.
        let event_rate_per_epoch =
            self.params.events_per_day * self.params.epoch.as_secs_f64() / 86_400.0;

        (0..self.params.sensors)
            .map(|s| {
                if self.event_until[s].is_none() && self.rng.chance(event_rate_per_epoch) {
                    self.event_until[s] = Some(t + self.params.event_duration);
                }
                let event_active = match self.event_until[s] {
                    Some(until) if t <= until => true,
                    Some(_) => {
                        self.event_until[s] = None;
                        false
                    }
                    None => false,
                };

                // Heavy-tailed per-epoch jitter, slightly smoothed so the
                // per-epoch deltas are realistic rather than white.
                let sigma = if self.rng.chance(self.params.heavy_prob) {
                    self.params.heavy_sigma
                } else {
                    self.params.jitter_sigma
                };
                let innovation = self.rng.gaussian_ms(0.0, sigma);
                self.private[s] = 0.3 * self.private[s] + innovation;

                let mut value = base + self.offsets[s] + self.private[s];
                if event_active {
                    value += self.params.event_amp;
                }
                LabReading {
                    timestamp: t,
                    value,
                    event_active,
                }
            })
            .collect()
    }

    /// Generates a full trace: `rows[epoch][sensor]`.
    pub fn generate(&mut self, duration: SimDuration) -> Vec<Vec<LabReading>> {
        let epochs = duration.div_duration(self.params.epoch);
        (0..epochs).map(|_| self.step()).collect()
    }

    /// Convenience: a single-sensor value trace with timestamps.
    pub fn single_sensor_trace(
        params: LabParams,
        seed: u64,
        duration: SimDuration,
    ) -> Vec<LabReading> {
        let mut dep = LabDeployment::new(
            LabParams {
                sensors: 1,
                ..params
            },
            seed,
        );
        dep.generate(duration)
            .into_iter()
            .map(|mut row| row.remove(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_trace(seed: u64) -> Vec<LabReading> {
        LabDeployment::single_sensor_trace(LabParams::default(), seed, SimDuration::from_days(2))
    }

    #[test]
    fn deterministic_per_seed() {
        let a = day_trace(1);
        let b = day_trace(1);
        let c = day_trace(2);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.value == y.value));
        assert!(a.iter().zip(&c).any(|(x, y)| x.value != y.value));
    }

    #[test]
    fn epoch_spacing_matches_params() {
        let tr = day_trace(3);
        let step = tr[1].timestamp - tr[0].timestamp;
        assert_eq!(step, SimDuration::from_secs(31));
        assert_eq!(
            tr.len() as u64,
            SimDuration::from_days(2).div_duration(step)
        );
    }

    #[test]
    fn diurnal_cycle_is_present() {
        // Afternoon epochs should run warmer than pre-dawn epochs.
        let tr = day_trace(4);
        let mean_at = |h0: f64, h1: f64| {
            let vals: Vec<f64> = tr
                .iter()
                .filter(|r| {
                    let h = r.timestamp.hour_of_day();
                    h >= h0 && h < h1 && !r.event_active
                })
                .map(|r| r.value)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        let afternoon = mean_at(13.0, 16.0);
        let predawn = mean_at(3.0, 6.0);
        assert!(
            afternoon > predawn + 3.0,
            "afternoon {afternoon} vs predawn {predawn}"
        );
    }

    #[test]
    fn temperatures_are_plausible() {
        let tr = day_trace(5);
        for r in &tr {
            assert!((0.0..45.0).contains(&r.value), "implausible {}", r.value);
        }
    }

    #[test]
    fn rare_events_occur_and_spike() {
        let params = LabParams {
            events_per_day: 6.0,
            ..LabParams::default()
        };
        let tr = LabDeployment::single_sensor_trace(params, 6, SimDuration::from_days(4));
        let event_epochs = tr.iter().filter(|r| r.event_active).count();
        assert!(event_epochs > 0, "no events in 4 days at 6/day");
        // Event epochs should be visibly hotter than their neighbourhood.
        let (ev_sum, ev_n) = tr
            .iter()
            .filter(|r| r.event_active)
            .fold((0.0, 0), |(s, n), r| (s + r.value, n + 1));
        let (no_sum, no_n) = tr
            .iter()
            .filter(|r| !r.event_active)
            .fold((0.0, 0), |(s, n), r| (s + r.value, n + 1));
        assert!(ev_sum / ev_n as f64 > no_sum / no_n as f64 + 5.0);
    }

    #[test]
    fn sensors_are_spatially_correlated() {
        let mut dep = LabDeployment::new(
            LabParams {
                sensors: 4,
                events_per_day: 0.0,
                ..LabParams::default()
            },
            7,
        );
        let rows = dep.generate(SimDuration::from_days(1));
        // Correlation between sensor 0 and sensor 3 values.
        let xs: Vec<f64> = rows.iter().map(|r| r[0].value).collect();
        let ys: Vec<f64> = rows.iter().map(|r| r[3].value).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / n;
        let sx = (xs.iter().map(|a| (a - mx) * (a - mx)).sum::<f64>() / n).sqrt();
        let sy = (ys.iter().map(|b| (b - my) * (b - my)).sum::<f64>() / n).sqrt();
        let rho = cov / (sx * sy);
        assert!(rho > 0.7, "correlation too weak: {rho}");
    }

    #[test]
    fn delta_push_fractions_bracket_figure2() {
        // Sanity-check the per-epoch delta distribution against the
        // value-driven push rates Figure 2 relies on: Δ=1 should trigger
        // a substantially larger fraction than Δ=2 (about 2–4×).
        let tr = LabDeployment::single_sensor_trace(
            LabParams {
                events_per_day: 0.0,
                ..LabParams::default()
            },
            8,
            SimDuration::from_days(7),
        );
        let mut pushes = [0u64; 2];
        for (k, &delta) in [1.0, 2.0].iter().enumerate() {
            let mut last_pushed = tr[0].value;
            for r in &tr[1..] {
                if (r.value - last_pushed).abs() > delta {
                    pushes[k] += 1;
                    last_pushed = r.value;
                }
            }
        }
        let n = (tr.len() - 1) as f64;
        let f1 = pushes[0] as f64 / n;
        let f2 = pushes[1] as f64 / n;
        assert!(f1 > 0.08 && f1 < 0.6, "delta=1 fraction {f1}");
        assert!(f2 > 0.02, "delta=2 fraction {f2}");
        let ratio = f1 / f2;
        assert!((1.5..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn trend_accumulates_across_days() {
        let params = LabParams {
            trend_per_day: 0.5,
            events_per_day: 0.0,
            ..LabParams::default()
        };
        let tr = LabDeployment::single_sensor_trace(params, 9, SimDuration::from_days(10));
        let first_day: f64 = tr.iter().take(2000).map(|r| r.value).sum::<f64>() / 2000.0;
        let last_day: f64 = tr.iter().rev().take(2000).map(|r| r.value).sum::<f64>() / 2000.0;
        assert!(last_day > first_day + 3.0, "{first_day} -> {last_day}");
    }
}
