//! Elder-care activity (ADL) workload.
//!
//! "Activity monitoring applications such as elder care … daily activity
//! patterns tend to be mostly predictable, with occasional unpredictable
//! events or patterns that need to be explicitly reported to proxies"
//! (paper §6). The generator is a time-of-day-driven activity state
//! machine emitting a scalar activity level per epoch plus explicit
//! anomaly events (falls, missed meals, night wandering).

use presto_sim::{SimDuration, SimRng, SimTime};

/// Activity states.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Night sleep.
    Sleeping,
    /// Meal preparation and eating.
    Meal,
    /// Light household activity.
    Active,
    /// Rest / TV / reading.
    Resting,
    /// Outside walk.
    Walk,
    /// Anomalous episode (fall, wandering, missed routine).
    Anomaly,
}

impl Activity {
    /// Nominal wearable-accelerometer activity level for the state.
    pub fn level(self) -> f64 {
        match self {
            Activity::Sleeping => 0.05,
            Activity::Resting => 0.2,
            Activity::Meal => 0.5,
            Activity::Active => 0.7,
            Activity::Walk => 0.95,
            Activity::Anomaly => 0.4,
        }
    }

    /// Event-record code for anomaly reporting.
    pub fn code(self) -> u16 {
        match self {
            Activity::Sleeping => 10,
            Activity::Resting => 11,
            Activity::Meal => 12,
            Activity::Active => 13,
            Activity::Walk => 14,
            Activity::Anomaly => 15,
        }
    }
}

/// One epoch of the wearable's output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EldercareSample {
    /// Epoch timestamp.
    pub timestamp: SimTime,
    /// Activity level in `[0, 1]` (plus sensor noise).
    pub level: f64,
    /// Current state.
    pub state: Activity,
    /// True on the first epoch of an anomaly episode.
    pub anomaly_onset: bool,
}

/// Elder-care workload generator.
#[derive(Clone, Debug)]
pub struct EldercareGen {
    rng: SimRng,
    epoch: SimDuration,
    epoch_index: u64,
    state: Activity,
    state_until: SimTime,
    anomalies_per_day: f64,
    was_anomaly: bool,
}

impl EldercareGen {
    /// Creates a generator with the given epoch length and anomaly rate.
    pub fn new(epoch: SimDuration, anomalies_per_day: f64, seed: u64) -> Self {
        EldercareGen {
            rng: SimRng::new(seed).split("eldercare"),
            epoch,
            epoch_index: 0,
            state: Activity::Sleeping,
            state_until: SimTime::ZERO,
            anomalies_per_day,
            was_anomaly: false,
        }
    }

    /// The habitual state for an hour of the day.
    fn scheduled_state(hour: f64) -> Activity {
        match hour {
            h if !(6.5..22.5).contains(&h) => Activity::Sleeping,
            h if (6.5..8.0).contains(&h) => Activity::Meal,
            h if (8.0..10.0).contains(&h) => Activity::Active,
            h if (10.0..11.0).contains(&h) => Activity::Walk,
            h if (11.0..12.5).contains(&h) => Activity::Resting,
            h if (12.5..13.5).contains(&h) => Activity::Meal,
            h if (13.5..17.0).contains(&h) => Activity::Resting,
            h if (17.0..18.5).contains(&h) => Activity::Active,
            h if (18.5..19.5).contains(&h) => Activity::Meal,
            _ => Activity::Resting,
        }
    }

    /// Advances one epoch.
    pub fn step(&mut self) -> EldercareSample {
        let t = SimTime::ZERO + self.epoch * self.epoch_index;
        self.epoch_index += 1;

        let anomaly_rate = self.anomalies_per_day * self.epoch.as_secs_f64() / 86_400.0;
        if self.state != Activity::Anomaly && self.rng.chance(anomaly_rate) {
            self.state = Activity::Anomaly;
            // Anomalies last 10–40 minutes.
            let mins = 10.0 + self.rng.uniform() * 30.0;
            self.state_until = t + SimDuration::from_mins_f64(mins);
        } else if self.state != Activity::Anomaly || t > self.state_until {
            self.state = Self::scheduled_state(t.hour_of_day());
        }

        let anomaly_onset = self.state == Activity::Anomaly && !self.was_anomaly;
        self.was_anomaly = self.state == Activity::Anomaly;

        // Anomalies have erratic levels; normal states have small noise.
        let level = if self.state == Activity::Anomaly {
            (self.state.level() + self.rng.gaussian_ms(0.0, 0.35)).clamp(0.0, 1.2)
        } else {
            (self.state.level() + self.rng.gaussian_ms(0.0, 0.05)).clamp(0.0, 1.2)
        };

        EldercareSample {
            timestamp: t,
            level,
            state: self.state,
            anomaly_onset,
        }
    }

    /// Generates `duration` worth of samples.
    pub fn generate(&mut self, duration: SimDuration) -> Vec<EldercareSample> {
        let n = duration.div_duration(self.epoch);
        (0..n).map(|_| self.step()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week(anomalies_per_day: f64, seed: u64) -> Vec<EldercareSample> {
        EldercareGen::new(SimDuration::from_mins(1), anomalies_per_day, seed)
            .generate(SimDuration::from_days(7))
    }

    #[test]
    fn nights_are_asleep() {
        let samples = week(0.0, 1);
        for s in &samples {
            let h = s.timestamp.hour_of_day();
            if !(6.0..23.0).contains(&h) {
                assert_eq!(s.state, Activity::Sleeping, "awake at {h}");
            }
        }
    }

    #[test]
    fn days_are_predictably_structured() {
        // The same hour on different days should have the same habitual
        // state — the predictability PRESTO exploits.
        let samples = week(0.0, 2);
        let state_at = |day: u64, hour: u64| {
            samples
                .iter()
                .find(|s| {
                    s.timestamp.day_index() == day
                        && (s.timestamp.hour_of_day() - hour as f64).abs() < 0.02
                })
                .map(|s| s.state)
        };
        for hour in [7, 9, 13, 20] {
            assert_eq!(state_at(1, hour), state_at(4, hour), "hour {hour}");
        }
    }

    #[test]
    fn anomalies_arrive_and_mark_onset() {
        let samples = week(3.0, 3);
        let onsets = samples.iter().filter(|s| s.anomaly_onset).count();
        assert!(onsets >= 5, "only {onsets} anomalies in a week at 3/day");
        // ~3/day × 7 days = 21 expected.
        assert!(onsets <= 60, "{onsets} anomalies is too many");
        // Onset epochs are in the Anomaly state.
        assert!(samples
            .iter()
            .filter(|s| s.anomaly_onset)
            .all(|s| s.state == Activity::Anomaly));
    }

    #[test]
    fn anomaly_free_trace_has_no_anomalies() {
        let samples = week(0.0, 4);
        assert!(samples.iter().all(|s| s.state != Activity::Anomaly));
    }

    #[test]
    fn levels_track_states() {
        let samples = week(0.0, 5);
        let mean_level = |st: Activity| {
            let vals: Vec<f64> = samples
                .iter()
                .filter(|s| s.state == st)
                .map(|s| s.level)
                .collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        assert!(mean_level(Activity::Sleeping) < 0.15);
        assert!(mean_level(Activity::Walk) > 0.8);
    }

    #[test]
    fn codes_are_distinct() {
        let mut codes: Vec<u16> = [
            Activity::Sleeping,
            Activity::Meal,
            Activity::Active,
            Activity::Resting,
            Activity::Walk,
            Activity::Anomaly,
        ]
        .iter()
        .map(|a| a.code())
        .collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(week(2.0, 7), week(2.0, 7));
    }
}
