//! Vehicle-traffic detection workload.
//!
//! "In a traffic monitoring application, signatures of detected vehicles
//! would constitute useful sensor data that is archived locally, whereas
//! the sensor might use a classifier to process the sensor data and
//! report the most likely vehicle type to the proxy" (paper §4).
//!
//! Detections arrive as a nonhomogeneous Poisson process with rush-hour
//! peaks; each carries a vehicle type and an opaque signature blob (the
//! raw data a sensor archives but never transmits).

use presto_sim::{SimDuration, SimRng, SimTime};

/// Classified vehicle types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VehicleType {
    /// Passenger car.
    Car,
    /// Light truck / van.
    Truck,
    /// Bus.
    Bus,
    /// Motorcycle.
    Motorcycle,
}

impl VehicleType {
    /// All types.
    pub const ALL: [VehicleType; 4] = [
        VehicleType::Car,
        VehicleType::Truck,
        VehicleType::Bus,
        VehicleType::Motorcycle,
    ];

    /// Compact code for event records.
    pub fn code(self) -> u16 {
        match self {
            VehicleType::Car => 1,
            VehicleType::Truck => 2,
            VehicleType::Bus => 3,
            VehicleType::Motorcycle => 4,
        }
    }

    /// Inverse of [`VehicleType::code`].
    pub fn from_code(code: u16) -> Option<Self> {
        Some(match code {
            1 => VehicleType::Car,
            2 => VehicleType::Truck,
            3 => VehicleType::Bus,
            4 => VehicleType::Motorcycle,
            _ => return None,
        })
    }
}

/// One detection.
#[derive(Clone, Debug, PartialEq)]
pub struct VehicleDetection {
    /// Detection time.
    pub timestamp: SimTime,
    /// Sensor that detected the vehicle.
    pub sensor: usize,
    /// Classified type (what gets pushed to the proxy).
    pub vehicle_type: VehicleType,
    /// Raw signature (what gets archived locally), 32 bytes.
    pub signature: Vec<u8>,
}

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct TrafficParams {
    /// Number of detector sensors along the road.
    pub sensors: usize,
    /// Baseline vehicles per hour per sensor (off-peak).
    pub base_rate_per_hour: f64,
    /// Multiplier at rush-hour peaks (08:00 and 17:30).
    pub rush_multiplier: f64,
    /// Travel time between adjacent sensors (detections propagate).
    pub inter_sensor_gap: SimDuration,
}

impl Default for TrafficParams {
    fn default() -> Self {
        TrafficParams {
            sensors: 6,
            base_rate_per_hour: 40.0,
            rush_multiplier: 6.0,
            inter_sensor_gap: SimDuration::from_secs(20),
        }
    }
}

/// Vehicle-traffic workload generator.
#[derive(Clone, Debug)]
pub struct TrafficGen {
    params: TrafficParams,
    rng: SimRng,
}

impl TrafficGen {
    /// Creates a generator.
    pub fn new(params: TrafficParams, seed: u64) -> Self {
        TrafficGen {
            params,
            rng: SimRng::new(seed).split("traffic"),
        }
    }

    /// Instantaneous arrival rate (vehicles/hour/sensor) at a time of day.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        let peak = |centre: f64, width: f64| {
            let d = (h - centre).abs().min(24.0 - (h - centre).abs());
            (-0.5 * (d / width) * (d / width)).exp()
        };
        let rush = peak(8.0, 1.0).max(peak(17.5, 1.2));
        let night = if !(6.0..22.0).contains(&h) { 0.15 } else { 1.0 };
        self.params.base_rate_per_hour * night * (1.0 + (self.params.rush_multiplier - 1.0) * rush)
    }

    /// Generates all detections in `[start, start + duration)`, ordered
    /// by time. Each vehicle passes every sensor in order, offset by the
    /// inter-sensor gap (the order-preserving property the paper's index
    /// must maintain).
    pub fn generate(&mut self, start: SimTime, duration: SimDuration) -> Vec<VehicleDetection> {
        let mut out = Vec::new();
        let end = start + duration;
        // Thinning: simulate at the max rate and accept proportionally.
        let max_rate = self.params.base_rate_per_hour * self.params.rush_multiplier;
        let mut t = start;
        loop {
            let gap_hours = self.rng.exponential(max_rate);
            if !gap_hours.is_finite() {
                break;
            }
            t += SimDuration::from_secs_f64(gap_hours * 3600.0);
            if t >= end {
                break;
            }
            if !self.rng.chance(self.rate_at(t) / max_rate) {
                continue;
            }
            let vehicle_type = self.sample_type();
            let mut signature = vec![0u8; 32];
            for b in &mut signature {
                *b = (self.rng.next_u64() & 0xFF) as u8;
            }
            for s in 0..self.params.sensors {
                out.push(VehicleDetection {
                    timestamp: t + self.params.inter_sensor_gap * s as u64,
                    sensor: s,
                    vehicle_type,
                    signature: signature.clone(),
                });
            }
        }
        out.sort_by_key(|d| d.timestamp);
        out
    }

    fn sample_type(&mut self) -> VehicleType {
        let u = self.rng.uniform();
        if u < 0.78 {
            VehicleType::Car
        } else if u < 0.92 {
            VehicleType::Truck
        } else if u < 0.97 {
            VehicleType::Bus
        } else {
            VehicleType::Motorcycle
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rush_hour_is_busier_than_night() {
        let g = TrafficGen::new(TrafficParams::default(), 1);
        let rush = g.rate_at(SimTime::from_hours(8));
        let night = g.rate_at(SimTime::from_hours(3));
        assert!(rush > 5.0 * night, "rush {rush} night {night}");
    }

    #[test]
    fn detections_propagate_across_sensors_in_order() {
        let mut g = TrafficGen::new(
            TrafficParams {
                sensors: 3,
                ..TrafficParams::default()
            },
            2,
        );
        let dets = g.generate(SimTime::from_hours(8), SimDuration::from_mins(10));
        assert!(!dets.is_empty());
        // Group by signature: each vehicle seen exactly once per sensor,
        // in sensor order with the configured gap.
        use std::collections::HashMap;
        let mut by_sig: HashMap<Vec<u8>, Vec<&VehicleDetection>> = HashMap::new();
        for d in &dets {
            by_sig.entry(d.signature.clone()).or_default().push(d);
        }
        for (_, mut group) in by_sig {
            group.sort_by_key(|d| d.sensor);
            assert_eq!(group.len(), 3);
            for w in group.windows(2) {
                assert_eq!(w[1].timestamp - w[0].timestamp, SimDuration::from_secs(20));
                assert_eq!(w[0].vehicle_type, w[1].vehicle_type);
            }
        }
    }

    #[test]
    fn volume_roughly_matches_rate() {
        let mut g = TrafficGen::new(
            TrafficParams {
                sensors: 1,
                base_rate_per_hour: 60.0,
                rush_multiplier: 1.0,
                ..TrafficParams::default()
            },
            3,
        );
        // Flat rate (multiplier 1): daytime hours at ~60/h.
        let dets = g.generate(SimTime::from_hours(10), SimDuration::from_hours(4));
        let per_hour = dets.len() as f64 / 4.0;
        assert!((40.0..80.0).contains(&per_hour), "{per_hour}/h");
    }

    #[test]
    fn type_mix_dominated_by_cars() {
        let mut g = TrafficGen::new(TrafficParams::default(), 4);
        let dets = g.generate(SimTime::from_hours(7), SimDuration::from_hours(6));
        let cars = dets
            .iter()
            .filter(|d| d.vehicle_type == VehicleType::Car)
            .count();
        assert!(cars as f64 > 0.6 * dets.len() as f64);
    }

    #[test]
    fn codes_roundtrip() {
        for ty in VehicleType::ALL {
            assert_eq!(VehicleType::from_code(ty.code()), Some(ty));
        }
        assert_eq!(VehicleType::from_code(0), None);
        assert_eq!(VehicleType::from_code(99), None);
    }

    #[test]
    fn output_is_time_sorted_and_deterministic() {
        let gen = |seed| {
            TrafficGen::new(TrafficParams::default(), seed)
                .generate(SimTime::ZERO, SimDuration::from_hours(2))
        };
        let a = gen(5);
        assert!(a.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(a, gen(5));
    }
}
