//! The proxy↔proxy inter-link mesh.
//!
//! Proxies are tethered, but the paths between them are not free: a
//! deployment's cluster heads talk over the same congested backhaul or
//! long-haul radio their sensors fade on. The mesh reuses the channel
//! discipline of the sensor-tier fabric — per-pair sequence numbers,
//! receiver-side duplicate filtering, ack/retransmit driven once per
//! epoch, a bounded retransmission count — so a forwarded query is
//! either delivered exactly once or visibly dropped, never silently
//! duplicated into two adoptions.
//!
//! The default loss process is [`LossProcess::Mixed`]: each ordered
//! pair owns a private Gilbert–Elliott chain (its own path's fades)
//! composed with one mesh-wide [`SharedLossState`] (the common backhaul
//! segment), advanced by the deployment driver per epoch — so inter-link
//! bursts hit every forwarding decision at once, exactly when shedding
//! is most tempting.

use std::collections::{BTreeMap, BTreeSet};

use presto_net::{GilbertElliott, LinkModel, LossProcess, SharedLossState};
use presto_proxy::{PipelineAnswer, PipelineQuery};
use presto_sim::{SimRng, SimTime};

/// A message between proxies.
#[derive(Clone, Debug)]
pub enum FleetMsg {
    /// A shed (or re-routed) query forwarded for adoption.
    Forward {
        /// Fleet-level ticket (router-assigned, deployment-unique).
        ticket: u64,
        /// The query.
        query: PipelineQuery,
        /// Absolute per-query deadline; the adopter inherits it.
        deadline: SimTime,
        /// When the user submitted it (for end-to-end latency).
        submitted_at: SimTime,
    },
    /// A completed (or honestly failed) adopted query's answer heading
    /// back to the entry proxy.
    Completion {
        /// Fleet-level ticket.
        ticket: u64,
        /// The answer, verbatim from the adopter's pipeline.
        answer: PipelineAnswer,
    },
    /// A membership heartbeat lease renewal. Heartbeats are datagrams
    /// ([`InterLinkMesh::send_datagram`]): one attempt, no ack, no
    /// retransmission — the next epoch's beacon supersedes a lost one,
    /// and retransmitting stale liveness claims would only delay
    /// suspicion.
    Heartbeat {
        /// When the sender emitted it.
        sent_at: SimTime,
    },
}

/// Mesh parameters.
#[derive(Clone, Debug)]
pub struct InterLinkConfig {
    /// Per-pair private burst chain (composed with the shared state
    /// into [`LossProcess::Mixed`] when `shared_chain` is set).
    pub link_chain: GilbertElliott,
    /// Mesh-wide shared fading chain; `None` leaves pairs independent.
    pub shared_chain: Option<GilbertElliott>,
    /// Retransmissions allowed per message after the first attempt
    /// (one attempt per epoch; a message that exhausts them is dropped
    /// and counted, and the sender's deadline machinery fails the
    /// ticket honestly).
    pub max_retransmits: u32,
    /// RNG seed for the pair loss streams.
    pub seed: u64,
}

impl Default for InterLinkConfig {
    fn default() -> Self {
        InterLinkConfig {
            // Mostly-clean backhaul with occasional multi-epoch fades.
            link_chain: GilbertElliott {
                p_gb: 0.01,
                p_bg: 0.3,
                loss_good: 0.02,
                loss_bad: 0.6,
            },
            shared_chain: Some(GilbertElliott {
                p_gb: 0.005,
                p_bg: 0.25,
                loss_good: 0.0,
                loss_bad: 0.8,
            }),
            max_retransmits: 4,
            seed: 0xF1EE7,
        }
    }
}

/// Mesh counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterLinkStats {
    /// Messages offered to the mesh.
    pub sent: u64,
    /// Messages delivered (first copies only).
    pub delivered: u64,
    /// Transmission attempts that died in the channel.
    pub lost: u64,
    /// Retransmission attempts.
    pub retransmits: u64,
    /// Messages abandoned *undelivered* after exhausting
    /// retransmissions.
    pub dropped: u64,
    /// Messages that were delivered but whose acks never made it back
    /// before retransmissions ran out (the receiver has them; only the
    /// sender's bookkeeping gave up).
    pub ack_exhausted: u64,
    /// Duplicate deliveries filtered at the receiver (lost acks).
    pub duplicates: u64,
    /// Acks lost on the reverse path.
    pub acks_lost: u64,
}

impl InterLinkStats {
    /// Folds another mesh's counters into this one.
    pub fn merge(&mut self, other: &InterLinkStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.retransmits += other.retransmits;
        self.dropped += other.dropped;
        self.ack_exhausted += other.ack_exhausted;
        self.duplicates += other.duplicates;
        self.acks_lost += other.acks_lost;
    }
}

presto_telemetry::observe_counters!(InterLinkStats {
    sent,
    delivered,
    lost,
    retransmits,
    dropped,
    ack_exhausted,
    duplicates,
    acks_lost,
});

/// One in-flight mesh message.
#[derive(Clone, Debug)]
struct PendingMsg {
    src: usize,
    dst: usize,
    seq: u64,
    msg: FleetMsg,
    attempts: u32,
    /// Reliable messages ack and retransmit; datagrams get exactly one
    /// attempt and are forgotten (heartbeats).
    reliable: bool,
}

/// The sequenced, lossy proxy↔proxy mesh.
pub struct InterLinkMesh {
    config: InterLinkConfig,
    proxies: usize,
    /// Forward-path loss per ordered pair, lazily built.
    links: BTreeMap<(usize, usize), LinkModel>,
    /// Next sequence number per ordered pair.
    next_seq: BTreeMap<(usize, usize), u64>,
    /// Delivered sequence numbers per ordered pair (receiver dedup).
    delivered: BTreeMap<(usize, usize), BTreeSet<u64>>,
    /// Mesh-wide shared fading state, advanced by the driver.
    shared: Option<SharedLossState>,
    /// Per-proxy gate: a down proxy neither sends nor receives.
    up: Vec<bool>,
    pending: Vec<PendingMsg>,
    rng: SimRng,
    stats: InterLinkStats,
}

impl InterLinkMesh {
    /// Creates a mesh over `proxies` proxies.
    pub fn new(config: InterLinkConfig, proxies: usize) -> Self {
        let rng = SimRng::new(config.seed);
        let shared = config
            .shared_chain
            .map(|chain| SharedLossState::new(chain, rng.split("il-shared")));
        InterLinkMesh {
            proxies,
            links: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            delivered: BTreeMap::new(),
            shared,
            up: vec![true; proxies],
            pending: Vec::new(),
            rng,
            stats: InterLinkStats::default(),
        config,
        }
    }

    /// Counters.
    pub fn stats(&self) -> InterLinkStats {
        self.stats
    }

    /// The mesh-wide shared fading state, when configured.
    pub fn shared(&self) -> Option<&SharedLossState> {
        self.shared.as_ref()
    }

    /// Gates a proxy's mesh endpoints (blackout). While down, its
    /// outgoing attempts and incoming deliveries all die in the channel
    /// — attempts are still consumed, exactly as transmissions towards
    /// a dead receiver cost airtime on real hardware.
    pub fn set_up(&mut self, proxy: usize, up: bool) {
        self.up[proxy] = up;
    }

    /// Messages currently in flight (leak probe: bounded by retransmit
    /// exhaustion, zero once traffic stops and retries drain).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Offers a message from `src` to `dst`; the next [`step`] makes
    /// the first delivery attempt.
    ///
    /// [`step`]: InterLinkMesh::step
    pub fn send(&mut self, src: usize, dst: usize, msg: FleetMsg) {
        self.enqueue(src, dst, msg, true);
    }

    /// Offers an unreliable datagram from `src` to `dst`: the next
    /// [`step`] makes exactly one delivery attempt — no ack, no
    /// retransmission, the message is forgotten either way. Used for
    /// heartbeats, whose next beacon supersedes a lost one.
    ///
    /// [`step`]: InterLinkMesh::step
    pub fn send_datagram(&mut self, src: usize, dst: usize, msg: FleetMsg) {
        self.enqueue(src, dst, msg, false);
    }

    fn enqueue(&mut self, src: usize, dst: usize, msg: FleetMsg, reliable: bool) {
        assert!(src < self.proxies && dst < self.proxies && src != dst);
        let seq = self.next_seq.entry((src, dst)).or_insert(0);
        let s = *seq;
        *seq += 1;
        self.stats.sent += 1;
        self.pending.push(PendingMsg {
            src,
            dst,
            seq: s,
            msg,
            attempts: 0,
            reliable,
        });
    }

    /// Sets or heals the physical cut between proxies `a` and `b`
    /// (both directions): while cut, every frame — forwards, acks and
    /// heartbeats — dies on the wire. Reliable messages burn their
    /// retransmissions into the cut and are dropped honestly; the
    /// sender's deadline machinery fails their tickets.
    pub fn set_link_cut(&mut self, a: usize, b: usize, cut: bool) {
        self.link(a, b).set_blocked(cut);
        self.link(b, a).set_blocked(cut);
    }

    fn link(&mut self, src: usize, dst: usize) -> &mut LinkModel {
        let config = &self.config;
        let shared = self.shared.clone();
        let rng = &self.rng;
        self.links.entry((src, dst)).or_insert_with(|| {
            let process = match shared {
                Some(shared) => LossProcess::Mixed {
                    link: config.link_chain,
                    shared,
                },
                None => LossProcess::Gilbert(config.link_chain),
            };
            LinkModel::new(process, rng.split(&format!("il-{src}-{dst}")))
        })
    }

    /// Drives every pending message one attempt (one per epoch),
    /// advancing the shared fading state first. Returns the messages
    /// delivered this epoch as `(dst, src, msg)` triples, first copies
    /// only — duplicates created by lost acks are filtered here.
    pub fn step(&mut self, _t: SimTime) -> Vec<(usize, usize, FleetMsg)> {
        if let Some(shared) = &self.shared {
            shared.advance(1);
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.pending.len() {
            let (src, dst, seq) = {
                let p = &self.pending[i];
                (p.src, p.dst, p.seq)
            };
            if self.pending[i].attempts > self.config.max_retransmits {
                // A message the receiver already consumed (only its
                // acks kept dying) is not a lost forward — count it
                // apart so `dropped` means what it says.
                let was_delivered = self
                    .delivered
                    .get(&(src, dst))
                    .is_some_and(|seen| seen.contains(&seq));
                if was_delivered {
                    self.stats.ack_exhausted += 1;
                } else {
                    self.stats.dropped += 1;
                }
                self.pending.remove(i);
                continue;
            }
            if self.pending[i].attempts > 0 {
                self.stats.retransmits += 1;
            }
            self.pending[i].attempts += 1;
            // A gated endpoint kills the frame regardless of the
            // channel draw (the draw still happens: the wire was used).
            let wire_ok = self.link(src, dst).deliver();
            if !wire_ok || !self.up[src] || !self.up[dst] {
                self.stats.lost += 1;
                if self.pending[i].reliable {
                    i += 1;
                } else {
                    // A lost datagram is simply gone.
                    self.pending.remove(i);
                }
                continue;
            }
            // Delivered: receiver dedups, then acks over the reverse
            // path. A lost ack keeps the message pending — the
            // retransmission will be filtered as a duplicate.
            let first_copy = self.delivered.entry((src, dst)).or_default().insert(seq);
            if !first_copy {
                self.stats.duplicates += 1;
            }
            if first_copy {
                self.stats.delivered += 1;
                out.push((dst, src, self.pending[i].msg.clone()));
            }
            if !self.pending[i].reliable {
                // Datagrams are fire-and-forget: no ack leg at all.
                self.pending.remove(i);
                continue;
            }
            let ack_ok = self.link(dst, src).deliver();
            if ack_ok {
                self.pending.remove(i);
            } else {
                self.stats.acks_lost += 1;
                i += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    fn fwd(ticket: u64) -> FleetMsg {
        FleetMsg::Forward {
            ticket,
            query: PipelineQuery::Now {
                sensor: 0,
                tolerance: 0.5,
            },
            deadline: SimTime::from_mins(10),
            submitted_at: SimTime::ZERO,
        }
    }

    fn ticket_of(msg: &FleetMsg) -> u64 {
        match msg {
            FleetMsg::Forward { ticket, .. } | FleetMsg::Completion { ticket, .. } => *ticket,
            FleetMsg::Heartbeat { .. } => panic!("heartbeat has no ticket"),
        }
    }

    fn perfect_config() -> InterLinkConfig {
        InterLinkConfig {
            link_chain: GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            shared_chain: None,
            ..InterLinkConfig::default()
        }
    }

    #[test]
    fn clean_mesh_delivers_in_one_step() {
        let mut mesh = InterLinkMesh::new(perfect_config(), 3);
        mesh.send(0, 2, fwd(7));
        mesh.send(2, 1, fwd(8));
        let got = mesh.step(SimTime::ZERO);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 2, "delivered to dst");
        assert_eq!(got[0].1, 0, "from src");
        assert_eq!(ticket_of(&got[0].2), 7);
        assert_eq!(mesh.in_flight(), 0);
        assert_eq!(mesh.stats().delivered, 2);
    }

    #[test]
    fn lossy_mesh_retransmits_and_gives_up_honestly() {
        // Total loss: every attempt dies; after max_retransmits + 1
        // attempts the message is dropped and counted.
        let cfg = InterLinkConfig {
            link_chain: GilbertElliott {
                p_gb: 1.0,
                p_bg: 0.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            },
            shared_chain: None,
            max_retransmits: 3,
            ..InterLinkConfig::default()
        };
        let mut mesh = InterLinkMesh::new(cfg, 2);
        mesh.send(0, 1, fwd(1));
        for e in 0..6u64 {
            let got = mesh.step(SimTime::ZERO + SimDuration::from_secs(31) * e);
            assert!(got.is_empty());
        }
        assert_eq!(mesh.in_flight(), 0, "exhausted message must not leak");
        assert_eq!(mesh.stats().dropped, 1);
        assert_eq!(mesh.stats().retransmits, 3);
    }

    #[test]
    fn gated_destination_blocks_delivery_until_up() {
        let mut mesh = InterLinkMesh::new(perfect_config(), 2);
        mesh.set_up(1, false);
        mesh.send(0, 1, fwd(3));
        assert!(mesh.step(SimTime::ZERO).is_empty());
        assert!(mesh.in_flight() == 1, "retries continue while gated");
        mesh.set_up(1, true);
        let got = mesh.step(SimTime::from_secs(31));
        assert_eq!(got.len(), 1);
        assert_eq!(ticket_of(&got[0].2), 3);
    }

    #[test]
    fn shared_burst_fades_every_pair_together() {
        let cfg = InterLinkConfig {
            link_chain: GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            shared_chain: Some(GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            }),
            ..InterLinkConfig::default()
        };
        let mut mesh = InterLinkMesh::new(cfg, 3);
        mesh.shared().expect("shared state").force(Some(true));
        mesh.send(0, 1, fwd(1));
        mesh.send(1, 2, fwd(2));
        assert!(mesh.step(SimTime::ZERO).is_empty(), "burst kills every pair");
        mesh.shared().expect("shared state").force(Some(false));
        assert_eq!(mesh.step(SimTime::from_secs(31)).len(), 2);
    }

    #[test]
    fn lost_ack_duplicates_are_filtered() {
        // Forward path clean, ack path... same link object serves both
        // directions of the pair distinctly, so script it: make every
        // (1,0) reverse frame die by gating... simplest: total-loss ack
        // cannot be configured independently here, so exercise dedup
        // directly through two sends of the same seq — covered by the
        // mesh's own retransmission when acks fail under Mixed loss.
        // Deterministic variant: deliver, fail ack by gating the SOURCE
        // after the forward leg is sampled is not expressible; instead
        // assert the dedup set grows and a re-step never re-emits.
        let mut mesh = InterLinkMesh::new(perfect_config(), 2);
        mesh.send(0, 1, fwd(9));
        assert_eq!(mesh.step(SimTime::ZERO).len(), 1);
        // Nothing pending, stepping again emits nothing.
        assert!(mesh.step(SimTime::from_secs(31)).is_empty());
        assert_eq!(mesh.stats().duplicates, 0);
    }

    #[test]
    fn datagrams_get_one_attempt_and_never_linger() {
        // Total loss: a reliable message would retransmit; a datagram
        // dies on its single attempt and leaves nothing in flight.
        let cfg = InterLinkConfig {
            link_chain: GilbertElliott {
                p_gb: 1.0,
                p_bg: 0.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            },
            shared_chain: None,
            ..InterLinkConfig::default()
        };
        let mut mesh = InterLinkMesh::new(cfg, 2);
        mesh.send_datagram(0, 1, FleetMsg::Heartbeat { sent_at: SimTime::ZERO });
        assert!(mesh.step(SimTime::ZERO).is_empty());
        assert_eq!(mesh.in_flight(), 0, "lost datagram must not retry");
        assert_eq!(mesh.stats().retransmits, 0);
        assert_eq!(mesh.stats().dropped, 0, "datagram loss is not a drop");

        // Clean mesh: delivered in one step, still nothing in flight
        // (no ack leg to wait on).
        let mut mesh = InterLinkMesh::new(perfect_config(), 2);
        mesh.send_datagram(1, 0, FleetMsg::Heartbeat { sent_at: SimTime::ZERO });
        let got = mesh.step(SimTime::ZERO);
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0].2, FleetMsg::Heartbeat { .. }));
        assert_eq!((got[0].0, got[0].1), (0, 1));
        assert_eq!(mesh.in_flight(), 0);
    }

    #[test]
    fn link_cut_severs_both_directions_until_healed() {
        let mut mesh = InterLinkMesh::new(perfect_config(), 3);
        mesh.set_link_cut(0, 2, true);
        mesh.send(0, 2, fwd(1));
        mesh.send(2, 0, fwd(2));
        mesh.send(0, 1, fwd(3));
        let got = mesh.step(SimTime::ZERO);
        assert_eq!(got.len(), 1, "only the uncut pair delivers");
        assert_eq!(ticket_of(&got[0].2), 3);
        assert_eq!(mesh.in_flight(), 2, "cut messages keep retrying");
        mesh.set_link_cut(0, 2, false);
        let got = mesh.step(SimTime::from_secs(31));
        let mut tickets: Vec<u64> = got.iter().map(|(_, _, m)| ticket_of(m)).collect();
        tickets.sort_unstable();
        assert_eq!(tickets, vec![1, 2], "healed link delivers the retries");
        assert_eq!(mesh.in_flight(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let cfg = InterLinkConfig {
                seed,
                ..InterLinkConfig::default()
            };
            let mut mesh = InterLinkMesh::new(cfg, 2);
            let mut log = Vec::new();
            for e in 0..64u64 {
                mesh.send(0, 1, fwd(e));
                log.extend(
                    mesh.step(SimTime::ZERO + SimDuration::from_secs(31) * e)
                        .into_iter()
                        .map(|(_, _, m)| ticket_of(&m)),
                );
            }
            log
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
