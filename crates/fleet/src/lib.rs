//! The cross-proxy deployment tier.
//!
//! The paper's third tier is a data-abstraction layer over *many*
//! proxies: "a single logical view over distributed archives and
//! caches". Up to PR 4 that view existed only for routing — every query
//! workload still entered and completed at exactly one proxy, so the
//! tethered tier's ability to *absorb* heavy, skewed multi-user traffic
//! had never been exercised at deployment scale. This crate turns the
//! collection of [`presto_core::PrestoSystem`] proxies into a
//! coordinated fleet:
//!
//! * [`interlink`] — a sequenced, lossy, ack/retransmit proxy↔proxy
//!   message mesh (the same channel discipline as the sensor fabric,
//!   pointed sideways), carrying forwarded queries and returned
//!   answers; proxy heartbeats ride separate per-proxy lossy beacon
//!   paths (see [`membership`]). Its loss process is
//!   [`presto_net::LossProcess::Mixed`] by default: per-pair private
//!   fades composed with a mesh-wide shared fading state.
//! * [`router`] — the [`router::FleetRouter`]: every user query enters
//!   at a home proxy; an admission controller reads per-proxy pipeline
//!   pressure (outstanding queries, per-epoch attempt-budget
//!   saturation, downlink retry-budget depletion) and **sheds**
//!   archive-range queries from hot proxies to the least-pressured
//!   live peer, which adopts them into its own pipeline and pulls the
//!   sensor over a dedicated cross-proxy downlink channel. Queries the
//!   mesh loses, or that no peer can absorb, fail honestly
//!   (`Failed`, sigma ∞) by their per-query deadline — assigned from
//!   query–sensor matching's latency classes, not a global constant.
//! * [`membership`] — the [`membership::FleetMembership`] monitor lifts
//!   the heartbeat-lease liveness model one tier up: proxies renew
//!   leases over lossy paths; a proxy silent past the dead threshold
//!   triggers **sensor re-homing** — its sensors re-register with a
//!   surviving proxy, which warms its cache from archive-backed
//!   recovery replay (the same warm-up path gap repair uses) and
//!   resumes the dead proxy's outstanding queries or fails them
//!   honestly.
//! * [`deployment`] — [`deployment::FleetDeployment`] glues the three
//!   onto a running [`presto_core::PrestoSystem`]: it drives
//!   [`presto_core::PrestoSystem::step_epoch_core`] plus its own
//!   fleet-aware pipeline pump (per-proxy views over home, adopted,
//!   and cross-proxy channels).

pub mod deployment;
pub mod interlink;
pub mod membership;
pub mod router;
pub mod scope;

pub use deployment::{FleetConfig, FleetDeployment, FleetLeaks};
pub use scope::{fleet_scope_config, FleetScopeBounds, FEED_STALE_CONFIDENT};
pub use interlink::{FleetMsg, InterLinkConfig, InterLinkMesh, InterLinkStats};
pub use membership::{FleetMembership, FleetMembershipConfig, MembershipStats};
pub use router::{FleetCompletion, FleetRouter, FleetRouterConfig, FleetRouterStats};
