//! The assembled deployment tier: a [`PrestoSystem`] fronted by the
//! fleet router, the proxy-liveness view, and the inter-link mesh.
//!
//! [`FleetDeployment::step_epoch`] replaces the system's default
//! pipeline pump with a fleet-aware one: each live proxy pumps a view
//! over the sensors it currently serves — its own cluster, clusters
//! adopted after a peer's death, and **cross-proxy downlink channels**
//! it opened to serve shed queries for sensors it does not own. The
//! cross-proxy channels are real [`DownlinkChannel`]s (same loss,
//! retry-budget, and dedup machinery as the owner's) drawing sequence
//! numbers from a per-proxy namespace so the sensor's duplicate filter
//! keeps working with two proxies talking to it at once.

use std::collections::BTreeMap;

use presto_core::{PrestoSystem, SystemConfig};
use presto_net::{LinkModel, LossProcess};
use presto_proxy::{PipelineQuery, PumpSensor};
use presto_reliability::{DownlinkChannel, Health};
use presto_sensor::SensorNode;
use presto_sim::{FaultPlan, FleetArrival, QueryKind, SimDuration, SimTime};
use presto_telemetry::Snapshot;

use crate::interlink::{FleetMsg, InterLinkConfig, InterLinkMesh};
use crate::membership::{FleetMembership, FleetMembershipConfig};
use crate::router::{FleetCompletion, FleetRouter, FleetRouterConfig, ProxyPressure, RouteAction};

/// Deployment-tier parameters.
#[derive(Clone, Debug, Default)]
pub struct FleetConfig {
    /// The underlying three-tier system.
    pub system: SystemConfig,
    /// Router / admission-control parameters.
    pub router: FleetRouterConfig,
    /// Proxy-liveness parameters.
    pub membership: FleetMembershipConfig,
    /// Proxy↔proxy mesh parameters.
    pub interlink: InterLinkConfig,
}

/// Leak probes over every fleet-tier table (all zero once submitted
/// traffic has terminated and retries drained).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetLeaks {
    /// Router tickets awaiting a terminal.
    pub router_open: usize,
    /// Pending pipeline queries across proxies.
    pub pipeline_pending: usize,
    /// Outstanding async RPCs across home *and* cross-proxy channels.
    pub rpcs_in_flight: usize,
    /// Mesh messages still retransmitting.
    pub mesh_in_flight: usize,
}

impl FleetLeaks {
    /// True when every table is empty.
    pub fn is_clean(&self) -> bool {
        self.router_open == 0
            && self.pipeline_pending == 0
            && self.rpcs_in_flight == 0
            && self.mesh_in_flight == 0
    }
}

/// A running fleet.
pub struct FleetDeployment {
    /// The underlying system (public: experiments read stats and warm
    /// it up directly).
    pub system: PrestoSystem,
    /// The router (public for stats).
    pub router: FleetRouter,
    membership: FleetMembership,
    /// The proxy↔proxy mesh (public for stats).
    pub mesh: InterLinkMesh,
    /// Cross-proxy downlink channels for shed queries, keyed
    /// `(driving proxy, sensor)`.
    foreign: BTreeMap<(usize, u16), DownlinkChannel>,
    rng: presto_sim::SimRng,
    /// Sensors re-homed across proxy deaths.
    rehomed: u64,
    /// Per-proxy down state at the last epoch (crash-onset edges).
    proxy_was_down: Vec<bool>,
    /// Per-proxy fencing state: up but outside the membership quorum
    /// (the minority side of a mesh partition). A fenced proxy accepts
    /// no new queries, adopts no forwards, and drives no radio — its
    /// pipeline only expires honestly — until quorum returns.
    fenced: Vec<bool>,
    /// Who pumped which sensor this epoch, `(proxy, gid,
    /// via_foreign_channel)` — the uplink-ownership audit trail the
    /// partition property tests assert over. Cleared every epoch.
    pump_log: Vec<(usize, u16, bool)>,
    /// Per-proxy retry-budget depletion, refreshed once per epoch: the
    /// only pressure component that needs a full channel scan (queue
    /// depth and saturation are O(1) live reads).
    depletions: Vec<f64>,
    /// Monotonic sequence-namespace allocator for cross-proxy
    /// channels: every channel *incarnation* gets a fresh block, so a
    /// channel rebuilt after its driver crashed can never replay a
    /// sequence number the sensor's dedup cache still remembers.
    next_foreign_seq_base: u64,
}

impl FleetDeployment {
    /// Builds the fleet over a fresh system.
    pub fn new(config: FleetConfig) -> Self {
        let proxies = config.system.proxies;
        let seed = config.system.seed;
        let system = PrestoSystem::new(config.system);
        let mut fleet = FleetDeployment {
            system,
            router: FleetRouter::new(config.router),
            membership: FleetMembership::new(config.membership, proxies),
            mesh: InterLinkMesh::new(config.interlink, proxies),
            foreign: BTreeMap::new(),
            rng: presto_sim::SimRng::new(seed ^ 0xF1EE7),
            rehomed: 0,
            proxy_was_down: vec![false; proxies],
            fenced: vec![false; proxies],
            pump_log: Vec::new(),
            depletions: vec![0.0; proxies],
            next_foreign_seq_base: 1 << 48,
        };
        fleet.refresh_depletions();
        fleet
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.system.now()
    }

    /// The proxy-liveness view.
    pub fn membership(&self) -> &FleetMembership {
        &self.membership
    }

    /// Sensors re-homed across proxy deaths so far.
    pub fn rehomed_sensors(&self) -> u64 {
        self.rehomed
    }

    /// Cross-proxy channels currently open.
    pub fn foreign_channels(&self) -> usize {
        self.foreign.len()
    }

    /// Whether `proxy` is fenced: up, but outside the membership
    /// quorum (minority side of a mesh partition).
    pub fn is_fenced(&self, proxy: usize) -> bool {
        self.fenced[proxy]
    }

    /// The last epoch's pump audit trail: `(proxy, gid, via foreign
    /// channel)` for every sensor a proxy drove radio toward.
    pub fn pump_log(&self) -> &[(usize, u16, bool)] {
        &self.pump_log
    }

    /// Leak probes over every fleet-tier table.
    pub fn leaks(&self) -> FleetLeaks {
        FleetLeaks {
            router_open: self.router.open_tickets(),
            pipeline_pending: self.system.pipeline_pending_total(),
            rpcs_in_flight: self.system.async_in_flight_total()
                + self.foreign.values().map(|c| c.async_in_flight()).sum::<usize>(),
            mesh_in_flight: self.mesh.in_flight(),
        }
    }

    /// One proxy's admission-control reading: live pipeline depth and
    /// attempt-budget saturation, plus the per-epoch cached worst
    /// retry-budget depletion across the downlink channels it drives.
    pub fn pressure(&self, p: usize) -> ProxyPressure {
        let pl = self.system.proxies[p].pipeline();
        let budget = pl.config().epoch_attempt_budget.max(1) as f64;
        ProxyPressure {
            pending: pl.pending_queries(),
            saturation: (pl.last_pump_attempts() as f64 / budget).min(1.0),
            depletion: self.depletions[p],
            live: self.membership.health(p) == Health::Live,
        }
    }

    /// Recomputes every proxy's retry-budget depletion (one scan over
    /// the fleet's channels; the buckets only move on pump/tick, so
    /// once per epoch is exact enough for admission control).
    fn refresh_depletions(&mut self) {
        let cap = self
            .system
            .config()
            .reliability
            .downlink
            .retry_budget_j
            .max(1e-9);
        let mut min_frac = vec![1.0f64; self.system.config().proxies];
        for gid in 0..self.system.total_sensors() {
            let p = self.system.assignment()[gid];
            let (hp, hs) = self.system.locate(presto_core::gid16(gid));
            min_frac[p] = min_frac[p].min(self.system.downlinks[hp][hs].budget_remaining_j() / cap);
        }
        for ((fp, _), chan) in self.foreign.iter() {
            min_frac[*fp] = min_frac[*fp].min(chan.budget_remaining_j() / cap);
        }
        self.depletions = min_frac
            .into_iter()
            .map(|f| (1.0 - f).clamp(0.0, 1.0))
            .collect();
    }

    /// The global sensor id a workload arrival targets (the one
    /// mapping from `(group, slot)` to the sensor space — drivers that
    /// need a truth oracle for an arrival read it from here).
    pub fn arrival_gid(&self, a: &FleetArrival) -> u16 {
        let spp = self.system.config().sensors_per_proxy;
        let entry = a.group.min(self.system.config().proxies - 1);
        presto_core::gid16(entry * spp + a.arrival.sensor_slot.min(spp - 1))
    }

    /// Submits a workload arrival: maps `(group, slot)` to a global
    /// sensor and the arrival kind to a pipeline query, entering at the
    /// group's proxy. Returns the fleet ticket.
    pub fn submit_arrival(&mut self, a: &FleetArrival) -> u64 {
        let entry = a.group.min(self.system.config().proxies - 1);
        let gid = self.arrival_gid(a);
        let query = match a.arrival.kind {
            QueryKind::Now => PipelineQuery::Now {
                sensor: gid,
                tolerance: a.arrival.tolerance,
            },
            QueryKind::Past => PipelineQuery::Past {
                sensor: gid,
                from: a.arrival.from,
                to: a.arrival.to,
                tolerance: a.arrival.tolerance,
            },
            QueryKind::Aggregate => PipelineQuery::Aggregate {
                sensor: gid,
                from: a.arrival.from,
                to: a.arrival.to,
                op: presto_sensor::AggregateOp::Mean,
            },
        };
        self.submit(entry, query, a.arrival.tolerance)
    }

    /// Submits a query entering at `entry`. The router assigns its
    /// deadline (latency classes), reads every proxy's pressure, and
    /// either admits it into the serving proxy's pipeline or sheds it
    /// over the mesh.
    pub fn submit(&mut self, entry: usize, query: PipelineQuery, tolerance: f64) -> u64 {
        let t = self.system.now();
        // A physically-down entry proxy has no process to accept the
        // submission — the user's connection fails on the spot, long
        // before the lease-based death declaration. Record the honest
        // failure (submitting into a dead proxy's pipeline object would
        // park queries nothing will ever pump: a leak).
        if self.system.faults().proxy_down(entry, t) {
            return self.router.fail_unreachable(t, entry, query);
        }
        let gid = query.sensor() as usize;
        let serving = self.system.assignment()[gid];
        // A fenced proxy (up, but cut off from the quorum) must not
        // accept new work: on the minority side it cannot prove its
        // answer agrees with the fleet, so the admission fails honestly
        // instead of serving a confidently-stale result.
        if self.fenced[entry] || self.fenced[serving] {
            return self.router.fail_fenced(t, entry, query);
        }
        let proxies = self.system.config().proxies;
        let mut pressures: Vec<ProxyPressure> = (0..proxies).map(|p| self.pressure(p)).collect();
        // Shed targeting respects the *entry proxy's own* mesh view on
        // top of the quorum grade: a peer the entry cannot reach over
        // the mesh (an asymmetric cut) is no shed target even if the
        // rest of the fleet vouches for it, and a fenced peer is never
        // one.
        for (p, reading) in pressures.iter_mut().enumerate() {
            if p != entry
                && (self.fenced[p] || self.membership.view(entry, p) != Health::Live)
            {
                reading.live = false;
            }
        }
        // Shed gating via the time-range index: a window archived
        // nowhere is not worth a mesh round trip.
        let range_archived = match query {
            PipelineQuery::Past { from, to, .. } | PipelineQuery::Aggregate { from, to, .. } => {
                let slack = SimDuration::from_secs(60);
                !self.system.route_range(from - slack, to + slack).0.is_empty()
            }
            PipelineQuery::Now { .. } => true,
        };
        let (ticket, deadline, action) =
            self.router
                .route(t, entry, serving, query, tolerance, &pressures, range_archived);
        match action {
            RouteAction::Local { proxy } => {
                // The router may keep a query at its entry proxy even
                // when another proxy owns the sensor (shedding back to
                // a cool entry): provision exactly as an adoption
                // would, or the pump would have no channel for it.
                if self.system.assignment()[gid] != proxy {
                    self.system.proxies[proxy].register_sensor(query.sensor());
                    self.ensure_foreign_channel(proxy, query.sensor());
                }
                let pt = self.system.proxies[proxy].submit_query_with_deadline(
                    t,
                    query,
                    Some(deadline - t),
                );
                self.router.bind(ticket, proxy, pt);
            }
            RouteAction::Forward { proxy } => {
                self.mesh.send(
                    entry,
                    proxy,
                    FleetMsg::Forward {
                        ticket,
                        query,
                        deadline,
                        submitted_at: t,
                    },
                );
            }
        }
        ticket
    }

    /// Drains fleet-level terminals recorded since the last call.
    pub fn take_completed(&mut self) -> Vec<FleetCompletion> {
        self.router.take_completed()
    }

    /// Advances the fleet one epoch: the system core pass, proxy-lease
    /// maintenance (with failover on a death declaration), mesh
    /// traffic, cross-proxy channel upkeep, the fleet pump, completion
    /// collection, and the router's honest-expiry sweep.
    pub fn step_epoch(&mut self) {
        let t = self.system.step_epoch_core();
        let proxies = self.system.config().proxies;
        let faults = self.system.faults().clone();
        let up: Vec<bool> = (0..proxies).map(|p| !faults.proxy_down(p, t)).collect();
        let mesh_timer = self.system.profiler().begin();
        for (p, &u) in up.iter().enumerate() {
            self.mesh.set_up(p, u);
            // Crash onset: the proxy's cross-proxy channels are its
            // RAM — pending-RPC tables and all — and die with it (the
            // system tier wipes the home channels it was driving; these
            // are the fleet tier's to wipe). A later adoption rebuilds
            // them fresh.
            if !u && !self.proxy_was_down[p] {
                self.foreign.retain(|&(fp, _), _| fp != p);
            }
            self.proxy_was_down[p] = !u;
        }

        // 1. Split-brain fault gates: sever exactly the proxy↔proxy
        // links the fault plan cuts this instant (downlinks stay up —
        // that asymmetry is the whole point of the scenario).
        for a in 0..proxies {
            for b in (a + 1)..proxies {
                self.mesh.set_link_cut(a, b, faults.mesh_link_cut(a, b, t));
            }
        }

        // 2. Heartbeat fan-out: every live proxy beacons to every peer
        // as an unreliable mesh datagram (the next beacon supersedes a
        // lost one; retransmitting a stale liveness claim would be
        // worse than silence).
        for (p, &p_up) in up.iter().enumerate() {
            if !p_up {
                continue;
            }
            for q in 0..proxies {
                if q != p {
                    self.mesh
                        .send_datagram(p, q, FleetMsg::Heartbeat { sent_at: t });
                    self.membership.record_offered(1);
                }
            }
        }

        // 3. Mesh delivery: heartbeats renew leases immediately;
        // forwards and completions wait until fencing is settled below.
        let mut deferred = Vec::new();
        for (dst, src, msg) in self.mesh.step(t) {
            match msg {
                FleetMsg::Heartbeat { sent_at } => {
                    self.membership.heard(dst, src, sent_at);
                }
                other => deferred.push((dst, other)),
            }
        }
        self.system.profiler_mut().end("fleet_mesh", mesh_timer);

        let membership_timer = self.system.profiler().begin();
        // 4. Quorum membership: declarations trigger failover, and the
        // fencing state refreshes. A proxy crossing the fenced→unfenced
        // edge (partition healed, quorum regained) re-syncs through an
        // archive-backed replay — its caches silently aged while cut
        // off.
        for dead in self.membership.step(t, &up) {
            self.handle_failover(t, dead);
        }
        for (p, &p_up) in up.iter().enumerate() {
            let now_fenced = p_up && !self.membership.in_quorum(p);
            if self.fenced[p] && !now_fenced && p_up {
                self.system.resync_proxy(p, t);
            }
            self.fenced[p] = now_fenced;
        }
        self.system.profiler_mut().end("fleet_membership", membership_timer);

        let deliver_timer = self.system.profiler().begin();
        // 5. Deferred mesh traffic: adopt forwards, consume answers.
        for (dst, msg) in deferred {
            match msg {
                FleetMsg::Forward {
                    ticket,
                    query,
                    deadline,
                    ..
                } => {
                    if t >= deadline || self.fenced[dst] {
                        // Too late to run, or the adopter lost quorum
                        // while the forward was in flight; the router's
                        // expiry sweep fails the ticket honestly.
                        continue;
                    }
                    let gid = query.sensor();
                    self.system.proxies[dst].register_sensor(gid);
                    if self.system.assignment()[gid as usize] != dst {
                        self.ensure_foreign_channel(dst, gid);
                    }
                    let pt = self.system.proxies[dst].submit_query_with_deadline(
                        t,
                        query,
                        Some(deadline - t),
                    );
                    self.router.bind(ticket, dst, pt);
                }
                FleetMsg::Completion { ticket, answer } => {
                    self.router.on_completion_msg(t, ticket, answer);
                }
                // Heartbeats were consumed by the membership pass above;
                // one slipping through is dropped, not a crash.
                FleetMsg::Heartbeat { .. } => {}
            }
        }

        // 6. Cross-proxy channel upkeep: fault gates + budget refill.
        for ((fp, gid), chan) in self.foreign.iter_mut() {
            chan.set_link_up(up[*fp] && !faults.is_unreachable(*gid as usize, t));
            chan.tick(t);
        }
        self.system.profiler_mut().end("fleet_deliver", deliver_timer);

        // 7. Fleet pump: each live, unfenced proxy serves its current
        // view; fenced proxies pump empty (honest expiry still runs,
        // no radio).
        let pump_timer = self.system.profiler().begin();
        self.pump_fleet(t, &faults);
        let pumped = self.pump_log.len() as u64;
        self.system.profiler_mut().end("fleet_pump", pump_timer);
        self.system.profiler_mut().count("fleet_pump", pumped);

        // 8. Collect pipeline completions; answers produced away from
        // their entry proxy ride the mesh home.
        let collect_timer = self.system.profiler().begin();
        for p in 0..proxies {
            if !up[p] {
                continue;
            }
            // Splice each finished pipeline trace into its open fleet
            // trace *before* the completions below consume the
            // proxy-ticket bindings the lookup needs.
            if self.router.tracer().enabled()
                && self.system.proxies[p].pipeline().tracer().enabled()
            {
                for ptrace in self.system.proxies[p].pipeline_mut().tracer_mut().take_finished()
                {
                    if let Some(ticket) = self.router.fleet_ticket(p, ptrace.ticket) {
                        self.router.tracer_mut().absorb(ticket, ptrace.events);
                    }
                }
            }
            for c in self.system.proxies[p].take_completed_queries() {
                if let Some((ticket, entry)) = self.router.on_pipeline_completion(t, p, &c) {
                    if up[entry] && entry != p {
                        self.mesh.send(p, entry, FleetMsg::Completion {
                            ticket,
                            answer: c.answer,
                        });
                    }
                    // A dead entry proxy has no one to deliver to: the
                    // router already failed (or will expire) the ticket.
                }
            }
        }

        // 9. Honest expiry: whatever the mesh dropped terminates here.
        self.router.expire(t);

        // 10. Refresh the cached budget-depletion readings and feed the
        // epoch-level pressure smoothing for the coming epoch's
        // submissions.
        self.refresh_depletions();
        let pressures: Vec<ProxyPressure> = (0..proxies).map(|p| self.pressure(p)).collect();
        self.router.observe_pressures(t, &pressures);
        self.system.profiler_mut().end("fleet_collect", collect_timer);

        // 11. presto-scope tick over the *fleet* snapshot (router,
        // membership, mesh, and live fleet gauges included), so the
        // sampled series and watchdog rules see the deployment tier,
        // not just the underlying system.
        if self.system.scope().enabled() {
            let scope_timer = self.system.profiler().begin();
            let snap = self.snapshot_filtered(&|root| self.system.scope().needs_root(root));
            self.system.scope_mut().sample(t, &snap, &faults);
            self.system.profiler_mut().end("fleet_scope", scope_timer);
        }
    }

    /// One unified metrics snapshot across every tier: the system's
    /// (proxies, pipelines, downlinks, fabric, sensors, profiler) plus
    /// the fleet tier's router, membership, and mesh counters, the
    /// serve-time latency/answer-age histograms, and the live fleet
    /// gauges (leak probes, pressure, fencing) the scope watchdogs
    /// read.
    pub fn telemetry_snapshot(&self) -> Snapshot {
        self.snapshot_filtered(&|_| true)
    }

    /// [`FleetDeployment::telemetry_snapshot`] gated per top-level
    /// section, mirroring `PrestoSystem::snapshot_filtered`: the
    /// per-epoch scope tick only pays for the subtrees it reads.
    fn snapshot_filtered(&self, want: &dyn Fn(&str) -> bool) -> Snapshot {
        let mut snap = self.system.snapshot_filtered(want);
        let root = &mut snap.root;
        if want("fleet_router") {
            root.observe("fleet_router", &self.router.stats());
            let fr = root.child("fleet_router");
            fr.histogram("latency_us", self.router.latency_hist());
            fr.histogram("answer_age_us", self.router.answer_age_hist());
        }
        if want("membership") {
            root.observe("membership", &self.membership.stats());
        }
        if want("interlink") {
            root.observe("interlink", &self.mesh.stats());
        }
        if want("fleet") {
            let leaks = self.leaks();
            let fl = root.child("fleet");
            fl.gauge("leak_router_open", leaks.router_open as f64);
            fl.gauge("leak_pipeline_pending", leaks.pipeline_pending as f64);
            fl.gauge("leak_rpcs_in_flight", leaks.rpcs_in_flight as f64);
            fl.gauge("leak_mesh_in_flight", leaks.mesh_in_flight as f64);
            let proxies = self.system.config().proxies;
            let pressure_max = (0..proxies)
                .map(|p| self.pressure(p).score())
                .fold(0.0, f64::max);
            fl.gauge("pressure_max", pressure_max);
            fl.gauge(
                "fenced_count",
                self.fenced.iter().filter(|&&f| f).count() as f64,
            );
            // Radio driven by a fenced proxy this epoch — the PR 6
            // invariant says this is identically zero; the scope
            // watches it.
            fl.gauge(
                "fenced_pumping",
                self.pump_log
                    .iter()
                    .filter(|(p, _, _)| self.fenced[*p])
                    .count() as f64,
            );
        }
        snap
    }

    /// Opens (once) the cross-proxy downlink channel `driver` uses to
    /// pull `sensor`, with a sequence namespace disjoint from the
    /// owner's (home sequences count up from zero, far below the
    /// foreign base) *and* from every earlier incarnation of any
    /// cross-proxy channel, so the sensor-side duplicate filter stays
    /// sound with multiple proxies — and rebuilt channels — talking to
    /// one sensor.
    fn ensure_foreign_channel(&mut self, driver: usize, sensor: u16) {
        if self.foreign.contains_key(&(driver, sensor)) {
            return;
        }
        let mut dl_cfg = self.system.config().reliability.downlink.clone();
        dl_cfg.seed ^= (driver as u64 + 1)
            .rotate_left(19)
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(sensor as u64);
        let loss = self.system.config().loss;
        let first_hop = if loss > 0.0 {
            LinkModel::new(
                LossProcess::Bernoulli(loss),
                self.rng.split(&format!("fleet-hop-{driver}-{sensor}")),
            )
        } else {
            LinkModel::perfect()
        };
        let mut chan = DownlinkChannel::new(dl_cfg, first_hop);
        chan.set_seq_namespace(self.next_foreign_seq_base);
        self.next_foreign_seq_base += 1 << 24;
        self.foreign.insert((driver, sensor), chan);
    }

    /// Pumps every live proxy's pipeline over its current sensor view:
    /// home/adopted sensors through their own channels, plus this
    /// proxy's cross-proxy channels for shed work.
    ///
    /// The borrow scaffolds are rebuilt per proxy on purpose: one
    /// sensor legitimately appears in TWO views per epoch — its
    /// owner's (home channel) and a shed-target's (cross-proxy
    /// channel) — so the node needs a fresh `&mut` per pumping proxy.
    /// Building every view in one pass would hand each node to exactly
    /// one proxy and silently starve shed queries whenever the owner
    /// is alive (i.e. always, under shedding).
    fn pump_fleet(&mut self, t: SimTime, faults: &FaultPlan) {
        let proxies = self.system.config().proxies;
        let assignment = self.system.assignment().to_vec();
        self.pump_log.clear();
        for p in 0..proxies {
            if faults.proxy_down(p, t) {
                continue;
            }
            if self.fenced[p] {
                // A fenced proxy owns nothing it can prove: it drives
                // no radio toward any sensor, but still pumps an empty
                // view so its pipeline's honest-expiry sweep runs.
                let mut empty: Vec<PumpSensor<'_>> = Vec::new();
                self.system.proxies[p].pump_queries_view(t, &mut empty);
                continue;
            }
            let mut node_refs: Vec<Option<&mut SensorNode>> =
                self.system.nodes.iter_mut().flatten().map(Some).collect();
            let mut chan_refs: Vec<Option<&mut DownlinkChannel>> =
                self.system.downlinks.iter_mut().flatten().map(Some).collect();
            let mut view: Vec<PumpSensor<'_>> = Vec::new();
            for (gid, &owner) in assignment.iter().enumerate() {
                if owner == p {
                    let taken = (node_refs[gid].take(), chan_refs[gid].take());
                    if let (Some(node), Some(chan)) = taken {
                        view.push(PumpSensor {
                            gid: presto_core::gid16(gid),
                            node,
                            chan,
                        });
                        self.pump_log.push((p, presto_core::gid16(gid), false));
                    }
                }
            }
            for ((fp, gid), chan) in self.foreign.iter_mut() {
                if *fp == p {
                    if let Some(node) = node_refs[*gid as usize].take() {
                        view.push(PumpSensor {
                            gid: *gid,
                            node,
                            chan,
                        });
                        self.pump_log.push((p, *gid, true));
                    }
                }
            }
            self.system.proxies[p].pump_queries_view(t, &mut view);
        }
    }

    /// Failover for a proxy the membership view declared Dead: its
    /// sensors re-home to the least-loaded Live survivors (cache warmed
    /// by an archive-backed recovery replay over the silent span — the
    /// same warm-up path gap repair uses), and its outstanding fleet
    /// queries resume at the adopters or fail honestly.
    fn handle_failover(&mut self, t: SimTime, dead: usize) {
        let proxies = self.system.config().proxies;
        let candidates: Vec<usize> = (0..proxies)
            .filter(|&p| p != dead && self.membership.health(p) == Health::Live)
            .collect();
        if !candidates.is_empty() {
            for gid in 0..self.system.total_sensors() {
                if self.system.assignment()[gid] != dead {
                    continue;
                }
                let least_loaded = candidates.iter().min_by_key(|&&p| {
                    self.system.assignment().iter().filter(|&&a| a == p).count()
                });
                let Some(&adopter) = least_loaded else { break };
                self.system.rehome_sensor(gid, adopter);
                self.rehomed += 1;
                // Warm the adopter: replay the span the fleet stopped
                // hearing (the gap tracker knows the last contiguous
                // instant) from the sensor's flash archive.
                let covered = self.system.gaps.covered_until(gid);
                self.system.gaps.request_recovery(gid, covered, t, t);
            }
        }
        // The dead proxy's cross-proxy channels die with its RAM, and
        // survivors' channels onto sensors they now *own* are
        // redundant.
        let assignment = self.system.assignment().to_vec();
        self.foreign
            .retain(|&(fp, gid), _| fp != dead && assignment[gid as usize] != fp);

        // Resume the dead proxy's outstanding fleet queries at the new
        // owners (or fail honestly when no deadline remains — the
        // router's expiry sweep handles those).
        for (ticket, query, deadline, entry) in self.router.on_proxy_dead(t, dead) {
            let gid = query.sensor() as usize;
            let serving = self.system.assignment()[gid];
            if serving == dead
                || self.system.faults().proxy_down(serving, t)
                || self.system.faults().proxy_down(entry, t)
            {
                continue;
            }
            self.router.mark_rerouted(t, ticket, serving);
            if serving == entry {
                let pt = self.system.proxies[serving].submit_query_with_deadline(
                    t,
                    query,
                    Some(deadline - t),
                );
                self.router.bind(ticket, serving, pt);
            } else {
                self.mesh.send(
                    entry,
                    serving,
                    FleetMsg::Forward {
                        ticket,
                        query,
                        deadline,
                        submitted_at: t,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_proxy::AnswerSource;
    use presto_sim::SimDuration;

    /// A small fleet with clean inter-links and fast proxy leases.
    fn small_fleet(proxies: usize, faults: FaultPlan) -> FleetDeployment {
        let mut cfg = FleetConfig {
            system: SystemConfig {
                proxies,
                sensors_per_proxy: 2,
                faults,
                ..SystemConfig::default()
            },
            ..FleetConfig::default()
        };
        cfg.interlink.link_chain = presto_net::GilbertElliott {
            p_gb: 0.0,
            p_bg: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        cfg.interlink.shared_chain = None;
        FleetDeployment::new(cfg)
    }

    fn run_epochs(fleet: &mut FleetDeployment, epochs: u64) -> Vec<FleetCompletion> {
        let mut out = Vec::new();
        for _ in 0..epochs {
            fleet.step_epoch();
            out.extend(fleet.take_completed());
        }
        out
    }

    #[test]
    fn local_queries_complete_through_the_fleet() {
        let mut fleet = small_fleet(2, FaultPlan::none());
        for _ in 0..(86_400 / 31) {
            fleet.step_epoch();
        }
        let t = fleet.now();
        let ticket = fleet.submit(
            0,
            PipelineQuery::Past {
                sensor: 0,
                from: t - SimDuration::from_hours(3),
                to: t - SimDuration::from_hours(2),
                tolerance: 0.05,
            },
            0.05,
        );
        let done = run_epochs(&mut fleet, 30);
        let c = done
            .iter()
            .find(|c| c.ticket == ticket)
            .expect("query must terminate");
        assert!(!c.forwarded);
        assert_ne!(c.answer.source(), AnswerSource::Failed);
        assert!(fleet.leaks().is_clean(), "{:?}", fleet.leaks());
    }

    #[test]
    fn hot_proxy_sheds_to_peers_and_answers_stay_real() {
        let mut fleet = small_fleet(3, FaultPlan::none());
        for _ in 0..(86_400 / 31) {
            fleet.step_epoch();
        }
        let t = fleet.now();
        // Flood proxy 0 with tight-tolerance PAST queries over distinct
        // windows (no coalescing): pressure builds, later submissions
        // shed.
        let mut tickets = Vec::new();
        for k in 0..40u64 {
            let from = t - SimDuration::from_hours(12) + SimDuration::from_mins(10) * k;
            tickets.push(fleet.submit(
                0,
                PipelineQuery::Past {
                    sensor: (k % 2) as u16,
                    from,
                    to: from + SimDuration::from_mins(9),
                    tolerance: 0.05,
                },
                0.05,
            ));
        }
        assert!(fleet.router.stats().shed > 0, "hot proxy never shed");
        let done = run_epochs(&mut fleet, 60);
        assert_eq!(done.len(), tickets.len(), "every ticket terminates");
        let forwarded_ok = done
            .iter()
            .filter(|c| c.forwarded && c.answer.source() == AnswerSource::Pulled)
            .count();
        assert!(forwarded_ok > 0, "no shed query completed with a real answer");
        assert!(fleet.foreign_channels() > 0, "no cross-proxy channel opened");
        assert!(fleet.leaks().is_clean(), "{:?}", fleet.leaks());
    }

    #[test]
    fn proxy_death_rehomes_sensors_and_resumes_queries() {
        // Proxy 1 dies at hour 4 and never returns.
        let faults = FaultPlan::none().with_proxy_crash(
            1,
            SimTime::from_hours(4),
            SimTime::from_hours(10_000),
        );
        let mut fleet = small_fleet(3, faults);
        let epoch = SimDuration::from_secs(31);
        let crash_epochs = SimDuration::from_hours(4).div_duration(epoch) + 1;
        for _ in 0..crash_epochs {
            fleet.step_epoch();
        }
        // Submit a query served by proxy 1 just before death is
        // *declared* (physical crash already happened).
        let t = fleet.now();
        let ticket = fleet.submit(
            1,
            PipelineQuery::Past {
                sensor: 2,
                from: t - SimDuration::from_hours(2),
                to: t - SimDuration::from_hours(1),
                tolerance: 0.05,
            },
            0.05,
        );
        let _ = ticket;
        // Run past the dead threshold + recovery.
        let done = run_epochs(&mut fleet, 60);
        assert!(fleet.rehomed_sensors() >= 2, "sensors never re-homed");
        assert_ne!(fleet.system.assignment()[2], 1);
        assert_ne!(fleet.system.assignment()[3], 1);
        // The pre-death ticket terminated (entry died with the proxy:
        // honest failure is the correct outcome here).
        assert_eq!(done.len(), 1);
        // Post-failover: queries for the dead proxy's sensors enter at
        // a survivor and complete with real answers.
        let t2 = fleet.now();
        let t2_ticket = fleet.submit(
            0,
            PipelineQuery::Past {
                sensor: 2,
                from: t2 - SimDuration::from_hours(2),
                to: t2 - SimDuration::from_hours(1),
                tolerance: 0.05,
            },
            0.05,
        );
        let done2 = run_epochs(&mut fleet, 40);
        let c = done2
            .iter()
            .find(|c| c.ticket == t2_ticket)
            .expect("post-failover query must terminate");
        assert_ne!(c.answer.source(), AnswerSource::Failed, "{c:?}");
        assert!(fleet.leaks().is_clean(), "{:?}", fleet.leaks());
    }
}
