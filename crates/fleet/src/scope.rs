//! Standard presto-scope configuration for a fleet deployment.
//!
//! [`FleetDeployment::telemetry_snapshot`](crate::FleetDeployment::telemetry_snapshot)
//! exports a stable tree of fleet-level paths (router counters, leak
//! gauges, pressure watermarks, answer-age histograms). This module
//! pins the canonical sampler/watchdog wiring over those paths so every
//! scenario watches the same health surface with the same names —
//! incidents from a partition run and a clean run are comparable
//! because both used [`fleet_scope_config`].

use presto_sim::SimDuration;
use presto_telemetry::{ScopeConfig, SeriesSpec, WatchdogRule};
use presto_telemetry::scope::{
    WD_ANSWER_AGE_P99, WD_FENCED_WHILE_SERVING, WD_LEAK_PROBE, WD_PRESSURE_WATERMARK,
    WD_SHED_EPISODE_WATERMARK, WD_STALE_CONFIDENT,
};

/// Feed path the scenario driver must push each epoch with the number
/// of confident-but-stale answers it observed (0 on a healthy epoch).
/// Drivers compute this from completions (they see ground truth); the
/// watchdog turns any growth into a [`WD_STALE_CONFIDENT`] incident.
pub const FEED_STALE_CONFIDENT: &str = "probe.stale_confident";

/// Tunable bounds for the standard fleet watchdogs.
#[derive(Debug, Clone)]
pub struct FleetScopeBounds {
    /// Upper bound on `fleet_router.answer_age_us.p99` (microseconds).
    pub answer_age_p99_us: f64,
    /// Upper bound on the worst per-proxy pressure score (pending
    /// queries dominate the score, so this is a queue-growth
    /// watermark, not a fraction).
    pub pressure_max: f64,
    /// Max shed-episode openings tolerated in a single epoch.
    pub shed_episodes_per_epoch: f64,
    /// Epochs a nonzero leak gauge may sit frozen before it is an
    /// incident (leaks drain or grow; a flat nonzero line is a leak).
    pub leak_stuck_epochs: u32,
}

impl Default for FleetScopeBounds {
    fn default() -> Self {
        FleetScopeBounds {
            // 45 minutes: generous against the re-predict cadence, so
            // only genuinely stale-serving fleets trip it.
            answer_age_p99_us: 45.0 * 60.0 * 1_000_000.0,
            pressure_max: 400.0,
            shed_episodes_per_epoch: 8.0,
            leak_stuck_epochs: 60,
        }
    }
}

/// The canonical scope wiring for [`crate::FleetDeployment`] runs.
///
/// Series cover the load/health trajectory (levels) and the work rate
/// (deltas over cumulative counters); rules encode the SLOs every PR so
/// far has promised: no stale-confident answers, bounded answer age,
/// no leaks, bounded pressure and shed flapping, and never pumping a
/// fenced proxy.
pub fn fleet_scope_config(bounds: &FleetScopeBounds) -> ScopeConfig {
    let series = vec![
        // Levels: the shape of the run.
        SeriesSpec::level("fleet.pressure_max"),
        SeriesSpec::level("fleet.fenced_count"),
        SeriesSpec::level("fleet.leak_router_open"),
        SeriesSpec::level("fleet.leak_pipeline_pending"),
        SeriesSpec::level("fleet.leak_rpcs_in_flight"),
        SeriesSpec::level("fleet.leak_mesh_in_flight"),
        SeriesSpec::level("fleet_router.latency_us.p99"),
        SeriesSpec::level("fleet_router.answer_age_us.p99"),
        SeriesSpec::level("trace.recorder_len"),
        // Deltas: per-epoch work and failure rates.
        SeriesSpec::delta("fleet_router.submitted"),
        SeriesSpec::delta("fleet_router.completed_local"),
        SeriesSpec::delta("fleet_router.completed_remote"),
        SeriesSpec::delta("fleet_router.shed"),
        SeriesSpec::delta("fleet_router.failed_deadline"),
        SeriesSpec::delta("fleet_router.failed_fenced"),
        SeriesSpec::delta("fleet_router.shed_episodes"),
        // Allocation pressure per phase (profiler.* is excluded from
        // the determinism fingerprint; the timeline is band-compared).
        SeriesSpec::delta("profiler.step_epoch_core.allocs"),
        SeriesSpec::delta("profiler.fleet_pump.allocs"),
        SeriesSpec::delta("profiler.fleet_collect.allocs"),
    ];
    let rules = vec![
        // The paper's core promise: confidence bounds are honest.
        WatchdogRule::still(WD_STALE_CONFIDENT, FEED_STALE_CONFIDENT),
        WatchdogRule::below(
            WD_ANSWER_AGE_P99,
            "fleet_router.answer_age_us.p99",
            bounds.answer_age_p99_us,
        ),
        // PR 6 invariant, as a live watchdog: a fenced proxy must never
        // pump (identically zero), and fenced admission failures only
        // accrete while a partition is actually fencing someone — the
        // Still rule is what attributes the mesh cut.
        WatchdogRule::below(WD_FENCED_WHILE_SERVING, "fleet.fenced_pumping", 0.0),
        WatchdogRule::still(WD_FENCED_WHILE_SERVING, "fleet_router.failed_fenced"),
        // Leak probes: a nonzero gauge frozen for an hour is a leak.
        WatchdogRule::stuck(
            WD_LEAK_PROBE,
            "fleet.leak_router_open",
            0.0,
            bounds.leak_stuck_epochs,
        ),
        WatchdogRule::stuck(
            WD_LEAK_PROBE,
            "fleet.leak_rpcs_in_flight",
            0.0,
            bounds.leak_stuck_epochs,
        ),
        WatchdogRule::stuck(
            WD_LEAK_PROBE,
            "fleet.leak_mesh_in_flight",
            0.0,
            bounds.leak_stuck_epochs,
        ),
        WatchdogRule::below(WD_PRESSURE_WATERMARK, "fleet.pressure_max", bounds.pressure_max),
        WatchdogRule::rate_below(
            WD_SHED_EPISODE_WATERMARK,
            "fleet_router.shed_episodes",
            bounds.shed_episodes_per_epoch,
        ),
    ];
    ScopeConfig {
        enabled: true,
        ring_capacity: 256,
        incident_capacity: 128,
        attribution_pad: SimDuration::from_mins(20),
        series,
        rules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_config_is_enabled_and_names_every_slo() {
        let cfg = fleet_scope_config(&FleetScopeBounds::default());
        assert!(cfg.enabled);
        assert!(cfg.series.len() >= 15);
        let names: Vec<&str> = cfg.rules.iter().map(|r| r.name).collect();
        for wd in [
            WD_STALE_CONFIDENT,
            WD_ANSWER_AGE_P99,
            WD_FENCED_WHILE_SERVING,
            WD_LEAK_PROBE,
            WD_PRESSURE_WATERMARK,
            WD_SHED_EPISODE_WATERMARK,
        ] {
            assert!(names.contains(&wd), "missing standard rule {wd}");
        }
    }
}
