//! The fleet router: admission control, shedding, and honest
//! termination for cross-proxy query traffic.
//!
//! Every user query enters the fleet at its **entry proxy** (where the
//! user is attached) and is *served* by whichever proxy currently owns
//! the work — normally the same proxy, a peer when the entry proxy is
//! hot enough to shed, an adopter after a failover. The router is a
//! pure state machine: the deployment feeds it per-proxy pressure
//! readings and pipeline completions, and it decides routing, tracks
//! one ticket per query, and guarantees exactly one terminal outcome —
//! a real answer, or an honest `Failed` (sigma ∞) by the query's
//! deadline plus a small collection grace. Late answers (a completion
//! crossing the mesh after the deadline fired) are dropped, never
//! double-reported.
//!
//! Shedding policy: a proxy is **hot** when its pressure score —
//! outstanding pipeline queries, plus weighted attempt-budget
//! saturation and downlink retry-budget depletion — exceeds the shed
//! threshold. Only archive-range queries (PAST, aggregate) shed: their
//! answers come from the sensor's flash archive, identical no matter
//! which proxy pulls them. NOW queries stay home, where the cache,
//! model replica, and freshness semantics live. A query sheds to the
//! least-pressured Live peer, and only when that peer is cooler by a
//! margin and enough deadline remains to pay the mesh round trip —
//! the deadline-versus-retry-budget trade from query–sensor matching.
//!
//! Hot is a *latched episode*, not an instantaneous comparison. The
//! deployment feeds an epoch-level pressure reading into
//! [`FleetRouter::observe_pressures`], which smooths each proxy's score
//! with an EWMA; a proxy leaves the hot state only when the smoothed
//! score falls a hysteresis margin below the shed threshold, and may
//! start a *new* episode only after a refractory window since the last
//! one began. A raw intra-epoch burst can still open an episode at
//! routing time (queues build faster than epochs tick), but a proxy
//! oscillating around the threshold cannot flap the shedding decision
//! every submission.

use std::collections::BTreeMap;

use presto_proxy::{
    Answer, AnswerSource, CompletedQuery, PastAnswer, PipelineAnswer, PipelineQuery, QueryClass,
    QuerySensorMatcher,
};
use presto_sim::{SimDuration, SimTime};
use presto_telemetry::{CompletionCause, LogHistogram, QueryTracer, SpanEvent};

/// Router parameters.
#[derive(Clone, Debug)]
pub struct FleetRouterConfig {
    /// Master switch: off reproduces the pre-fleet behavior (every
    /// query served where it enters), for A/B experiments.
    pub shed_enabled: bool,
    /// Pressure score above which a proxy sheds range queries.
    pub shed_threshold: f64,
    /// How much cooler (score units) a peer must be to receive a shed.
    pub shed_margin: f64,
    /// Latency classes for per-query deadlines (query–sensor
    /// matching); empty falls back to `default_deadline` for every
    /// query.
    pub latency_classes: Vec<QueryClass>,
    /// Deadline when no latency class is registered.
    pub default_deadline: SimDuration,
    /// Minimum remaining deadline for a forward to be worth the mesh
    /// round trip; queries with less stay home.
    pub forward_slack: SimDuration,
    /// Collection grace past the deadline before the router fails a
    /// ticket itself (covers pipeline completion + mesh return time).
    pub expiry_grace: SimDuration,
    /// EWMA weight for the epoch-level pressure smoothing (1.0 =
    /// no smoothing, track the raw score exactly).
    pub ewma_alpha: f64,
    /// Hysteresis: a hot proxy cools only when its smoothed score
    /// drops this far *below* the shed threshold.
    pub shed_exit_margin: f64,
    /// Refractory window: minimum spacing between the starts of two
    /// shed episodes on the same proxy (anti-flap).
    pub shed_episode_window: SimDuration,
    /// Record a fleet-level trace span per ticket (admission, shed,
    /// forward, re-home, fencing, terminal verdict). On by default —
    /// the fleet tier is deployment-scale, not hot-path, and the
    /// flight recorder is the partition post-mortem record.
    pub trace: bool,
    /// Bound on finished fleet traces awaiting collection (evictions
    /// counted, never silent).
    pub trace_finished_cap: usize,
    /// Bound on the fleet flight recorder (evictions counted).
    pub trace_recorder_cap: usize,
}

impl Default for FleetRouterConfig {
    fn default() -> Self {
        FleetRouterConfig {
            shed_enabled: true,
            shed_threshold: 12.0,
            shed_margin: 4.0,
            latency_classes: Vec::new(),
            default_deadline: SimDuration::from_mins(10),
            forward_slack: SimDuration::from_mins(2),
            expiry_grace: SimDuration::from_mins(3),
            ewma_alpha: 0.4,
            shed_exit_margin: 3.0,
            shed_episode_window: SimDuration::from_mins(2),
            trace: true,
            trace_finished_cap: presto_telemetry::trace::FINISHED_CAP,
            trace_recorder_cap: presto_telemetry::trace::RECORDER_CAP,
        }
    }
}

/// One proxy's admission-control reading, computed by the deployment
/// each submission from live pipeline state.
#[derive(Clone, Copy, Debug)]
pub struct ProxyPressure {
    /// Outstanding pipeline queries.
    pub pending: usize,
    /// Fraction of the per-epoch attempt budget the last pump spent
    /// (1.0 = saturated).
    pub saturation: f64,
    /// Downlink retry-budget depletion across the channels the proxy
    /// drives (0 = full buckets, 1 = dry).
    pub depletion: f64,
    /// Membership grade is Live.
    pub live: bool,
}

impl ProxyPressure {
    /// Scalar pressure score. Pending queries dominate; saturation and
    /// budget depletion break ties and catch a proxy whose queue is
    /// short only because everything is stuck in retransmission.
    pub fn score(&self) -> f64 {
        self.pending as f64 + 8.0 * self.saturation + 4.0 * self.depletion
    }
}

/// Where the router sent a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteAction {
    /// Submit into this proxy's pipeline directly (it is the entry
    /// proxy).
    Local {
        /// The serving proxy.
        proxy: usize,
    },
    /// Forward over the mesh to this proxy (shed, or re-homed owner).
    Forward {
        /// The serving proxy.
        proxy: usize,
    },
}

/// A routed query's terminal record.
#[derive(Clone, Debug)]
pub struct FleetCompletion {
    /// The fleet ticket.
    pub ticket: u64,
    /// The query as submitted.
    pub query: PipelineQuery,
    /// Entry proxy (where the user attached).
    pub entry: usize,
    /// Proxy that produced the terminal answer (== entry for router
    /// expiry failures).
    pub served_by: usize,
    /// True when the query crossed the mesh (shed or failover resume).
    pub forwarded: bool,
    /// The answer.
    pub answer: PipelineAnswer,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Terminal time at the router.
    pub completed_at: SimTime,
    /// How stale the answer's underlying data is at the terminal:
    /// `completed_at` minus the freshest data instant the answer
    /// reflects. `None` for failures and empty aggregates — an honest
    /// "no data" rather than a fabricated age.
    pub answer_age: Option<SimDuration>,
}

/// Router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetRouterStats {
    /// Queries routed.
    pub submitted: u64,
    /// Queries shed from a hot entry proxy to a peer.
    pub shed: u64,
    /// Forwards issued because the serving proxy differed from entry
    /// (re-homed sensors, failover resumes).
    pub rerouted: u64,
    /// Terminals answered by the entry proxy's own pipeline.
    pub completed_local: u64,
    /// Terminals whose answer crossed the mesh back.
    pub completed_remote: u64,
    /// Tickets the router failed honestly at deadline + grace.
    pub failed_deadline: u64,
    /// Tickets failed because their entry proxy died (no one left to
    /// deliver the answer to).
    pub failed_entry_dead: u64,
    /// Outstanding queries re-submitted to an adopter after their
    /// serving proxy died.
    pub resumed: u64,
    /// Late completions dropped after a terminal was already recorded.
    pub late_dropped: u64,
    /// Shed episodes opened (a proxy newly latched hot).
    pub shed_episodes: u64,
    /// Tickets failed because their entry or serving proxy was fenced
    /// (up but outside the membership quorum).
    pub failed_fenced: u64,
}

impl FleetRouterStats {
    /// Folds another router's counters into this one (all additive) —
    /// the aggregation a multi-fleet snapshot needs.
    pub fn merge(&mut self, other: &FleetRouterStats) {
        self.submitted += other.submitted;
        self.shed += other.shed;
        self.rerouted += other.rerouted;
        self.completed_local += other.completed_local;
        self.completed_remote += other.completed_remote;
        self.failed_deadline += other.failed_deadline;
        self.failed_entry_dead += other.failed_entry_dead;
        self.resumed += other.resumed;
        self.late_dropped += other.late_dropped;
        self.shed_episodes += other.shed_episodes;
        self.failed_fenced += other.failed_fenced;
    }
}

presto_telemetry::observe_counters!(FleetRouterStats {
    submitted,
    shed,
    rerouted,
    completed_local,
    completed_remote,
    failed_deadline,
    failed_entry_dead,
    resumed,
    late_dropped,
    shed_episodes,
    failed_fenced,
});

#[derive(Clone, Debug)]
struct Ticket {
    query: PipelineQuery,
    entry: usize,
    serving: usize,
    forwarded: bool,
    submitted_at: SimTime,
    deadline: SimTime,
}

/// The fleet router.
pub struct FleetRouter {
    config: FleetRouterConfig,
    matcher: QuerySensorMatcher,
    next_ticket: u64,
    open: BTreeMap<u64, Ticket>,
    /// (serving proxy, its pipeline ticket) → fleet ticket.
    by_proxy_ticket: BTreeMap<(usize, u64), u64>,
    completed: Vec<FleetCompletion>,
    /// EWMA-smoothed pressure score per proxy (grown on demand).
    smoothed: Vec<f64>,
    /// Latched shed state per proxy.
    hot: Vec<bool>,
    /// When each proxy's most recent shed episode opened.
    last_episode: Vec<Option<SimTime>>,
    stats: FleetRouterStats,
    /// Fleet-level trace spans (no-op unless [`FleetRouterConfig::trace`]).
    tracer: QueryTracer,
    /// End-to-end latency of every terminal, in microseconds.
    latency: LogHistogram,
    /// Serve-time data staleness of answers that carried data.
    answer_age: LogHistogram,
}

impl FleetRouter {
    /// Creates a router.
    pub fn new(config: FleetRouterConfig) -> Self {
        let mut matcher = QuerySensorMatcher::new();
        for class in &config.latency_classes {
            matcher.register(*class);
        }
        let tracer = QueryTracer::with_caps(
            config.trace,
            config.trace_finished_cap,
            config.trace_recorder_cap,
        );
        FleetRouter {
            matcher,
            next_ticket: 1,
            open: BTreeMap::new(),
            by_proxy_ticket: BTreeMap::new(),
            completed: Vec::new(),
            smoothed: Vec::new(),
            hot: Vec::new(),
            last_episode: Vec::new(),
            stats: FleetRouterStats::default(),
            tracer,
            latency: LogHistogram::new(),
            answer_age: LogHistogram::new(),
            config,
        }
    }

    fn ensure_proxy(&mut self, proxy: usize) {
        if self.smoothed.len() <= proxy {
            self.smoothed.resize(proxy + 1, 0.0);
            self.hot.resize(proxy + 1, false);
            self.last_episode.resize(proxy + 1, None);
        }
    }

    /// Opens a shed episode for `proxy` if it is not already hot, its
    /// score clears the threshold, and the refractory window since the
    /// last episode has passed.
    fn try_enter_hot(&mut self, t: SimTime, proxy: usize, score: f64) {
        self.ensure_proxy(proxy);
        if self.hot[proxy] || score < self.config.shed_threshold {
            return;
        }
        if let Some(opened) = self.last_episode[proxy] {
            if t < opened + self.config.shed_episode_window {
                return;
            }
        }
        self.hot[proxy] = true;
        self.last_episode[proxy] = Some(t);
        self.stats.shed_episodes += 1;
    }

    /// Feeds one epoch's pressure readings: updates every proxy's EWMA,
    /// cools proxies whose smoothed score fell below the exit band
    /// (threshold minus hysteresis margin), and opens episodes for
    /// proxies whose *smoothed* score clears the threshold. Call once
    /// per epoch from the deployment.
    pub fn observe_pressures(&mut self, t: SimTime, pressures: &[ProxyPressure]) {
        self.ensure_proxy(pressures.len().saturating_sub(1));
        let alpha = self.config.ewma_alpha;
        for (p, reading) in pressures.iter().enumerate() {
            let s = alpha * reading.score() + (1.0 - alpha) * self.smoothed[p];
            self.smoothed[p] = s;
            if self.hot[p] {
                if s <= self.config.shed_threshold - self.config.shed_exit_margin {
                    self.hot[p] = false;
                }
            } else {
                self.try_enter_hot(t, p, s);
            }
        }
    }

    /// Whether `proxy` is currently inside a shed episode.
    pub fn is_hot(&self, proxy: usize) -> bool {
        self.hot.get(proxy).copied().unwrap_or(false)
    }

    /// Counters.
    pub fn stats(&self) -> FleetRouterStats {
        self.stats
    }

    /// The fleet-level trace collector.
    pub fn tracer(&self) -> &QueryTracer {
        &self.tracer
    }

    /// Mutable access to the trace collector (draining finished traces).
    pub fn tracer_mut(&mut self) -> &mut QueryTracer {
        &mut self.tracer
    }

    /// The fleet ticket currently bound to `(proxy, proxy_ticket)`, if
    /// any — the splice lookup the deployment uses to merge a finished
    /// pipeline trace into its fleet trace *before* the binding is
    /// consumed by [`FleetRouter::on_pipeline_completion`].
    pub fn fleet_ticket(&self, proxy: usize, proxy_ticket: u64) -> Option<u64> {
        self.by_proxy_ticket.get(&(proxy, proxy_ticket)).copied()
    }

    /// End-to-end latency of every terminal (microsecond histogram).
    pub fn latency_hist(&self) -> &LogHistogram {
        &self.latency
    }

    /// Serve-time data staleness of answers that carried data
    /// (microsecond histogram).
    pub fn answer_age_hist(&self) -> &LogHistogram {
        &self.answer_age
    }

    /// Closes a ticket's trace and feeds the fleet histograms: every
    /// terminal records its end-to-end latency; answers carrying data
    /// record their serve-time staleness too.
    fn close_trace(
        &mut self,
        ticket: u64,
        t: SimTime,
        cause: CompletionCause,
        latency: SimDuration,
        answer_age: Option<SimDuration>,
        sigma: f64,
    ) {
        // Age coverage is exactly the Ok set: a `Failed` or
        // `FailedFenced` terminal reflects no data and carries no age,
        // whatever an upstream completion site stamped (normalized here
        // so every failure path — expiry, fencing, unreachable, dead
        // proxy, failed pipeline answer — is consistent by
        // construction).
        let answer_age = if cause == CompletionCause::Ok {
            answer_age
        } else {
            None
        };
        self.latency.record_duration(latency);
        if let Some(age) = answer_age {
            self.answer_age.record_duration(age);
        }
        self.tracer.finish(ticket, t, cause, answer_age, sigma);
    }

    /// Tickets awaiting a terminal (leak probe: zero once every
    /// submitted query completed or expired).
    pub fn open_tickets(&self) -> usize {
        self.open.len()
    }

    /// The per-query deadline for a tolerance, from the latency
    /// classes (falls back to the configured default).
    pub fn deadline_for(&self, tolerance: f64) -> SimDuration {
        self.matcher
            .deadline_for(tolerance)
            .unwrap_or(self.config.default_deadline)
    }

    /// Opens and immediately fails a ticket whose entry proxy is
    /// unreachable at submission (the user's connection has nowhere to
    /// land — real deployments refuse the connection; the fleet
    /// records the honest failure so workload accounting stays exact).
    pub fn fail_unreachable(&mut self, t: SimTime, entry: usize, query: PipelineQuery) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.submitted += 1;
        self.stats.failed_entry_dead += 1;
        self.tracer.record(ticket, t, SpanEvent::Submitted);
        self.tracer.record(ticket, t, SpanEvent::Unreachable);
        self.close_trace(
            ticket,
            t,
            CompletionCause::Failed,
            SimDuration::ZERO,
            None,
            f64::INFINITY,
        );
        self.completed.push(FleetCompletion {
            ticket,
            query,
            entry,
            served_by: entry,
            forwarded: false,
            answer: Self::failed_answer(&query),
            submitted_at: t,
            completed_at: t,
            answer_age: None,
        });
        ticket
    }

    /// Opens and immediately fails a ticket whose entry or serving
    /// proxy is fenced — up, but on the minority side of a mesh
    /// partition. A fenced proxy must not accept new work it could
    /// answer divergently from the quorum side, so the fleet refuses
    /// honestly at admission instead of leaking a ticket into a
    /// pipeline nobody trusts.
    pub fn fail_fenced(&mut self, t: SimTime, entry: usize, query: PipelineQuery) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.submitted += 1;
        self.stats.failed_fenced += 1;
        self.tracer.record(ticket, t, SpanEvent::Submitted);
        self.tracer.record(ticket, t, SpanEvent::FencedReject);
        self.close_trace(
            ticket,
            t,
            CompletionCause::FailedFenced,
            SimDuration::ZERO,
            None,
            f64::INFINITY,
        );
        self.completed.push(FleetCompletion {
            ticket,
            query,
            entry,
            served_by: entry,
            forwarded: false,
            answer: Self::failed_answer(&query),
            submitted_at: t,
            completed_at: t,
            answer_age: None,
        });
        ticket
    }

    /// Routes one query: opens a ticket and decides where it runs.
    /// `pressures[p]` is proxy `p`'s current reading; `serving` is the
    /// sensor's current owner per the assignment; `range_archived`
    /// gates shedding on the time-range index saying *some* proxy
    /// holds data overlapping the window (a range nobody archived is
    /// not worth a mesh round trip). Returns `(ticket, deadline,
    /// action)`; the caller performs the submit or mesh send and then
    /// calls [`FleetRouter::bind`] when a pipeline ticket exists.
    #[allow(clippy::too_many_arguments)]
    pub fn route(
        &mut self,
        t: SimTime,
        entry: usize,
        serving: usize,
        query: PipelineQuery,
        tolerance: f64,
        pressures: &[ProxyPressure],
        range_archived: bool,
    ) -> (u64, SimTime, RouteAction) {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.stats.submitted += 1;
        self.tracer.record(ticket, t, SpanEvent::Submitted);
        let deadline = t + self.deadline_for(tolerance);

        let sheddable = matches!(
            query,
            PipelineQuery::Past { .. } | PipelineQuery::Aggregate { .. }
        );
        let mut target = serving;
        let mut shed = false;
        if self.config.shed_enabled
            && sheddable
            && range_archived
            && deadline - t > self.config.forward_slack
        {
            // A raw intra-epoch burst may open an episode right here —
            // queues can outrun the epoch-level smoothing — but the
            // *decision* reads the latched state, so a score jittering
            // around the threshold cannot flap it per submission.
            if let Some(reading) = pressures.get(serving) {
                self.try_enter_hot(t, serving, reading.score());
            }
        }
        if self.config.shed_enabled
            && sheddable
            && range_archived
            && deadline - t > self.config.forward_slack
            && self.is_hot(serving)
            && serving < pressures.len()
        {
            let coolest = pressures
                .iter()
                .enumerate()
                .filter(|&(p, r)| p != serving && r.live)
                .min_by(|a, b| a.1.score().total_cmp(&b.1.score()));
            if let Some((peer, reading)) = coolest {
                if reading.score() + self.config.shed_margin <= pressures[serving].score() {
                    target = peer;
                    shed = true;
                    self.stats.shed += 1;
                    self.tracer.record(
                        ticket,
                        t,
                        SpanEvent::Shed {
                            from: serving,
                            to: peer,
                        },
                    );
                }
            }
        }

        let forwarded = target != entry;
        if forwarded && !shed {
            self.stats.rerouted += 1;
        }
        if forwarded {
            self.tracer.record(
                ticket,
                t,
                SpanEvent::Forwarded {
                    from: entry,
                    to: target,
                },
            );
        }
        self.open.insert(
            ticket,
            Ticket {
                query,
                entry,
                serving: target,
                forwarded,
                submitted_at: t,
                deadline,
            },
        );
        let action = if forwarded {
            RouteAction::Forward { proxy: target }
        } else {
            RouteAction::Local { proxy: target }
        };
        (ticket, deadline, action)
    }

    /// Records the pipeline ticket a fleet ticket runs under at its
    /// serving proxy (on local submission, or when a Forward is
    /// adopted).
    pub fn bind(&mut self, ticket: u64, proxy: usize, proxy_ticket: u64) {
        if let Some(tk) = self.open.get_mut(&ticket) {
            tk.serving = proxy;
            self.by_proxy_ticket.insert((proxy, proxy_ticket), ticket);
        }
    }

    /// Feeds one pipeline completion from `proxy`. When the completion
    /// belongs to a fleet ticket served where it entered, the terminal
    /// is recorded here and `None` returns; when the answer must cross
    /// the mesh home, the `(ticket, entry)` pair returns and the
    /// caller sends a [`crate::FleetMsg::Completion`].
    pub fn on_pipeline_completion(
        &mut self,
        t: SimTime,
        proxy: usize,
        completion: &CompletedQuery,
    ) -> Option<(u64, usize)> {
        let Some(ticket) = self.by_proxy_ticket.remove(&(proxy, completion.id)) else {
            // No binding: the router already expired the ticket (and
            // dropped its binding), or the proxy's pipeline was reset
            // since. Either way this answer has no one waiting.
            self.stats.late_dropped += 1;
            return None;
        };
        let Some(tk) = self.open.get(&ticket) else {
            // The router already expired this ticket (late completion).
            self.stats.late_dropped += 1;
            return None;
        };
        if tk.entry == proxy {
            self.terminal(t, ticket, proxy, completion.answer.clone());
            None
        } else {
            Some((ticket, tk.entry))
        }
    }

    /// Feeds a Completion message that arrived back at the entry proxy.
    pub fn on_completion_msg(&mut self, t: SimTime, ticket: u64, answer: PipelineAnswer) {
        if !self.open.contains_key(&ticket) {
            self.stats.late_dropped += 1;
            return;
        }
        let serving = self.open[&ticket].serving;
        self.terminal(t, ticket, serving, answer);
    }

    fn terminal(&mut self, t: SimTime, ticket: u64, served_by: usize, answer: PipelineAnswer) {
        let Some(tk) = self.open.remove(&ticket) else {
            // Callers check membership, but a double completion must not
            // crash the router: count it as a late arrival and move on.
            self.stats.late_dropped += 1;
            return;
        };
        if tk.forwarded {
            self.stats.completed_remote += 1;
        } else {
            self.stats.completed_local += 1;
        }
        let answer_age = answer.age_at(t);
        let cause = if answer.source() == AnswerSource::Failed {
            CompletionCause::Failed
        } else {
            CompletionCause::Ok
        };
        self.close_trace(
            ticket,
            t,
            cause,
            t - tk.submitted_at,
            answer_age,
            answer_sigma(&answer),
        );
        self.completed.push(FleetCompletion {
            ticket,
            query: tk.query,
            entry: tk.entry,
            served_by,
            forwarded: tk.forwarded,
            answer,
            submitted_at: tk.submitted_at,
            completed_at: t,
            answer_age,
        });
    }

    /// The honest failure answer for a query (mirrors the pipeline's:
    /// sigma ∞ scalars, empty Failed series).
    fn failed_answer(query: &PipelineQuery) -> PipelineAnswer {
        match query {
            PipelineQuery::Now { .. } | PipelineQuery::Aggregate { .. } => {
                PipelineAnswer::Scalar(Answer {
                    value: f64::NAN,
                    sigma: f64::INFINITY,
                    source: AnswerSource::Failed,
                    latency: SimDuration::ZERO,
                    data_through: None,
                })
            }
            PipelineQuery::Past { .. } => PipelineAnswer::Series(PastAnswer {
                samples: Vec::new(),
                source: AnswerSource::Failed,
                latency: SimDuration::ZERO,
            }),
        }
    }

    /// Fails every ticket past its deadline plus the collection grace:
    /// queries whose forward the mesh dropped, whose completion died on
    /// the way home, or whose serving proxy silently vanished all
    /// terminate honestly here.
    pub fn expire(&mut self, t: SimTime) {
        let grace = self.config.expiry_grace;
        let overdue: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, tk)| t >= tk.deadline + grace)
            .map(|(&id, _)| id)
            .collect();
        for ticket in overdue {
            let Some(tk) = self.open.remove(&ticket) else { continue };
            self.by_proxy_ticket.retain(|_, &mut v| v != ticket);
            self.stats.failed_deadline += 1;
            self.close_trace(
                ticket,
                t,
                CompletionCause::Failed,
                t - tk.submitted_at,
                None,
                f64::INFINITY,
            );
            self.completed.push(FleetCompletion {
                ticket,
                query: tk.query,
                entry: tk.entry,
                served_by: tk.entry,
                forwarded: tk.forwarded,
                answer: Self::failed_answer(&tk.query),
                submitted_at: tk.submitted_at,
                completed_at: t,
                answer_age: None,
            });
        }
    }

    /// Handles a proxy death declaration: tickets whose *entry* died
    /// fail honestly (no one is attached to receive the answer);
    /// tickets whose *serving* proxy died with deadline remaining are
    /// returned for resumption at the sensor's new owner — the caller
    /// re-submits or re-forwards and then [`FleetRouter::bind`]s. The
    /// dead proxy's pipeline-ticket bindings are dropped either way
    /// (its pipeline RAM is gone).
    pub fn on_proxy_dead(
        &mut self,
        t: SimTime,
        dead: usize,
    ) -> Vec<(u64, PipelineQuery, SimTime, usize)> {
        self.by_proxy_ticket.retain(|&(p, _), _| p != dead);
        let affected: Vec<u64> = self
            .open
            .iter()
            .filter(|(_, tk)| tk.entry == dead || tk.serving == dead)
            .map(|(&id, _)| id)
            .collect();
        let mut resume = Vec::new();
        for ticket in affected {
            let Some(tk) = self.open.get(&ticket).cloned() else { continue };
            if tk.entry == dead {
                self.open.remove(&ticket);
                self.stats.failed_entry_dead += 1;
                self.close_trace(
                    ticket,
                    t,
                    CompletionCause::Failed,
                    t - tk.submitted_at,
                    None,
                    f64::INFINITY,
                );
                self.completed.push(FleetCompletion {
                    ticket,
                    query: tk.query,
                    entry: tk.entry,
                    served_by: tk.entry,
                    forwarded: tk.forwarded,
                    answer: Self::failed_answer(&tk.query),
                    submitted_at: tk.submitted_at,
                    completed_at: t,
                    answer_age: None,
                });
            } else if tk.deadline > t {
                // `resumed` is counted when the caller actually
                // re-routes ([`FleetRouter::mark_rerouted`]) — a ticket
                // with no adopter available expires instead.
                resume.push((ticket, tk.query, tk.deadline, tk.entry));
            }
            // Serving died with no deadline left: expire() fails it.
        }
        resume
    }

    /// Marks a resumed ticket as re-forwarded to a new serving proxy
    /// (mesh path; [`FleetRouter::bind`] fires on adoption).
    pub fn mark_rerouted(&mut self, t: SimTime, ticket: u64, proxy: usize) {
        if let Some(tk) = self.open.get_mut(&ticket) {
            tk.serving = proxy;
            tk.forwarded = true;
            self.stats.resumed += 1;
            self.tracer
                .record(ticket, t, SpanEvent::Rerouted { to: proxy });
        }
    }

    /// Drains terminals recorded since the last call.
    pub fn take_completed(&mut self) -> Vec<FleetCompletion> {
        std::mem::take(&mut self.completed)
    }
}

/// The confidence a trace records for an answer: the scalar's sigma,
/// zero for a series (raw samples carry no model error).
fn answer_sigma(answer: &PipelineAnswer) -> f64 {
    match answer {
        PipelineAnswer::Scalar(a) => a.sigma,
        PipelineAnswer::Series(_) => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn past(sensor: u16) -> PipelineQuery {
        PipelineQuery::Past {
            sensor,
            from: SimTime::from_hours(1),
            to: SimTime::from_hours(2),
            tolerance: 0.2,
        }
    }

    fn cool() -> ProxyPressure {
        ProxyPressure {
            pending: 0,
            saturation: 0.0,
            depletion: 0.0,
            live: true,
        }
    }

    fn hot(pending: usize) -> ProxyPressure {
        ProxyPressure {
            pending,
            saturation: 1.0,
            depletion: 0.5,
            live: true,
        }
    }

    #[test]
    fn cool_proxy_serves_locally() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let (ticket, _, action) =
            r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[cool(), cool()], true);
        assert_eq!(action, RouteAction::Local { proxy: 0 });
        assert_eq!(r.open_tickets(), 1);
        r.bind(ticket, 0, 77);
        let done = CompletedQuery {
            id: 77,
            query: past(1),
            answer: FleetRouter::failed_answer(&past(1)),
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(31),
        };
        assert!(r.on_pipeline_completion(SimTime::from_secs(31), 0, &done).is_none());
        assert_eq!(r.take_completed().len(), 1);
        assert_eq!(r.open_tickets(), 0);
        assert_eq!(r.stats().completed_local, 1);
    }

    #[test]
    fn hot_proxy_sheds_range_queries_to_the_coolest_live_peer() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let pressures = [hot(20), hot(9), cool()];
        let (_, _, action) = r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &pressures, true);
        assert_eq!(action, RouteAction::Forward { proxy: 2 });
        assert_eq!(r.stats().shed, 1);
        // NOW queries never shed.
        let now_q = PipelineQuery::Now {
            sensor: 1,
            tolerance: 0.2,
        };
        let (_, _, action) = r.route(SimTime::ZERO, 0, 0, now_q, 0.2, &pressures, true);
        assert_eq!(action, RouteAction::Local { proxy: 0 });
        // Nor does anything shed when the range is archived nowhere.
        let (_, _, action) = r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &pressures, false);
        assert_eq!(action, RouteAction::Local { proxy: 0 });
        assert_eq!(r.stats().shed, 1);
    }

    #[test]
    fn dead_peers_and_thin_margins_block_shedding() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        // Only peer is not Live: stay home.
        let dead_peer = ProxyPressure {
            live: false,
            ..cool()
        };
        let (_, _, action) = r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[hot(20), dead_peer], true);
        assert_eq!(action, RouteAction::Local { proxy: 0 });
        // Peer barely cooler than the margin: stay home.
        let (_, _, action) =
            r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[hot(20), hot(19)], true);
        assert_eq!(action, RouteAction::Local { proxy: 0 });
    }

    #[test]
    fn expiry_fails_honestly_and_drops_late_completions() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let (ticket, deadline, _) =
            r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[cool()], true);
        r.bind(ticket, 0, 5);
        let grace = FleetRouterConfig::default().expiry_grace;
        r.expire(deadline + grace);
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].answer.source(), AnswerSource::Failed);
        match &done[0].answer {
            PipelineAnswer::Series(a) => assert!(a.samples.is_empty()),
            PipelineAnswer::Scalar(a) => assert!(a.sigma.is_infinite()),
        }
        assert_eq!(r.open_tickets(), 0);
        // The pipeline's own completion arrives later: dropped.
        let late = CompletedQuery {
            id: 5,
            query: past(1),
            answer: FleetRouter::failed_answer(&past(1)),
            submitted_at: SimTime::ZERO,
            completed_at: deadline + grace + SimDuration::from_secs(31),
        };
        assert!(r
            .on_pipeline_completion(deadline + grace + SimDuration::from_secs(31), 0, &late)
            .is_none());
        assert_eq!(r.stats().late_dropped, 1);
        assert_eq!(r.take_completed().len(), 0, "no double terminal");
    }

    #[test]
    fn remote_completion_round_trip() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let (ticket, _, action) =
            r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[hot(20), cool()], true);
        assert_eq!(action, RouteAction::Forward { proxy: 1 });
        r.bind(ticket, 1, 3);
        // The adopter completes: the answer must cross home.
        let done = CompletedQuery {
            id: 3,
            query: past(1),
            answer: FleetRouter::failed_answer(&past(1)),
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(62),
        };
        let back = r.on_pipeline_completion(SimTime::from_secs(62), 1, &done);
        assert_eq!(back, Some((ticket, 0)));
        assert_eq!(r.open_tickets(), 1, "terminal waits for the mesh return");
        r.on_completion_msg(SimTime::from_secs(93), ticket, done.answer.clone());
        let out = r.take_completed();
        assert_eq!(out.len(), 1);
        assert!(out[0].forwarded);
        assert_eq!(out[0].served_by, 1);
        assert_eq!(r.stats().completed_remote, 1);
    }

    #[test]
    fn proxy_death_fails_entry_tickets_and_resumes_serving_tickets() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        // Ticket A: entered and served at 1 (will die with it).
        let (a, _, _) = r.route(SimTime::ZERO, 1, 1, past(3), 0.2, &[cool(), cool()], true);
        r.bind(a, 1, 10);
        // Ticket B: entered at 0, shed to 1 (resumes elsewhere).
        let (b, _, action) =
            r.route(SimTime::ZERO, 0, 0, past(1), 0.2, &[hot(20), cool()], true);
        assert_eq!(action, RouteAction::Forward { proxy: 1 });
        r.bind(b, 1, 11);
        let resume = r.on_proxy_dead(SimTime::from_secs(31), 1);
        assert_eq!(resume.len(), 1);
        assert_eq!(resume[0].0, b);
        assert_eq!(r.stats().failed_entry_dead, 1);
        assert_eq!(r.stats().resumed, 0, "counted only when actually re-routed");
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].ticket, a);
        assert_eq!(done[0].answer.source(), AnswerSource::Failed);
        // B re-binds at its adopter and completes normally.
        r.mark_rerouted(SimTime::from_secs(31), b, 0);
        assert_eq!(r.stats().resumed, 1);
        r.bind(b, 0, 12);
        let done2 = CompletedQuery {
            id: 12,
            query: past(1),
            answer: FleetRouter::failed_answer(&past(1)),
            submitted_at: SimTime::ZERO,
            completed_at: SimTime::from_secs(93),
        };
        assert!(r.on_pipeline_completion(SimTime::from_secs(93), 0, &done2).is_none());
        assert_eq!(r.take_completed().len(), 1);
        assert_eq!(r.open_tickets(), 0);
    }

    fn pressure(pending: usize) -> ProxyPressure {
        ProxyPressure {
            pending,
            saturation: 0.0,
            depletion: 0.0,
            live: true,
        }
    }

    #[test]
    fn oscillating_pressure_sheds_at_most_once_per_episode_window() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let cfg = FleetRouterConfig::default();
        let epoch = SimDuration::from_secs(31);
        // Raw score flips between well above and well below the
        // threshold every epoch — the worst flapping input.
        let mut episode_opens = Vec::new();
        let mut last_count = 0;
        for e in 0..40u64 {
            let t = SimTime::ZERO + epoch * e;
            let raw = if e % 2 == 0 { 30 } else { 0 };
            r.observe_pressures(t, &[pressure(raw), pressure(0)]);
            if r.stats().shed_episodes > last_count {
                last_count = r.stats().shed_episodes;
                episode_opens.push(t);
            }
        }
        assert!(
            episode_opens.len() >= 2,
            "the input must actually open episodes for the bound to mean anything"
        );
        for pair in episode_opens.windows(2) {
            assert!(
                pair[1] - pair[0] >= cfg.shed_episode_window,
                "episodes opened {:?} apart, inside the {:?} refractory window",
                pair[1] - pair[0],
                cfg.shed_episode_window
            );
        }
    }

    #[test]
    fn sustained_heat_latches_within_bounded_epochs_and_cools_with_hysteresis() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let epoch = SimDuration::from_secs(31);
        // Sustained raw 30 (alpha 0.4): smoothed hits 12 on the first
        // observation and must latch within a couple of epochs.
        let mut latched_at = None;
        for e in 0..4u64 {
            let t = SimTime::ZERO + epoch * e;
            r.observe_pressures(t, &[pressure(30)]);
            if latched_at.is_none() && r.is_hot(0) {
                latched_at = Some(e);
            }
        }
        assert!(
            latched_at.is_some_and(|e| e <= 3),
            "a genuinely hot proxy must latch within 4 epochs"
        );
        // Dropping just under the threshold does NOT cool it: exit
        // needs the full hysteresis margin below the threshold.
        let t = SimTime::ZERO + epoch * 4u64;
        r.observe_pressures(t, &[pressure(11)]);
        assert!(r.is_hot(0), "inside the hysteresis band the episode holds");
        // Sustained cold eventually crosses threshold - exit_margin.
        let mut cooled_at = None;
        for e in 5..20u64 {
            let t = SimTime::ZERO + epoch * e;
            r.observe_pressures(t, &[pressure(0)]);
            if cooled_at.is_none() && !r.is_hot(0) {
                cooled_at = Some(e);
            }
        }
        assert!(cooled_at.is_some(), "sustained cold must close the episode");
    }

    #[test]
    fn fenced_submission_fails_honestly_with_no_age() {
        let mut r = FleetRouter::new(FleetRouterConfig::default());
        let t = SimTime::from_hours(1);
        r.fail_fenced(t, 1, past(4));
        let done = r.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].answer.source(), AnswerSource::Failed);
        assert_eq!(done[0].answer_age, None);
        assert_eq!(r.stats().failed_fenced, 1);
        assert_eq!(r.open_tickets(), 0, "fenced refusals never leak a ticket");
    }

    #[test]
    fn latency_classes_assign_per_query_deadlines() {
        let cfg = FleetRouterConfig {
            latency_classes: vec![
                QueryClass {
                    rate_per_hour: 10.0,
                    latency_bound: SimDuration::from_mins(2),
                    tolerance: 0.1,
                },
                QueryClass {
                    rate_per_hour: 10.0,
                    latency_bound: SimDuration::from_mins(20),
                    tolerance: 1.0,
                },
            ],
            ..FleetRouterConfig::default()
        };
        let r = FleetRouter::new(cfg);
        assert_eq!(r.deadline_for(0.1), SimDuration::from_mins(2));
        assert_eq!(r.deadline_for(0.9), SimDuration::from_mins(20));
        let bare = FleetRouter::new(FleetRouterConfig::default());
        assert_eq!(bare.deadline_for(0.1), SimDuration::from_mins(10));
    }
}
