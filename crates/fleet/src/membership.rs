//! Proxy-tier liveness: pairwise heartbeat leases with quorum death
//! declaration.
//!
//! The sensor tier grades every sensor Live/Suspect/Dead from heartbeat
//! leases ([`presto_reliability::LivenessMonitor`]); the fleet runs the
//! same monitor one tier up — but *per proxy*, not omnisciently. Every
//! epoch each physically-alive proxy beacons to every peer over the
//! forwarding mesh (unreliable datagrams: the next beacon supersedes a
//! lost one), and each proxy keeps its own lease table over the fleet.
//! Nothing sees the whole network: a proxy's evidence about a peer is
//! exactly the heartbeats that survived that pair's path.
//!
//! Death is declared by quorum, not by any single view: a proxy is
//! declared Dead — the trigger for sensor re-homing and query
//! resumption — only when a *majority* of its eligible peers have
//! independently graded it Dead. A single severed link therefore
//! suspects but never kills (the discriminating case pairwise suspicion
//! exists for), while a genuine crash or a minority-side partition is
//! still detected within the dead threshold. The converse edge is
//! guarded the same way: a declared proxy rejoins only when a majority
//! hears it again, so one stray heartbeat through a flapping link
//! cannot re-arm the death edge and double-declare one outage.
//!
//! Voter eligibility uses the driver's process-level knowledge (`up`):
//! a supervisor knows its own process died — what it cannot know, and
//! what this module never assumes, is the state of the *network*
//! between live proxies.

use presto_reliability::{Health, LivenessConfig, LivenessMonitor};
use presto_sim::SimTime;

/// Membership parameters.
#[derive(Clone, Debug)]
pub struct FleetMembershipConfig {
    /// Pairwise proxy lease: silence past `lease` makes a peer Suspect
    /// in one view, past `dead_after` Dead (re-homing fires when a
    /// majority of views agree on Dead).
    pub liveness: LivenessConfig,
}

impl Default for FleetMembershipConfig {
    fn default() -> Self {
        FleetMembershipConfig {
            liveness: LivenessConfig {
                lease: presto_sim::SimDuration::from_mins(3),
                dead_after: presto_sim::SimDuration::from_mins(8),
            },
        }
    }
}

/// Membership counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MembershipStats {
    /// Heartbeat datagrams offered to the mesh by live proxies.
    pub heartbeats_offered: u64,
    /// Heartbeats that survived a pair's path and renewed a lease.
    pub heartbeats_heard: u64,
    /// Quorum death declarations.
    pub deaths_declared: u64,
    /// Quorum-confirmed rebirths after a declaration (reboot or
    /// partition healing heard by a majority).
    pub rejoins: u64,
}

impl MembershipStats {
    /// Folds another fleet's counters into this one.
    pub fn merge(&mut self, other: &MembershipStats) {
        self.heartbeats_offered += other.heartbeats_offered;
        self.heartbeats_heard += other.heartbeats_heard;
        self.deaths_declared += other.deaths_declared;
        self.rejoins += other.rejoins;
    }
}

presto_telemetry::observe_counters!(MembershipStats {
    heartbeats_offered,
    heartbeats_heard,
    deaths_declared,
    rejoins,
});

/// The fleet's proxy-liveness views: one lease table per proxy plus the
/// quorum declarations derived from them.
pub struct FleetMembership {
    config: FleetMembershipConfig,
    proxies: usize,
    /// `views[p]` is proxy `p`'s local lease table over the whole fleet
    /// (including itself — a live proxy always hears itself).
    views: Vec<LivenessMonitor>,
    /// Proxies declared dead by quorum (edge detection for re-homing).
    declared_dead: Vec<bool>,
    stats: MembershipStats,
}

impl FleetMembership {
    /// Creates the views over `proxies` proxies, all initially Live
    /// everywhere.
    pub fn new(config: FleetMembershipConfig, proxies: usize) -> Self {
        FleetMembership {
            views: (0..proxies)
                .map(|_| LivenessMonitor::new(config.liveness, proxies))
                .collect(),
            proxies,
            declared_dead: vec![false; proxies],
            stats: MembershipStats::default(),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetMembershipConfig {
        &self.config
    }

    /// Counters.
    pub fn stats(&self) -> MembershipStats {
        self.stats
    }

    /// Records heartbeat datagrams offered to the mesh (accounting only;
    /// delivery is the mesh's business).
    pub fn record_offered(&mut self, n: u64) {
        self.stats.heartbeats_offered += n;
    }

    /// A heartbeat from `peer` was delivered at `observer` at `t`:
    /// renews `observer`'s lease on `peer`.
    pub fn heard(&mut self, observer: usize, peer: usize, t: SimTime) {
        self.stats.heartbeats_heard += 1;
        self.views[observer].heard(peer, t);
    }

    /// `observer`'s current grade of `peer` (that view's evidence only).
    pub fn view(&self, observer: usize, peer: usize) -> Health {
        self.views[observer].health(peer)
    }

    /// True when `proxy` has been declared dead by quorum and not yet
    /// reborn.
    pub fn is_declared_dead(&self, proxy: usize) -> bool {
        self.declared_dead[proxy]
    }

    /// True when `proxy` can prove membership from its own view: it
    /// holds fresh (Live) leases on a strict majority of the fleet,
    /// itself included. A minority-side proxy in a split brain loses
    /// this the moment its leases on the far side lapse — *before* the
    /// far side's dead threshold declares it — which is what makes
    /// self-fencing safe: ownership is provably released before anyone
    /// could re-home it away.
    pub fn in_quorum(&self, proxy: usize) -> bool {
        let live = (0..self.proxies)
            .filter(|&q| self.views[proxy].health(q) == Health::Live)
            .count();
        2 * live > self.proxies
    }

    /// The fleet-aggregate health of `proxy`: Dead once declared by
    /// quorum, Live while a majority of non-declared peers hold a fresh
    /// lease on it, Suspect in between. (A single-proxy fleet is Live
    /// by definition.)
    pub fn health(&self, proxy: usize) -> Health {
        if self.declared_dead[proxy] {
            return Health::Dead;
        }
        let peers: Vec<usize> = (0..self.proxies)
            .filter(|&p| p != proxy && !self.declared_dead[p])
            .collect();
        if peers.is_empty() {
            return Health::Live;
        }
        let live = peers
            .iter()
            .filter(|&&p| self.views[p].health(proxy) == Health::Live)
            .count();
        if 2 * live > peers.len() {
            Health::Live
        } else {
            Health::Suspect
        }
    }

    /// One epoch of lease maintenance: every physically-up proxy renews
    /// its self-lease and re-grades its view of every peer; then quorum
    /// declarations are re-evaluated. Returns the proxies *newly*
    /// declared Dead this epoch — the re-homing edge.
    ///
    /// Heartbeat deliveries must already have been fed through
    /// [`FleetMembership::heard`] for this epoch (the deployment steps
    /// the mesh first).
    pub fn step(&mut self, t: SimTime, up: &[bool]) -> Vec<usize> {
        for (p, view) in self.views.iter_mut().enumerate() {
            if up.get(p).copied().unwrap_or(false) {
                view.heard(p, t);
                for q in 0..self.proxies {
                    view.check(q, t);
                }
            }
            // A down proxy's view is frozen: it re-grades nothing and
            // its votes are ignored below.
        }

        let mut newly_dead = Vec::new();
        for q in 0..self.proxies {
            // Eligible voters about q: live processes, not themselves
            // declared dead, and not q itself.
            let voters: Vec<usize> = (0..self.proxies)
                .filter(|&p| p != q && up.get(p).copied().unwrap_or(false) && !self.declared_dead[p])
                .collect();
            if voters.is_empty() {
                continue;
            }
            let grades = |want: Health, views: &[LivenessMonitor]| {
                voters
                    .iter()
                    .filter(|&&p| views[p].health(q) == want)
                    .count()
            };
            if !self.declared_dead[q] {
                let suspects = grades(Health::Dead, &self.views);
                if 2 * suspects > voters.len() {
                    self.declared_dead[q] = true;
                    self.stats.deaths_declared += 1;
                    newly_dead.push(q);
                }
            } else {
                // Quorum-confirmed rebirth: one stray heartbeat through
                // a flapping link renews one lease in one view — it
                // must not re-arm the death edge for the same outage.
                let live = grades(Health::Live, &self.views);
                if 2 * live > voters.len() {
                    self.declared_dead[q] = false;
                    self.stats.rejoins += 1;
                }
            }
        }
        newly_dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    const EPOCH: SimDuration = SimDuration::from_secs(31);

    fn t_at(e: u64) -> SimTime {
        SimTime::ZERO + EPOCH * e
    }

    /// Drives one epoch of a clean mesh: every up proxy's beacon reaches
    /// every up peer, except pairs listed in `cut` (either direction's
    /// entry severs that delivery).
    fn epoch(m: &mut FleetMembership, e: u64, up: &[bool], cut: &[(usize, usize)]) -> Vec<usize> {
        let t = t_at(e);
        for src in 0..up.len() {
            if !up[src] {
                continue;
            }
            for (dst, &dst_up) in up.iter().enumerate() {
                if dst == src || !dst_up {
                    continue;
                }
                m.record_offered(1);
                let severed = cut
                    .iter()
                    .any(|&(a, b)| (a, b) == (src, dst) || (a, b) == (dst, src));
                if !severed {
                    m.heard(dst, src, t);
                }
            }
        }
        m.step(t, up)
    }

    #[test]
    fn dead_proxy_is_declared_once_within_the_threshold() {
        let cfg = FleetMembershipConfig::default();
        let dead_after = cfg.liveness.dead_after;
        let mut m = FleetMembership::new(cfg, 3);
        let mut up = vec![true, true, true];
        let mut declared_at = None;
        for e in 0..40u64 {
            let t = t_at(e);
            if t >= SimTime::from_mins(2) {
                up[1] = false; // proxy 1 dies two minutes in
            }
            let dead = epoch(&mut m, e, &up, &[]);
            if !dead.is_empty() {
                assert_eq!(dead, vec![1]);
                assert!(declared_at.is_none(), "declared exactly once");
                declared_at = Some(t);
            }
        }
        let declared = declared_at.expect("death must be declared");
        assert!(
            declared <= SimTime::from_mins(2) + dead_after + EPOCH,
            "detection must be bounded by the dead threshold: {declared:?}"
        );
        assert_eq!(m.health(1), Health::Dead);
        assert_eq!(m.health(0), Health::Live);
    }

    #[test]
    fn partition_then_crash_is_one_outage_one_declaration() {
        // Proxy 1 is partitioned from everyone, declared dead by
        // quorum; a single stray heartbeat then leaks through to peer 0
        // only (a flapping link, not a heal); then the proxy genuinely
        // crashes. The old single-observer membership re-armed its
        // death edge on that stray heartbeat and declared the same
        // outage twice; quorum rebirth must not.
        let mut m = FleetMembership::new(FleetMembershipConfig::default(), 3);
        let mut up = vec![true, true, true];
        let full_cut = [(1, 0), (1, 2)];
        let mut declarations = 0u64;
        for e in 0..80u64 {
            let t = t_at(e);
            let cut: &[(usize, usize)] = if e >= 10 { &full_cut } else { &[] };
            // One stray beacon leaks through the flapping link to peer
            // 0 only — a minority of the quorum.
            if e == 40 {
                m.record_offered(1);
                m.heard(0, 1, t);
            }
            if e >= 42 {
                up[1] = false; // now it crashes for real
            }
            declarations += epoch(&mut m, e, &up, cut).len() as u64;
        }
        assert_eq!(
            declarations, 1,
            "one outage must yield exactly one declaration"
        );
        assert_eq!(m.stats().deaths_declared, 1);
        assert_eq!(m.stats().rejoins, 0, "a minority heartbeat is not a rebirth");
        assert_eq!(m.health(1), Health::Dead);
    }

    #[test]
    fn single_link_cut_never_declares_anyone() {
        // Sever only the 0↔2 pair: each side keeps a majority of fresh
        // leases through proxy 1, so quorum must keep everyone alive —
        // the case a single omniscient observer cannot express and a
        // single pairwise view would get wrong.
        let mut m = FleetMembership::new(FleetMembershipConfig::default(), 3);
        let up = vec![true, true, true];
        for e in 0..120u64 {
            let dead = epoch(&mut m, e, &up, &[(0, 2)]);
            assert!(dead.is_empty(), "asymmetric cut declared a death at epoch {e}");
        }
        assert_eq!(m.stats().deaths_declared, 0);
        // The severed pair suspects each other locally...
        assert_eq!(m.view(0, 2), Health::Dead);
        assert_eq!(m.view(2, 0), Health::Dead);
        // ...but both stay in quorum and fleet-Live via proxy 1.
        assert!(m.in_quorum(0));
        assert!(m.in_quorum(2));
        assert_ne!(m.health(0), Health::Dead);
        assert_ne!(m.health(2), Health::Dead);
    }

    #[test]
    fn minority_side_loses_quorum_before_declaration() {
        // Split {0,1} | {2}: proxy 2 must drop out of quorum (at lease
        // expiry) strictly before the majority declares it dead (at the
        // dead threshold) — the fencing-precedes-re-homing guarantee.
        let cfg = FleetMembershipConfig::default();
        let mut m = FleetMembership::new(cfg, 3);
        let up = vec![true, true, true];
        let cut = [(0, 2), (1, 2)];
        let mut lost_quorum_at = None;
        let mut declared_at = None;
        for e in 0..60u64 {
            let dead = epoch(&mut m, e, &up, &cut);
            if lost_quorum_at.is_none() && !m.in_quorum(2) {
                lost_quorum_at = Some(e);
            }
            if !dead.is_empty() {
                assert_eq!(dead, vec![2]);
                declared_at = Some(e);
                break;
            }
        }
        let fenced = lost_quorum_at.expect("minority proxy must lose quorum");
        let declared = declared_at.expect("majority must declare the minority dead");
        assert!(
            fenced < declared,
            "fencing (epoch {fenced}) must precede declaration (epoch {declared})"
        );
        // The majority side never loses quorum.
        assert!(m.in_quorum(0) && m.in_quorum(1));
    }

    #[test]
    fn rebooted_proxy_rejoins_on_majority_evidence() {
        let mut m = FleetMembership::new(FleetMembershipConfig::default(), 2);
        let mut up = vec![true, true];
        let mut died = false;
        for e in 0..60u64 {
            let t = t_at(e);
            up[1] = !(SimTime::from_mins(2)..SimTime::from_mins(15)).contains(&t);
            died |= !epoch(&mut m, e, &up, &[]).is_empty();
        }
        assert!(died);
        assert_eq!(m.health(1), Health::Live, "rejoined after reboot");
        assert_eq!(m.stats().rejoins, 1);
    }

    #[test]
    fn lossy_heartbeats_do_not_flap_a_live_proxy() {
        // Bursty loss on every pair: a live proxy's lease survives (the
        // lease spans several beacon epochs), so nothing is declared.
        let mut m = FleetMembership::new(FleetMembershipConfig::default(), 2);
        let up = vec![true, true];
        let mut rng = presto_sim::SimRng::new(0xBEA7);
        for e in 0..600u64 {
            let t = t_at(e);
            for (src, dst) in [(0usize, 1usize), (1, 0)] {
                m.record_offered(1);
                // ~30% independent loss — well inside the ~6-epoch lease.
                if !rng.chance(0.3) {
                    m.heard(dst, src, t);
                }
            }
            let dead = m.step(t, &up);
            assert!(dead.is_empty(), "live proxy declared dead at epoch {e}");
        }
        assert!(m.stats().heartbeats_heard > m.stats().heartbeats_offered / 2);
    }
}
