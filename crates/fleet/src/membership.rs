//! Proxy-tier liveness: the heartbeat-lease model, one tier up.
//!
//! The sensor tier already grades every sensor Live/Suspect/Dead from
//! heartbeat leases ([`presto_reliability::LivenessMonitor`]); the
//! fleet reuses the same monitor over *proxies*. Every epoch each
//! physically-alive proxy offers a lease-renewal beacon over its own
//! lossy per-proxy path (configured separately from the forwarding
//! mesh — beacons are tiny and may ride a different route than bulk
//! forwards); the membership view hears whatever survives. A proxy silent past the
//! dead threshold is declared Dead — the trigger for sensor re-homing
//! and query resumption — and honestly so: the view cannot tell a dead
//! proxy from a long partition, exactly the ambiguity the lease
//! timeout resolves by policy.

use presto_net::{GilbertElliott, LinkModel, LossProcess};
use presto_reliability::{Health, LivenessConfig, LivenessMonitor};
use presto_sim::{SimRng, SimTime};

/// Membership parameters.
#[derive(Clone, Debug)]
pub struct FleetMembershipConfig {
    /// Proxy lease: silence past `lease` makes a proxy Suspect, past
    /// `dead_after` Dead (re-homing fires on Dead).
    pub liveness: LivenessConfig,
    /// Loss on the heartbeat paths (bursty; proxies share backhaul).
    pub heartbeat_loss: GilbertElliott,
    /// RNG seed for the heartbeat loss streams.
    pub seed: u64,
}

impl Default for FleetMembershipConfig {
    fn default() -> Self {
        FleetMembershipConfig {
            liveness: LivenessConfig {
                lease: presto_sim::SimDuration::from_mins(3),
                dead_after: presto_sim::SimDuration::from_mins(8),
            },
            heartbeat_loss: GilbertElliott {
                p_gb: 0.01,
                p_bg: 0.3,
                loss_good: 0.05,
                loss_bad: 0.7,
            },
            seed: 0xBEA7,
        }
    }
}

/// Membership counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MembershipStats {
    /// Heartbeats offered by live proxies.
    pub heartbeats_offered: u64,
    /// Heartbeats that survived the lossy path.
    pub heartbeats_heard: u64,
    /// Proxy death declarations (lease + dead threshold expired).
    pub deaths_declared: u64,
    /// Proxies heard again after a declaration (reboot or partition
    /// healing).
    pub rejoins: u64,
}

/// The fleet's proxy-liveness view.
pub struct FleetMembership {
    monitor: LivenessMonitor,
    links: Vec<LinkModel>,
    /// Proxies already declared dead (edge detection for re-homing).
    declared_dead: Vec<bool>,
    stats: MembershipStats,
}

impl FleetMembership {
    /// Creates the view over `proxies` proxies, all initially Live.
    pub fn new(config: FleetMembershipConfig, proxies: usize) -> Self {
        let rng = SimRng::new(config.seed);
        FleetMembership {
            monitor: LivenessMonitor::new(config.liveness, proxies),
            links: (0..proxies)
                .map(|p| {
                    LinkModel::new(
                        LossProcess::Gilbert(config.heartbeat_loss),
                        rng.split(&format!("hb-{p}")),
                    )
                })
                .collect(),
            declared_dead: vec![false; proxies],
            stats: MembershipStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> MembershipStats {
        self.stats
    }

    /// Last graded health of a proxy.
    pub fn health(&self, proxy: usize) -> Health {
        self.monitor.health(proxy)
    }

    /// One epoch of lease maintenance: every physically-up proxy (per
    /// `up`) beacons over its lossy path; leases re-grade; returns the
    /// proxies *newly* declared Dead this epoch — the re-homing edge.
    pub fn step(&mut self, t: SimTime, up: &[bool]) -> Vec<usize> {
        let mut newly_dead = Vec::new();
        for (p, &proxy_up) in up.iter().enumerate().take(self.links.len()) {
            if proxy_up {
                self.stats.heartbeats_offered += 1;
                if self.links[p].deliver() {
                    self.stats.heartbeats_heard += 1;
                    if self.monitor.heard(p, t) && self.declared_dead[p] {
                        self.declared_dead[p] = false;
                        self.stats.rejoins += 1;
                    }
                }
            }
            if self.monitor.check(p, t) == Health::Dead && !self.declared_dead[p] {
                self.declared_dead[p] = true;
                self.stats.deaths_declared += 1;
                newly_dead.push(p);
            }
        }
        newly_dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_sim::SimDuration;

    fn clean_config() -> FleetMembershipConfig {
        FleetMembershipConfig {
            heartbeat_loss: GilbertElliott {
                p_gb: 0.0,
                p_bg: 1.0,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
            ..FleetMembershipConfig::default()
        }
    }

    #[test]
    fn dead_proxy_is_declared_once_within_the_threshold() {
        let cfg = clean_config();
        let dead_after = cfg.liveness.dead_after;
        let mut m = FleetMembership::new(cfg, 3);
        let epoch = SimDuration::from_secs(31);
        let mut up = vec![true, true, true];
        let mut declared_at = None;
        for e in 0..40u64 {
            let t = SimTime::ZERO + epoch * e;
            if t >= SimTime::from_mins(2) {
                up[1] = false; // proxy 1 dies two minutes in
            }
            let dead = m.step(t, &up);
            if !dead.is_empty() {
                assert_eq!(dead, vec![1]);
                assert!(declared_at.is_none(), "declared exactly once");
                declared_at = Some(t);
            }
        }
        let declared = declared_at.expect("death must be declared");
        assert!(
            declared <= SimTime::from_mins(2) + dead_after + epoch,
            "detection must be bounded by the dead threshold: {declared:?}"
        );
        assert_eq!(m.health(1), Health::Dead);
        assert_eq!(m.health(0), Health::Live);
    }

    #[test]
    fn rebooted_proxy_rejoins() {
        let mut m = FleetMembership::new(clean_config(), 2);
        let epoch = SimDuration::from_secs(31);
        let mut up = vec![true, true];
        let mut died = false;
        for e in 0..60u64 {
            let t = SimTime::ZERO + epoch * e;
            up[1] = !(SimTime::from_mins(2)..SimTime::from_mins(15)).contains(&t);
            died |= !m.step(t, &up).is_empty();
        }
        assert!(died);
        assert_eq!(m.health(1), Health::Live, "rejoined after reboot");
        assert_eq!(m.stats().rejoins, 1);
    }

    #[test]
    fn lossy_heartbeats_do_not_flap_a_live_proxy() {
        // Default bursty loss: a live proxy's lease survives (the lease
        // spans several beacon epochs).
        let mut m = FleetMembership::new(FleetMembershipConfig::default(), 2);
        let epoch = SimDuration::from_secs(31);
        let up = vec![true, true];
        for e in 0..600u64 {
            let dead = m.step(SimTime::ZERO + epoch * e, &up);
            assert!(dead.is_empty(), "live proxy declared dead at epoch {e}");
        }
        assert!(m.stats().heartbeats_heard > m.stats().heartbeats_offered / 2);
    }
}
