//! The proxy-resident asynchronous query pipeline.
//!
//! The synchronous query path ([`crate::PrestoProxy::answer_now`] and
//! friends) drives each pull's entire attempt/timeout schedule inside
//! one blocking call, so a proxy serves exactly one precision-miss at a
//! time. The pipeline replaces that with a queued design, the tethered
//! tier the paper says "absorbs queries" for many users:
//!
//! * a query that misses the cache/model precision check enqueues a
//!   [`PendingQuery`] (query id, sensor, window, deadline, retry state)
//!   instead of spinning;
//! * each epoch tick [`crate::PrestoProxy::pump_queries`] issues or
//!   retransmits downlink pulls for *all* outstanding queries through
//!   the per-sensor `DownlinkChannel`s — bounded by a per-epoch attempt
//!   budget that is spread round-robin across sensors for fairness —
//!   and matches arriving `PullReply`/`AggregateReply` messages back to
//!   pending queries;
//! * in front of the queue sits a **shared pull-reply cache** keyed by
//!   (sensor, window, tolerance): concurrent queries over the same span
//!   coalesce into one radio pull, and later queries over an
//!   already-pulled span are served without touching the radio at all —
//!   guarded by an explicit freshness check so a cached reply never
//!   serves a query whose window extends past the reply's coverage.
//!
//! One proxy therefore overlaps many in-flight pulls across epochs, and
//! downlink loss shows up as latency percentiles instead of serialized
//! stalls. Every query terminates: by its deadline it has either
//! completed with a real answer or failed honestly (`Failed`, sigma ∞).

use std::collections::VecDeque;

use presto_sensor::AggregateOp;
use presto_sim::{SimDuration, SimTime};
use presto_telemetry::QueryTracer;

use crate::proxy::{Answer, PastAnswer};
use crate::slice::{SliceConfig, SliceSpec, TieredSliceCache};

/// Pipeline parameters.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Default deadline: how long a query may stay pending before it
    /// fails honestly. A per-query deadline (from query–sensor
    /// matching's latency classes, via
    /// [`crate::PrestoProxy::submit_query_with_deadline`]) overrides
    /// this for that query.
    pub deadline: SimDuration,
    /// Downlink transmission attempts (first tries plus retransmissions)
    /// the pump may issue per epoch, shared across all of the proxy's
    /// sensors. The round-robin pump start rotates each epoch so no
    /// sensor monopolizes the budget.
    pub epoch_attempt_budget: u32,
    /// Shared pull-reply cache capacity, in replies (oldest evict first).
    pub reply_cache_capacity: usize,
    /// Record a per-query trace span for every ticket (submit → fast
    /// path or RPC attempt log → terminal verdict). Off by default: the
    /// tracer then never allocates and the pump skips the attempt-log
    /// plumbing entirely.
    pub trace: bool,
    /// Bound on finished traces awaiting collection; evictions beyond
    /// it are counted (`finished_dropped`), never silent.
    pub trace_finished_cap: usize,
    /// Bound on the anomalous-outcome flight recorder; evictions are
    /// counted (`recorder_dropped`).
    pub trace_recorder_cap: usize,
    /// Sliced archive-range execution (see [`crate::slice`]): PAST
    /// windows spanning enough fixed time-aligned slices are fetched
    /// slice-by-slice and cached at slice granularity in a two-tier
    /// store. `None` (the default) keeps the monolithic pull path
    /// byte-identical to the pre-slice behavior.
    pub slice: Option<SliceConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            deadline: SimDuration::from_mins(10),
            epoch_attempt_budget: 16,
            reply_cache_capacity: 128,
            trace: false,
            trace_finished_cap: presto_telemetry::trace::FINISHED_CAP,
            trace_recorder_cap: presto_telemetry::trace::RECORDER_CAP,
            slice: None,
        }
    }
}

/// A query submitted to the pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PipelineQuery {
    /// Current value of one sensor.
    Now {
        /// Sensor id.
        sensor: u16,
        /// Acceptable absolute error.
        tolerance: f64,
    },
    /// Historical series of one sensor.
    Past {
        /// Sensor id.
        sensor: u16,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// Acceptable absolute error.
        tolerance: f64,
    },
    /// An aggregate over one sensor's archive.
    Aggregate {
        /// Sensor id.
        sensor: u16,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// The operator.
        op: AggregateOp,
    },
}

impl PipelineQuery {
    /// The queried sensor.
    pub fn sensor(&self) -> u16 {
        match self {
            PipelineQuery::Now { sensor, .. }
            | PipelineQuery::Past { sensor, .. }
            | PipelineQuery::Aggregate { sensor, .. } => *sensor,
        }
    }
}

/// A completed query's answer: scalar (NOW, aggregate) or series (PAST).
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineAnswer {
    /// NOW and aggregate answers.
    Scalar(Answer),
    /// PAST answers.
    Series(PastAnswer),
}

impl PipelineAnswer {
    /// The answer's provenance.
    pub fn source(&self) -> crate::AnswerSource {
        match self {
            PipelineAnswer::Scalar(a) => a.source,
            PipelineAnswer::Series(a) => a.source,
        }
    }

    /// The answer's end-to-end latency.
    pub fn latency(&self) -> SimDuration {
        match self {
            PipelineAnswer::Scalar(a) => a.latency,
            PipelineAnswer::Series(a) => a.latency,
        }
    }

    /// The freshest underlying data instant this answer reflects, or
    /// `None` when it reflects nothing (failed answers, empty ranges).
    /// A series' provenance is its newest sample.
    pub fn data_through(&self) -> Option<SimTime> {
        match self {
            PipelineAnswer::Scalar(a) => a.data_through,
            PipelineAnswer::Series(a) => {
                if a.source == crate::AnswerSource::Failed {
                    None
                } else {
                    a.samples.last().map(|s| s.0)
                }
            }
        }
    }

    /// How stale the answer is at serve time `t`: the gap between `t`
    /// and the data instant the answer reflects. `None` when the answer
    /// carries no data to be stale about.
    pub fn age_at(&self, t: SimTime) -> Option<SimDuration> {
        self.data_through().map(|dt| {
            if t >= dt {
                t - dt
            } else {
                SimDuration::ZERO
            }
        })
    }
}

/// A query the pipeline has finished, successfully or honestly not.
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    /// The ticket returned by `submit_query`.
    pub id: u64,
    /// The query as submitted.
    pub query: PipelineQuery,
    /// The answer.
    pub answer: PipelineAnswer,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time (equal to `submitted_at` for fast-path answers).
    pub completed_at: SimTime,
}

/// Identity of the radio work a pending query needs: queries with equal
/// keys coalesce into one RPC and are served from one cached reply.
/// Exact equality (window *and* tolerance/operator) is deliberate:
/// serving a sub-window slice of a differently-encoded reply would
/// break value-identity with the synchronous reference path, because
/// the reply codec is applied per reply, not per sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum PullKey {
    /// An archive pull.
    Pull {
        sensor: u16,
        from: SimTime,
        to: SimTime,
        tol_bits: u64,
    },
    /// A sensor-evaluated aggregate.
    Aggregate {
        sensor: u16,
        from: SimTime,
        to: SimTime,
        op: (u8, u64),
    },
}

/// Hashable encoding of an [`AggregateOp`].
pub(crate) fn op_key(op: AggregateOp) -> (u8, u64) {
    match op {
        AggregateOp::Mean => (0, 0),
        AggregateOp::Max => (1, 0),
        AggregateOp::Min => (2, 0),
        AggregateOp::Count => (3, 0),
        AggregateOp::Mode { bin_width } => (4, bin_width.to_bits()),
    }
}

/// One slice of a sliced PAST query's window: the canonical slice spec,
/// the pull key its sub-RPC coalesces under, and its fill state.
#[derive(Clone, Debug)]
pub(crate) struct SlicePart {
    /// Canonical slice identity and pull window.
    pub spec: SliceSpec,
    /// The radio work this slice needs (a [`PullKey::Pull`] over the
    /// slice's aligned window) — slices shared across queries coalesce
    /// into one sub-RPC exactly like monolithic pulls do.
    pub key: PullKey,
    /// Samples once the slice is served (from cache or radio), trimmed
    /// to the slice span.
    pub samples: Option<Vec<(SimTime, f64)>>,
    /// Re-bounded per-slice sigma ([`crate::slice::slice_sigma`]).
    pub sigma: f64,
    /// The in-flight sub-RPC fetching this slice, once issued.
    pub rpc_qid: Option<u64>,
}

/// One enqueued query awaiting radio work.
#[derive(Clone, Debug)]
pub(crate) struct PendingQuery {
    /// Ticket id.
    pub id: u64,
    /// The query as submitted.
    pub query: PipelineQuery,
    /// The radio work it needs.
    pub key: PullKey,
    /// Pull window and reply tolerance derived from the query.
    pub pull_from: SimTime,
    pub pull_to: SimTime,
    pub pull_tolerance: f64,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Honest-failure deadline.
    pub deadline: SimTime,
    /// The in-flight RPC serving this query, once issued. Several
    /// pending queries may share one (coalescing). Unused for sliced
    /// queries, whose radio state lives per-part.
    pub rpc_qid: Option<u64>,
    /// Sliced execution state: empty for monolithic queries; for a
    /// sliced PAST query, one entry per slice of its window.
    pub parts: Vec<SlicePart>,
    /// Air latency of the most recent reply that filled one of this
    /// query's parts — the assembled answer's latency reflects the
    /// slice that completed it.
    pub last_reply_latency: SimDuration,
}

impl PendingQuery {
    /// True when this query runs the sliced path.
    pub fn is_sliced(&self) -> bool {
        !self.parts.is_empty()
    }

    /// True when every slice of a sliced query has been served.
    pub fn parts_complete(&self) -> bool {
        self.is_sliced() && self.parts.iter().all(|p| p.samples.is_some())
    }
}

/// Pipeline counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Queries submitted.
    pub submitted: u64,
    /// Completed immediately from cache/model/spatial fast paths.
    pub completed_fast: u64,
    /// Completed from a matched RPC reply.
    pub completed_pull: u64,
    /// Completed from the shared pull-reply cache (no radio work).
    pub completed_cached: u64,
    /// Honest failures (deadline reached, or unregistered sensor).
    pub failed: u64,
    /// Queries attached to an RPC another query already had in flight.
    pub coalesced: u64,
    /// RPCs issued into the downlink channels.
    pub rpcs_issued: u64,
    /// PAST queries that took the sliced path.
    pub sliced: u64,
    /// Sliced queries completed by assembly (radio or mixed cache/radio).
    pub completed_sliced: u64,
    /// Per-slice sub-RPCs issued (a subset of `rpcs_issued`).
    pub slice_rpcs: u64,
    /// Slice parts attached to a sub-RPC another query already had in
    /// flight.
    pub slice_coalesced: u64,
    /// Peak simultaneously outstanding pulls across the proxy's sensors.
    pub max_in_flight: u64,
}

impl PipelineStats {
    /// Folds another pipeline's counters into this one (additive except
    /// the peak, which takes the max) — the aggregation a multi-proxy
    /// snapshot needs.
    pub fn merge(&mut self, other: &PipelineStats) {
        self.submitted += other.submitted;
        self.completed_fast += other.completed_fast;
        self.completed_pull += other.completed_pull;
        self.completed_cached += other.completed_cached;
        self.failed += other.failed;
        self.coalesced += other.coalesced;
        self.rpcs_issued += other.rpcs_issued;
        self.sliced += other.sliced;
        self.completed_sliced += other.completed_sliced;
        self.slice_rpcs += other.slice_rpcs;
        self.slice_coalesced += other.slice_coalesced;
        self.max_in_flight = self.max_in_flight.max(other.max_in_flight);
    }
}

presto_telemetry::observe_counters!(PipelineStats {
    submitted,
    completed_fast,
    completed_pull,
    completed_cached,
    failed,
    coalesced,
    rpcs_issued,
    sliced,
    completed_sliced,
    slice_rpcs,
    slice_coalesced,
} max { max_in_flight });

/// A reply kept in the shared pull-reply cache.
#[derive(Clone, Debug)]
struct CachedReply {
    key: PullKey,
    /// When the sensor served the reply: the archive span the samples
    /// cover ends here, whatever the window asked for.
    served_at: SimTime,
    samples: Vec<(SimTime, f64)>,
}

/// Shared pull-reply cache: one entry per (sensor, window, tolerance),
/// bounded FIFO. Repeat queries over a span any user already pulled are
/// served from proxy memory instead of the radio.
#[derive(Debug, Default)]
pub struct PullReplyCache {
    entries: VecDeque<CachedReply>,
    capacity: usize,
    hits: u64,
    misses: u64,
    stale_rejections: u64,
}

impl PullReplyCache {
    /// Creates a cache bounded to `capacity` replies.
    pub fn new(capacity: usize) -> Self {
        PullReplyCache {
            entries: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            stale_rejections: 0,
        }
    }

    /// Inserts a served reply, evicting the oldest beyond capacity. A
    /// re-pull of the same key replaces the older entry (the newer
    /// serving covers at least as much of the window).
    pub(crate) fn insert(&mut self, key: PullKey, served_at: SimTime, samples: Vec<(SimTime, f64)>) {
        if self.capacity == 0 {
            return;
        }
        self.entries.retain(|e| e.key != key);
        self.entries.push_back(CachedReply {
            key,
            served_at,
            samples,
        });
        while self.entries.len() > self.capacity {
            self.entries.pop_front();
        }
    }

    /// Looks up a cached reply for `key`, applying the staleness
    /// boundary: the query's window may extend past the instant the
    /// cached reply was served (a window whose end was still in the
    /// future then), in which case the cached samples cannot cover the
    /// newest demanded data and the reply must NOT be served — the
    /// query takes a fresh pull instead.
    ///
    /// The boundary is **closed**: the queried window is inclusive of
    /// its endpoint, and the archive's serving instant covers every
    /// row through `served_at` itself, so a reply served *exactly* at
    /// `needed_through` covers the whole closed window and must serve
    /// (`served_at == needed_through` hits; only `served_at <
    /// needed_through` — an open gap of at least one tick — rejects).
    /// Pinned by `reply_cache_serves_at_exact_freshness_boundary`.
    pub(crate) fn lookup(&mut self, key: PullKey, needed_through: SimTime) -> Option<&[(SimTime, f64)]> {
        let Some(pos) = self.entries.iter().position(|e| e.key == key) else {
            self.misses += 1;
            return None;
        };
        if self.entries[pos].served_at < needed_through {
            self.stale_rejections += 1;
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        Some(&self.entries[pos].samples)
    }

    /// Cached replies currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that went to the radio.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups rejected by the freshness check (cached reply too old
    /// for the query's window), a subset of `misses`.
    pub fn stale_rejections(&self) -> u64 {
        self.stale_rejections
    }
}

/// The pipeline state a proxy carries.
pub struct QueryPipeline {
    pub(crate) config: PipelineConfig,
    pub(crate) pending: Vec<PendingQuery>,
    pub(crate) completed: Vec<CompletedQuery>,
    pub(crate) reply_cache: PullReplyCache,
    /// Two-tier slice store (only populated when slicing is enabled).
    pub(crate) slice_cache: TieredSliceCache,
    pub(crate) stats: PipelineStats,
    pub(crate) next_ticket: u64,
    /// Rotating pump start index for cross-sensor fairness.
    pub(crate) rr_cursor: usize,
    /// Attempts the most recent pump transmitted (pressure probe: a
    /// pump that used its whole per-epoch budget is saturated).
    pub(crate) last_pump_attempts: u32,
    /// Per-ticket trace spans (no-op unless [`PipelineConfig::trace`]).
    pub(crate) tracer: QueryTracer,
}

impl QueryPipeline {
    /// Creates an empty pipeline.
    pub fn new(config: PipelineConfig) -> Self {
        let reply_cache = PullReplyCache::new(config.reply_cache_capacity);
        let slice_cache = config
            .slice
            .as_ref()
            .map(TieredSliceCache::for_config)
            .unwrap_or_else(|| TieredSliceCache::new(1, 0));
        let tracer = QueryTracer::with_caps(
            config.trace,
            config.trace_finished_cap,
            config.trace_recorder_cap,
        );
        QueryPipeline {
            config,
            pending: Vec::new(),
            completed: Vec::new(),
            reply_cache,
            slice_cache,
            stats: PipelineStats::default(),
            next_ticket: 1,
            rr_cursor: 0,
            last_pump_attempts: 0,
            tracer,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Downlink transmission attempts the most recent
    /// [`crate::PrestoProxy::pump_queries`] pass spent. Equal to the
    /// per-epoch attempt budget when the pump is saturated — the
    /// admission-control pressure probe the fleet router reads.
    pub fn last_pump_attempts(&self) -> u32 {
        self.last_pump_attempts
    }

    /// Counters.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The shared pull-reply cache.
    pub fn reply_cache(&self) -> &PullReplyCache {
        &self.reply_cache
    }

    /// The two-tier slice cache (empty and untouched unless
    /// [`PipelineConfig::slice`] is set).
    pub fn slice_cache(&self) -> &TieredSliceCache {
        &self.slice_cache
    }

    /// Queries currently pending (enqueued, not yet completed).
    pub fn pending_queries(&self) -> usize {
        self.pending.len()
    }

    /// Completed queries awaiting collection.
    pub fn completed_ready(&self) -> usize {
        self.completed.len()
    }

    /// Drains every completed query recorded since the last call.
    pub fn take_completed(&mut self) -> Vec<CompletedQuery> {
        std::mem::take(&mut self.completed)
    }

    /// The per-ticket trace collector.
    pub fn tracer(&self) -> &QueryTracer {
        &self.tracer
    }

    /// Mutable access to the trace collector (draining finished traces).
    pub fn tracer_mut(&mut self) -> &mut QueryTracer {
        &mut self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(from_s: u64, to_s: u64) -> PullKey {
        PullKey::Pull {
            sensor: 1,
            from: SimTime::from_secs(from_s),
            to: SimTime::from_secs(to_s),
            tol_bits: 0.5f64.to_bits(),
        }
    }

    #[test]
    fn reply_cache_serves_exact_key() {
        let mut c = PullReplyCache::new(4);
        c.insert(key(0, 100), SimTime::from_secs(100), vec![(SimTime::from_secs(50), 1.0)]);
        assert!(c.lookup(key(0, 100), SimTime::from_secs(100)).is_some());
        assert!(c.lookup(key(0, 101), SimTime::from_secs(100)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn reply_cache_freshness_rejects_stale_coverage() {
        // A reply served at t=100 for a window ending at t=200 (the
        // window's end was still in the future at serve time) must not
        // answer a later query demanding coverage through t=200.
        let mut c = PullReplyCache::new(4);
        c.insert(key(0, 200), SimTime::from_secs(100), vec![(SimTime::from_secs(90), 1.0)]);
        assert!(
            c.lookup(key(0, 200), SimTime::from_secs(200)).is_none(),
            "stale reply served past its coverage"
        );
        assert_eq!(c.stale_rejections(), 1);
        // The same entry is fine for a query content with coverage
        // through its serve time.
        assert!(c.lookup(key(0, 200), SimTime::from_secs(100)).is_some());
    }

    #[test]
    fn reply_cache_serves_at_exact_freshness_boundary() {
        // The freshness boundary is closed: a reply served exactly at
        // the closed window's end covers every row through that instant
        // and must serve. One tick of uncovered window must reject.
        let mut c = PullReplyCache::new(4);
        let served = SimTime::from_secs(200);
        c.insert(key(0, 200), served, vec![(SimTime::from_secs(150), 1.0)]);
        assert!(
            c.lookup(key(0, 200), served).is_some(),
            "served_at == needed_through is full coverage and must hit"
        );
        assert_eq!(c.stale_rejections(), 0);
        assert!(
            c.lookup(key(0, 200), served + SimDuration::from_micros(1)).is_none(),
            "one tick past the serve instant is uncovered and must reject"
        );
        assert_eq!(c.stale_rejections(), 1);
    }

    #[test]
    fn reply_cache_bounds_capacity_fifo() {
        let mut c = PullReplyCache::new(2);
        for i in 0..3u64 {
            c.insert(key(i, i + 10), SimTime::from_secs(i + 10), Vec::new());
        }
        assert_eq!(c.len(), 2);
        assert!(c.lookup(key(0, 10), SimTime::ZERO).is_none(), "oldest evicted");
        assert!(c.lookup(key(2, 12), SimTime::ZERO).is_some());
    }

    #[test]
    fn reply_cache_repull_replaces_entry() {
        let mut c = PullReplyCache::new(4);
        c.insert(key(0, 100), SimTime::from_secs(100), vec![(SimTime::from_secs(10), 1.0)]);
        c.insert(key(0, 100), SimTime::from_secs(300), vec![(SimTime::from_secs(10), 2.0)]);
        assert_eq!(c.len(), 1);
        let s = c.lookup(key(0, 100), SimTime::from_secs(200)).expect("fresh entry");
        assert_eq!(s[0].1, 2.0, "newest serving wins");
    }
}
