//! The proxy: uplink consumption, query answering, downlink control.
//!
//! Query path (paper §2): "When a new query arrives, the proxy examines
//! its cache … In the event of a hit, the query can be processed locally.
//! Cache misses are handled in one of two ways. The proxy first examines
//! other cached data to see if the requested data can be extrapolated …
//! If the spatio-temporal extrapolation does not yield sufficiently
//! accurate data to meet the query error tolerances, then the cache miss
//! is handled by fetching data from … the archive at remote sensors."
//!
//! Every proxy→sensor interaction — pulls, aggregate requests, model
//! pushes, retunes — is a fabric-routed RPC over a per-sensor
//! [`DownlinkChannel`]: sequenced, deduplicated at the sensor,
//! retransmitted on timeout from an energy-metered retry budget, with
//! replies matched through a pending-RPC table. There is no infallible
//! direct-call path; downlink loss surfaces as query latency and
//! [`AnswerSource::Failed`] answers.

use std::collections::BTreeMap;

use presto_models::SpatialGaussian;
use presto_net::Mac;
use presto_reliability::{AttemptEvent, DownlinkChannel, RpcOutcome};
use presto_sim::{EnergyLedger, SimDuration, SimTime};
use presto_telemetry::{CompletionCause, SpanEvent};

use presto_sensor::{DownlinkMsg, SensorNode, UplinkMsg, UplinkPayload};

use crate::cache::{CacheSource, CachedEvent, CachedSample, EventCache, SensorCache};
use crate::engine::{EngineConfig, ModelSlot, PredictionEngine};
use crate::pipeline::{
    op_key, CompletedQuery, PendingQuery, PipelineAnswer, PipelineConfig, PipelineQuery,
    PullKey, PullReplyCache, QueryPipeline, SlicePart,
};
use crate::slice;

/// Proxy configuration.
#[derive(Clone, Debug)]
pub struct ProxyConfig {
    /// Proxy id (for multi-proxy deployments).
    pub id: usize,
    /// Prediction engine configuration.
    pub engine: EngineConfig,
    /// Cache capacity per sensor, in samples.
    pub cache_capacity: usize,
    /// Age below which a cached sample answers a NOW query outright.
    pub freshness: SimDuration,
    /// Sensor sampling period (for coverage computations).
    pub sample_period: SimDuration,
    /// The push tolerance configured at the sensors (the extrapolation
    /// error bound under model-driven push).
    pub push_tolerance: f64,
    /// Radio model for the downlink MAC.
    pub radio: presto_net::RadioModel,
    /// Frame format for the downlink MAC.
    pub frame: presto_net::FrameFormat,
    /// The sensors' LPL check interval (downlink preamble length).
    pub sensor_lpl: SimDuration,
    /// Required cache coverage for a PAST-query cache hit.
    pub past_coverage_hit: f64,
    /// Event cache capacity, in events (oldest evict first).
    pub event_capacity: usize,
    /// Asynchronous query pipeline parameters.
    pub pipeline: PipelineConfig,
}

impl Default for ProxyConfig {
    fn default() -> Self {
        ProxyConfig {
            id: 0,
            engine: EngineConfig::default(),
            cache_capacity: 50_000,
            freshness: SimDuration::from_secs(62),
            sample_period: SimDuration::from_secs(31),
            push_tolerance: 1.0,
            radio: presto_net::RadioModel::mica2(),
            frame: presto_net::FrameFormat::tinyos_mica2(),
            sensor_lpl: SimDuration::from_secs(1),
            past_coverage_hit: 0.9,
            event_capacity: 100_000,
            pipeline: PipelineConfig::default(),
        }
    }
}

/// How a query was answered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// Served from a fresh cached sample.
    CacheHit,
    /// Served from the prediction engine (temporal model).
    Extrapolated,
    /// Served by spatial conditioning on nearby sensors.
    SpatialExtrapolated,
    /// Served by a miss-triggered pull from the sensor archive.
    Pulled,
    /// Could not be answered (sensor unreachable and no model).
    Failed,
}

/// Answer to a NOW query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Answer {
    /// The value.
    pub value: f64,
    /// Uncertainty (one sigma).
    pub sigma: f64,
    /// Provenance.
    pub source: AnswerSource,
    /// Time from arrival to answer.
    pub latency: SimDuration,
    /// The freshest underlying data instant this answer reflects — the
    /// cached/pulled sample's timestamp, the prediction instant for
    /// extrapolations (the push guarantee bounds the sensor *now*), or
    /// the window end for aggregates. `None` for failed answers: a
    /// sigma-∞ value has no staleness to reason about. Serve-time
    /// `answer_age` is derived from this, so clients read staleness
    /// directly instead of inferring it from sigma.
    pub data_through: Option<SimTime>,
}

/// Answer to a PAST query.
#[derive(Clone, Debug, PartialEq)]
pub struct PastAnswer {
    /// The series over the requested range.
    pub samples: Vec<(SimTime, f64)>,
    /// Provenance.
    pub source: AnswerSource,
    /// Time from arrival to answer.
    pub latency: SimDuration,
}

/// Proxy counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Uplink messages consumed.
    pub uplinks: u64,
    /// Samples added to caches.
    pub samples_cached: u64,
    /// Events cached.
    pub events_cached: u64,
    /// NOW queries answered.
    pub now_queries: u64,
    /// PAST queries answered.
    pub past_queries: u64,
    /// Cache hits (NOW + PAST).
    pub cache_hits: u64,
    /// Extrapolated answers.
    pub extrapolations: u64,
    /// Spatially extrapolated answers.
    pub spatial_extrapolations: u64,
    /// Miss-triggered pulls issued.
    pub pulls: u64,
    /// Pulls that failed after retries.
    pub pull_failures: u64,
    /// Model parameter pushes delivered.
    pub models_pushed: u64,
    /// Retunes delivered.
    pub retunes_pushed: u64,
    /// Archive-backed recovery pulls issued.
    pub recovery_pulls: u64,
    /// Model replicas resynchronized by replaying a repaired span
    /// through the replica check (kept, not dropped — no retrain
    /// needed).
    pub replica_resyncs: u64,
}

presto_telemetry::observe_counters!(ProxyStats {
    uplinks,
    samples_cached,
    events_cached,
    now_queries,
    past_queries,
    cache_hits,
    extrapolations,
    spatial_extrapolations,
    pulls,
    pull_failures,
    models_pushed,
    retunes_pushed,
    recovery_pulls,
    replica_resyncs,
});

impl ProxyStats {
    /// Accumulates another proxy's counters (fleet aggregation).
    pub fn merge(&mut self, other: &ProxyStats) {
        self.uplinks += other.uplinks;
        self.samples_cached += other.samples_cached;
        self.events_cached += other.events_cached;
        self.now_queries += other.now_queries;
        self.past_queries += other.past_queries;
        self.cache_hits += other.cache_hits;
        self.extrapolations += other.extrapolations;
        self.spatial_extrapolations += other.spatial_extrapolations;
        self.pulls += other.pulls;
        self.pull_failures += other.pull_failures;
        self.models_pushed += other.models_pushed;
        self.retunes_pushed += other.retunes_pushed;
        self.recovery_pulls += other.recovery_pulls;
        self.replica_resyncs += other.replica_resyncs;
    }
}

/// One sensor's radio endpoints as seen by a pumping proxy: the node
/// and the downlink channel this proxy drives towards it. The pump
/// works over an arbitrary set of these — a proxy's own cluster, a
/// cluster adopted after a peer's crash, or a peer's sensor reached
/// through a dedicated cross-proxy channel for a shed query — so
/// nothing in the pipeline assumes sensor ids are contiguous.
pub struct PumpSensor<'a> {
    /// Global sensor id.
    pub gid: u16,
    /// The sensor node.
    pub node: &'a mut SensorNode,
    /// The downlink channel this proxy drives towards it.
    pub chan: &'a mut DownlinkChannel,
}

struct SensorSlot {
    cache: SensorCache,
    model: Option<ModelSlot>,
    /// When the current model was installed at the sensor (extrapolation
    /// guarantees only hold from here on).
    model_installed_at: Option<SimTime>,
}

/// A PRESTO proxy.
pub struct PrestoProxy {
    config: ProxyConfig,
    engine: PredictionEngine,
    sensors: BTreeMap<u16, SensorSlot>,
    /// Time-indexed, capacity-bounded semantic event cache.
    events: EventCache,
    /// `[min, max]` timestamp over *all* events ever cached (survives
    /// eviction). Cached events are not guaranteed to be archive-backed
    /// (a sensor's append can fail while its push succeeds), so range
    /// routing must consult this span in addition to archived segment
    /// intervals.
    events_span: Option<(SimTime, SimTime)>,
    /// Sealed-segment spans reported by sensors, awaiting registration
    /// in the deployment's time-range index (drained by the system
    /// tier, which owns that index).
    sealed_spans: Vec<(u16, SimTime, SimTime)>,
    spatial: Option<(SpatialGaussian, Vec<u16>)>,
    ledger: EnergyLedger,
    downlink: Mac,
    stats: ProxyStats,
    next_query_id: u64,
    /// The asynchronous query pipeline: pending queries, the shared
    /// pull-reply cache, and completed answers awaiting collection.
    pipeline: QueryPipeline,
    /// Reusable buffer for model-training history snapshots, so periodic
    /// retrain checks do not allocate a fresh vector per sensor pass.
    history_scratch: Vec<(SimTime, f64)>,
}

impl PrestoProxy {
    /// Creates a proxy.
    pub fn new(config: ProxyConfig) -> Self {
        let engine = PredictionEngine::new(config.engine.clone());
        let downlink = Mac::downlink(
            config.radio.clone(),
            config.frame.clone(),
            config.sensor_lpl,
        );
        PrestoProxy {
            engine,
            downlink,
            sensors: BTreeMap::new(),
            events: EventCache::new(config.event_capacity),
            events_span: None,
            sealed_spans: Vec::new(),
            spatial: None,
            ledger: EnergyLedger::new(),
            stats: ProxyStats::default(),
            next_query_id: 1,
            pipeline: QueryPipeline::new(config.pipeline.clone()),
            history_scratch: Vec::new(),
            config,
        }
    }

    /// Registers a sensor under this proxy.
    pub fn register_sensor(&mut self, id: u16) {
        self.sensors.entry(id).or_insert_with(|| SensorSlot {
            cache: SensorCache::new(self.config.cache_capacity),
            model: None,
            model_installed_at: None,
        });
    }

    /// Registered sensor ids, sorted.
    pub fn sensor_ids(&self) -> Vec<u16> {
        let mut ids: Vec<u16> = self.sensors.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The proxy's energy ledger (tethered, but still tracked).
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Mutable ledger access, used by sensor uplink MACs to charge the
    /// proxy's reception energy.
    pub fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> &ProxyConfig {
        &self.config
    }

    /// The prediction engine (e.g. for E7 cycle accounting).
    pub fn engine(&self) -> &PredictionEngine {
        &self.engine
    }

    /// The time-indexed event cache.
    pub fn events(&self) -> &EventCache {
        &self.events
    }

    /// `[min, max]` timestamp over cached events, `None` when empty.
    pub fn events_span(&self) -> Option<(SimTime, SimTime)> {
        self.events_span
    }

    /// Drains sealed-segment spans reported by sensors since the last
    /// call, for registration in the deployment time-range index.
    pub fn take_sealed_spans(&mut self) -> Vec<(u16, SimTime, SimTime)> {
        std::mem::take(&mut self.sealed_spans)
    }

    /// Read access to a sensor's cache.
    pub fn cache(&self, sensor: u16) -> Option<&SensorCache> {
        self.sensors.get(&sensor).map(|s| &s.cache)
    }

    /// Consumes an uplink message, updating caches and model replicas.
    pub fn on_uplink(&mut self, msg: &UplinkMsg) {
        self.stats.uplinks += 1;
        let Some(slot) = self.sensors.get_mut(&msg.sensor) else {
            return;
        };
        match &msg.payload {
            UplinkPayload::Deviation { value, .. } => {
                slot.cache.insert(CachedSample {
                    t: msg.sent_at,
                    value: *value,
                    source: CacheSource::Pushed,
                });
                self.stats.samples_cached += 1;
                // Keep the proxy replica in lock-step with the sensor
                // replica: both observe exactly the pushed values.
                if let Some(m) = slot.model.as_mut() {
                    m.model.observe(msg.sent_at, *value);
                }
            }
            UplinkPayload::Value { value } => {
                slot.cache.insert(CachedSample {
                    t: msg.sent_at,
                    value: *value,
                    source: CacheSource::Pushed,
                });
                self.stats.samples_cached += 1;
            }
            UplinkPayload::Batch { samples, .. } => {
                for &(t, v) in samples {
                    slot.cache.insert(CachedSample {
                        t,
                        value: v,
                        source: CacheSource::Batch,
                    });
                }
                self.stats.samples_cached += samples.len() as u64;
            }
            UplinkPayload::Event { event_type, data } => {
                self.events.insert(CachedEvent {
                    t: msg.sent_at,
                    sensor: msg.sensor,
                    event_type: *event_type,
                    // Arc bump, not a byte copy: the cache shares the
                    // uplink's allocation.
                    data: std::sync::Arc::clone(data),
                });
                self.events_span = Some(match self.events_span {
                    None => (msg.sent_at, msg.sent_at),
                    Some((a, b)) => (a.min(msg.sent_at), b.max(msg.sent_at)),
                });
                self.stats.events_cached += 1;
            }
            UplinkPayload::PullReply { samples, .. } => {
                for s in samples {
                    slot.cache.insert(CachedSample {
                        t: s.t,
                        value: s.value,
                        source: CacheSource::Pulled,
                    });
                }
                self.stats.samples_cached += samples.len() as u64;
            }
            UplinkPayload::AggregateReply { .. } => {
                // Scalar result; nothing to cache (the consuming query
                // takes it straight from the reply).
                slot.cache.last_heard = Some(
                    slot.cache
                        .last_heard
                        .map_or(msg.sent_at, |h| h.max(msg.sent_at)),
                );
            }
            UplinkPayload::Heartbeat { .. } => {
                // Pure lease renewal: record the contact, cache nothing.
                slot.cache.last_heard = Some(
                    slot.cache
                        .last_heard
                        .map_or(msg.sent_at, |h| h.max(msg.sent_at)),
                );
            }
            UplinkPayload::SegmentSeal { start, end } => {
                slot.cache.last_heard = Some(
                    slot.cache
                        .last_heard
                        .map_or(msg.sent_at, |h| h.max(msg.sent_at)),
                );
                self.sealed_spans.push((msg.sensor, *start, *end));
            }
        }
    }

    /// Runs a fabric-routed RPC towards a sensor: the request rides the
    /// sequenced, ack/retransmit [`DownlinkChannel`] (first-hop MAC
    /// energy billed to this proxy's ledger, retransmissions metered by
    /// the channel's retry budget), and any matched reply is folded into
    /// the proxy's cache before being returned. There is no infallible
    /// path: every proxy→sensor interaction goes through here and can
    /// time out, retry, and fail.
    pub fn rpc(
        &mut self,
        t: SimTime,
        msg: &DownlinkMsg,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> RpcOutcome {
        let outcome = chan.rpc(t, msg, node, &self.downlink, &mut self.ledger);
        if let Some(r) = &outcome.reply {
            self.on_uplink(r);
        }
        outcome
    }

    /// Trains (if warranted) and pushes a model to a sensor. Returns true
    /// when a new model was installed.
    pub fn maybe_train_and_push(
        &mut self,
        t: SimTime,
        sensor: u16,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> bool {
        let Some(slot) = self.sensors.get(&sensor) else {
            return false;
        };
        if !self
            .engine
            .should_train(slot.model.as_ref(), slot.cache.len(), t)
        {
            return false;
        }
        let prev_version = slot.model.as_ref().map_or(0, |m| m.version);
        // Reuse one history buffer across training passes (taken out of
        // `self` so the cache borrow and the engine borrow don't clash).
        let mut history = std::mem::take(&mut self.history_scratch);
        slot.cache.history_into(&mut history);
        let trained = self
            .engine
            .train(&history, t, prev_version, &mut self.ledger);
        self.history_scratch = history;
        let params = trained.model.encode_params();
        let kind = trained.model.kind();
        let msg = DownlinkMsg::ModelUpdate { kind, params };
        let delivered = self.rpc(t, &msg, node, chan).delivered;
        // Install only if the sensor acknowledged it; otherwise the
        // replicas would diverge.
        let Some(slot) = self.sensors.get_mut(&sensor) else {
            // Registration checked on entry, but an unregistered sensor
            // simply has no replica to update.
            return false;
        };
        if delivered && node.has_model() {
            slot.model = Some(trained);
            slot.model_installed_at = Some(t);
            self.stats.models_pushed += 1;
            true
        } else {
            // Unconfirmed push: the request may have been applied at the
            // sensor with only the ack lost, in which case the sensor is
            // now checking against the NEW model while our replica is
            // the OLD one — "silence means within tolerance" would be
            // silently false. We cannot tell the two cases apart, so
            // drop the replica: queries fall back to honest pulls until
            // a later confirmed push resynchronizes both ends.
            slot.model = None;
            slot.model_installed_at = None;
            false
        }
    }

    /// Pushes a retune (from query–sensor matching) to a sensor.
    pub fn push_retune(
        &mut self,
        t: SimTime,
        msg: &DownlinkMsg,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> bool {
        debug_assert!(matches!(msg, DownlinkMsg::Retune { .. }));
        if !self.rpc(t, msg, node, chan).delivered {
            return false;
        }
        // Track the sensor's tolerance for extrapolation bounds.
        if let DownlinkMsg::Retune {
            push_tolerance: Some(tol),
            ..
        } = msg
        {
            self.config.push_tolerance = *tol;
        }
        self.stats.retunes_pushed += 1;
        true
    }

    /// Trains the spatial model from aligned cached rows of all sensors.
    pub fn refresh_spatial_model(&mut self) {
        let ids = self.sensor_ids();
        if ids.len() < 2 {
            return;
        }
        // Align on the timestamps of the first sensor's cache.
        let Some(first) = self.sensors.get(&ids[0]) else {
            return;
        };
        let mut rows = Vec::new();
        for s in first.cache.history_iter() {
            let mut row = Vec::with_capacity(ids.len());
            row.push(s.1);
            let mut complete = true;
            for &other in &ids[1..] {
                let slot = &self.sensors[&other];
                match slot.cache.latest_at(s.0) {
                    Some(cs) if s.0 - cs.t <= self.config.sample_period * 2 => {
                        row.push(cs.value);
                    }
                    _ => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                rows.push(row);
            }
        }
        if rows.len() >= 32 {
            self.spatial = self
                .engine
                .train_spatial(&rows, &mut self.ledger)
                .map(|g| (g, ids));
        }
    }

    /// Estimated uplink latency for a reply of `bytes` payload bytes.
    fn reply_latency(&self, bytes: usize) -> SimDuration {
        let frames = self.config.frame.frames_for(bytes) as u64;
        let wire = self.config.frame.wire_bytes(bytes) + 6 * frames as usize;
        self.config.radio.airtime(wire) + SimDuration::from_millis(2) * frames
    }

    /// Fast, radio-free NOW paths — cache hit → temporal extrapolation
    /// → spatial conditioning — shared by the blocking query path and
    /// the asynchronous pipeline. `None` means only a pull can answer.
    fn try_now_fast(&mut self, t: SimTime, sensor: u16, tolerance: f64) -> Option<Answer> {
        let slot = self.sensors.get(&sensor)?;

        // 1. Fresh cached sample.
        if let Some(s) = slot.cache.latest() {
            if t - s.t <= self.config.freshness {
                self.stats.cache_hits += 1;
                return Some(Answer {
                    value: s.value,
                    sigma: 0.0,
                    source: AnswerSource::CacheHit,
                    latency: SimDuration::from_millis(1),
                    data_through: Some(s.t),
                });
            }
        }

        // 2. Temporal extrapolation: under model-driven push, silence
        // means the model is within the push tolerance.
        if let Some(m) = &slot.model {
            if self.config.push_tolerance <= tolerance {
                let p = PredictionEngine::extrapolate(m, t, self.config.push_tolerance);
                self.stats.extrapolations += 1;
                return Some(Answer {
                    value: p.value,
                    sigma: p.sigma,
                    source: AnswerSource::Extrapolated,
                    latency: SimDuration::from_millis(2),
                    // The push guarantee bounds the sensor's value *at
                    // the prediction instant*: knowledge through `t`.
                    data_through: Some(t),
                });
            }
        }

        // 3. Spatial extrapolation from co-located sensors.
        if let Some((g, ids)) = &self.spatial {
            if let Some(target_idx) = ids.iter().position(|&i| i == sensor) {
                let mut observed = Vec::new();
                let mut freshest = SimTime::ZERO;
                for (idx, &other) in ids.iter().enumerate() {
                    if other == sensor {
                        continue;
                    }
                    if let Some(cs) = self.sensors[&other].cache.latest_at(t) {
                        if t - cs.t <= self.config.freshness {
                            observed.push((idx, cs.value));
                            freshest = freshest.max(cs.t);
                        }
                    }
                }
                if !observed.is_empty() {
                    let p = g.condition(&observed, target_idx);
                    if p.sigma <= tolerance {
                        self.stats.spatial_extrapolations += 1;
                        return Some(Answer {
                            value: p.value,
                            sigma: p.sigma,
                            source: AnswerSource::SpatialExtrapolated,
                            latency: SimDuration::from_millis(2),
                            // Conditioned on neighbors' samples: the
                            // newest anchor bounds what it reflects.
                            data_through: Some(freshest),
                        });
                    }
                }
            }
        }
        None
    }

    /// Answers a NOW query for one sensor: cache hit → extrapolation →
    /// spatial → pull.
    pub fn answer_now(
        &mut self,
        t: SimTime,
        sensor: u16,
        tolerance: f64,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> Answer {
        self.stats.now_queries += 1;
        if !self.sensors.contains_key(&sensor) {
            return Answer {
                value: 0.0,
                sigma: f64::INFINITY,
                source: AnswerSource::Failed,
                latency: SimDuration::ZERO,
                data_through: None,
            };
        }
        if let Some(a) = self.try_now_fast(t, sensor, tolerance) {
            return a;
        }

        // 4. Miss-triggered pull of the most recent archive contents.
        let (reply, latency) = self.pull(
            t,
            sensor,
            t - self.config.sample_period * 3,
            t,
            tolerance,
            node,
            chan,
        );
        match reply.as_deref().and_then(<[_]>::last) {
            Some(&(stamp, value)) => Answer {
                value,
                sigma: tolerance / 2.0,
                source: AnswerSource::Pulled,
                latency,
                data_through: Some(stamp),
            },
            _ => {
                // Best effort: stale cache or model, flagged as failed.
                let slot = &self.sensors[&sensor];
                let (value, sigma) = slot
                    .cache
                    .latest()
                    .map(|s| (s.value, f64::INFINITY))
                    .unwrap_or((0.0, f64::INFINITY));
                Answer {
                    value,
                    sigma,
                    source: AnswerSource::Failed,
                    latency,
                    data_through: None,
                }
            }
        }
    }

    /// Fast, radio-free PAST paths — dense cache coverage → model-era
    /// extrapolation — shared by the blocking query path and the
    /// asynchronous pipeline. `None` means only a pull can answer.
    fn try_past_fast(
        &mut self,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
    ) -> Option<PastAnswer> {
        let slot = self.sensors.get(&sensor)?;

        // 1. Dense cache coverage.
        let coverage = slot.cache.coverage(from, to, self.config.sample_period);
        if coverage >= self.config.past_coverage_hit {
            self.stats.cache_hits += 1;
            return Some(PastAnswer {
                samples: slot
                    .cache
                    .range(from, to)
                    .into_iter()
                    .map(|s| (s.t, s.value))
                    .collect(),
                source: AnswerSource::CacheHit,
                latency: SimDuration::from_millis(2),
            });
        }

        // 2. Model extrapolation over the range, valid only for the span
        // the model guarantee covers.
        if let (Some(m), Some(installed)) = (&slot.model, slot.model_installed_at) {
            if self.config.push_tolerance <= tolerance && from >= installed {
                // Anchored extrapolation: the model's prediction at any
                // time carries the replica's *current* short-term context,
                // which is wrong for past instants. Anchoring on the
                // nearest cached push cancels the context (it is constant
                // across prediction times), leaving the seasonal shape
                // plus the true value at the anchor — which is exactly
                // the trajectory the push-tolerance guarantee bounds.
                let anchors = slot.cache.range(installed, to);
                let mut samples = Vec::new();
                let mut ts = from;
                let mut ai = 0usize;
                while ts <= to {
                    while ai + 1 < anchors.len() && anchors[ai + 1].t <= ts {
                        ai += 1;
                    }
                    let v = match anchors.get(ai) {
                        Some(a) if a.t <= ts => {
                            m.model.predict(ts).value - m.model.predict(a.t).value + a.value
                        }
                        _ => m.model.predict(ts).value,
                    };
                    samples.push((ts, v));
                    ts += self.config.sample_period;
                }
                self.stats.extrapolations += 1;
                return Some(PastAnswer {
                    samples,
                    source: AnswerSource::Extrapolated,
                    latency: SimDuration::from_millis(3),
                });
            }
        }
        None
    }

    /// Answers a PAST query: cache coverage → extrapolation (model
    /// guarantee over the range) → archive pull.
    #[allow(clippy::too_many_arguments)]
    pub fn answer_past(
        &mut self,
        t: SimTime,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> PastAnswer {
        self.stats.past_queries += 1;
        if !self.sensors.contains_key(&sensor) {
            return PastAnswer {
                samples: Vec::new(),
                source: AnswerSource::Failed,
                latency: SimDuration::ZERO,
            };
        }
        if let Some(a) = self.try_past_fast(sensor, from, to, tolerance) {
            return a;
        }

        // 3. Pull from the sensor's archive.
        let (reply, latency) = self.pull(t, sensor, from, to, tolerance, node, chan);
        match reply {
            Some(samples) if !samples.is_empty() => PastAnswer {
                samples,
                source: AnswerSource::Pulled,
                latency,
            },
            _ => PastAnswer {
                samples: self.sensors[&sensor]
                    .cache
                    .range(from, to)
                    .into_iter()
                    .map(|s| (s.t, s.value))
                    .collect(),
                source: AnswerSource::Failed,
                latency,
            },
        }
    }

    /// Fast, radio-free aggregate path (dense cache coverage), shared
    /// by the blocking query path and the asynchronous pipeline.
    fn try_aggregate_fast(
        &mut self,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        op: presto_sensor::AggregateOp,
    ) -> Option<Answer> {
        let slot = self.sensors.get(&sensor)?;
        let coverage = slot.cache.coverage(from, to, self.config.sample_period);
        if coverage >= self.config.past_coverage_hit {
            let values: Vec<f64> = slot
                .cache
                .range(from, to)
                .into_iter()
                .map(|s| s.value)
                .collect();
            self.stats.cache_hits += 1;
            return Some(Answer {
                value: presto_sensor::evaluate_aggregate(op, &values),
                sigma: 0.0,
                source: AnswerSource::CacheHit,
                latency: SimDuration::from_millis(2),
                data_through: Some(to),
            });
        }
        None
    }

    /// Answers an aggregate PAST query: computed from the cache when
    /// coverage allows, otherwise evaluated *at the sensor* over its
    /// archive so only the scalar result crosses the radio (paper §3's
    /// "mode of vibration" example).
    #[allow(clippy::too_many_arguments)]
    pub fn answer_aggregate(
        &mut self,
        t: SimTime,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        op: presto_sensor::AggregateOp,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> Answer {
        self.stats.past_queries += 1;
        if !self.sensors.contains_key(&sensor) {
            return Answer {
                value: f64::NAN,
                sigma: f64::INFINITY,
                source: AnswerSource::Failed,
                latency: SimDuration::ZERO,
                data_through: None,
            };
        }
        // Dense cache coverage: aggregate locally.
        if let Some(a) = self.try_aggregate_fast(sensor, from, to, op) {
            return a;
        }

        // Ship the operator to the sensor. One RPC — the downlink
        // channel owns retransmission — counted when issued, not when it
        // happens to succeed, so `pulls` means attempts-per-RPC on every
        // path.
        self.stats.pulls += 1;
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let msg = DownlinkMsg::AggregateRequest {
            query_id,
            from,
            to,
            op,
        };
        let out = self.rpc(t, &msg, node, chan);
        let mut latency = out.latency;
        if let Some(r) = out.reply {
            if let UplinkPayload::AggregateReply {
                value,
                count,
                sigma,
                ..
            } = &r.payload
            {
                latency += self.reply_latency(r.wire_bytes);
                if *count == 0 {
                    // The sensor aggregated nothing: the reply carries
                    // no information, and an answer that carries no
                    // data is a failure, not an Ok with no age — the
                    // Ok set and the has-age set must coincide.
                    return Answer {
                        value: *value,
                        sigma: f64::INFINITY,
                        source: AnswerSource::Failed,
                        latency,
                        data_through: None,
                    };
                }
                return Answer {
                    value: *value,
                    // The sensor derives the bound from the codec/aging
                    // error of the rows it aggregated.
                    sigma: *sigma,
                    source: AnswerSource::Pulled,
                    latency,
                    data_through: Some(to),
                };
            }
        }
        self.stats.pull_failures += 1;
        Answer {
            value: f64::NAN,
            sigma: f64::INFINITY,
            source: AnswerSource::Failed,
            latency,
            data_through: None,
        }
    }

    /// Archive-backed recovery replay: pulls `[from, to]` from the
    /// sensor's flash archive (the indexed query path) and folds the
    /// reply into the cache, repairing a span whose pushed context was
    /// lost. Returns the number of samples replayed, or `None` when the
    /// pull failed after retries (the caller requeues the repair).
    #[allow(clippy::too_many_arguments)]
    pub fn recover_span(
        &mut self,
        t: SimTime,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> Option<usize> {
        // Recovery pulls are counted here and *only* here: `pulls` and
        // `pull_failures` stay query-path counters (recovery failures
        // are tracked by the gap tracker's `failed_attempts`).
        self.stats.recovery_pulls += 1;
        let (reply, _) = self.pull_inner(t, sensor, from, to, tolerance, node, chan, false);
        if let Some(samples) = &reply {
            // Replica-divergence repair: the repaired gap may have held
            // deviation pushes the sensor's replica observed and ours
            // never saw, after which "silence means within tolerance"
            // would be silently false. Instead of dropping the model
            // and waiting for the next train-and-push, resynchronize it
            // from the replayed samples themselves.
            self.resync_replica(sensor, samples);
        }
        reply.map(|samples| samples.len())
    }

    /// Resynchronizes a sensor's model replica after a gap repair by
    /// replaying the repaired span through the sensor's own
    /// model-driven push rule: both replicas were in lock-step when the
    /// gap opened, so simulating the check over the recovered samples
    /// (observe exactly the values that deviate) reconstructs the
    /// observations the sensor's replica made during the outage. The
    /// reconstruction is approximate at two known edges — recovered
    /// values carry the recovery codec tolerance, which can flip a
    /// decision sitting exactly on the push boundary, and any deviation
    /// delivered between gap detection and repair was observed out of
    /// order — both bounded by the push-tolerance scale the
    /// extrapolation sigma already advertises. The alternative (drop
    /// the replica, answer by pull until the next training pass) costs
    /// a retrain and a model push per gap; the resync costs one pass
    /// over the replayed span.
    fn resync_replica(&mut self, sensor: u16, samples: &[(SimTime, f64)]) {
        let tolerance = self.config.push_tolerance;
        let Some(slot) = self.sensors.get_mut(&sensor) else {
            return;
        };
        let Some(m) = slot.model.as_mut() else {
            return;
        };
        for &(ts, v) in samples {
            if !m.model.predict(ts).within(v, tolerance) {
                m.model.observe(ts, v);
            }
        }
        self.stats.replica_resyncs += 1;
    }

    /// Issues a query-path pull; integrates the reply into the cache.
    #[allow(clippy::too_many_arguments)]
    fn pull(
        &mut self,
        t: SimTime,
        sensor: u16,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
    ) -> (Option<Vec<(SimTime, f64)>>, SimDuration) {
        self.pull_inner(t, sensor, from, to, tolerance, node, chan, true)
    }

    /// One fabric-routed pull RPC. Retransmission lives in the downlink
    /// channel, so this issues exactly one RPC; `count_as_query` selects
    /// whether it books into the query-path `pulls`/`pull_failures`
    /// counters (recovery replays keep their own disjoint counter).
    #[allow(clippy::too_many_arguments)]
    fn pull_inner(
        &mut self,
        t: SimTime,
        _sensor: u16,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
        node: &mut SensorNode,
        chan: &mut DownlinkChannel,
        count_as_query: bool,
    ) -> (Option<Vec<(SimTime, f64)>>, SimDuration) {
        if count_as_query {
            self.stats.pulls += 1;
        }
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let msg = DownlinkMsg::PullRequest {
            query_id,
            from,
            to,
            tolerance,
        };
        let out = self.rpc(t, &msg, node, chan);
        let mut latency = out.latency;
        if let Some(r) = out.reply {
            if let UplinkPayload::PullReply { samples, .. } = &r.payload {
                latency += self.reply_latency(r.wire_bytes);
                return (
                    Some(samples.iter().map(|s| (s.t, s.value)).collect()),
                    latency,
                );
            }
        }
        if count_as_query {
            self.stats.pull_failures += 1;
        }
        (None, latency)
    }

    // ──────────────── asynchronous query pipeline ────────────────

    /// The asynchronous query pipeline (stats, reply cache, queue
    /// depth).
    pub fn pipeline(&self) -> &QueryPipeline {
        &self.pipeline
    }

    /// Mutable pipeline access (tracer draining, trace enablement).
    pub fn pipeline_mut(&mut self) -> &mut QueryPipeline {
        &mut self.pipeline
    }

    /// Drains completed pipeline queries recorded since the last call.
    pub fn take_completed_queries(&mut self) -> Vec<CompletedQuery> {
        self.pipeline.take_completed()
    }

    /// Wipes the proxy's RAM-resident query state after a crash: every
    /// pending pipeline query, every completed-but-uncollected answer,
    /// and the shared pull-reply cache die with the process. Per-sensor
    /// caches and model replicas die too — a rebooted or succeeding
    /// proxy rebuilds them from pushes, pulls, and recovery replays.
    /// Counters survive (they are measurement instrumentation, not
    /// system state). Returns the number of queries dropped.
    pub fn crash_reset(&mut self) -> usize {
        let dropped = self.pipeline.pending.len() + self.pipeline.completed.len();
        self.pipeline.pending.clear();
        self.pipeline.completed.clear();
        self.pipeline.reply_cache = PullReplyCache::new(self.pipeline.config.reply_cache_capacity);
        // Slice entries are RAM state and die with the crash; the tier
        // counters are measurement instrumentation and survive.
        self.pipeline.slice_cache.clear();
        for slot in self.sensors.values_mut() {
            slot.cache = SensorCache::new(self.config.cache_capacity);
            slot.model = None;
            slot.model_installed_at = None;
        }
        self.events = EventCache::new(self.config.event_capacity);
        self.events_span = None;
        self.sealed_spans.clear();
        self.spatial = None;
        // RAM-resident trace state dies with the queue it described;
        // the fleet tier still closes its own traces honestly.
        self.pipeline.tracer.clear_open();
        dropped
    }

    /// Closes a ticket's trace from its answer: cause from provenance,
    /// staleness at completion time, the reported confidence width
    /// (series answers carry per-sample tolerances, reported as 0 here).
    fn finish_trace(&mut self, id: u64, t: SimTime, answer: &PipelineAnswer) {
        self.finish_trace_with(id, t, answer, None);
    }

    /// [`PrestoProxy::finish_trace`] with an explicit confidence width —
    /// sliced series answers report their re-bounded assembly sigma
    /// (worst per-slice codec/aging bound) instead of the 0 a series
    /// defaults to.
    fn finish_trace_with(
        &mut self,
        id: u64,
        t: SimTime,
        answer: &PipelineAnswer,
        sigma_override: Option<f64>,
    ) {
        if !self.pipeline.tracer.enabled() {
            return;
        }
        let cause = if answer.source() == AnswerSource::Failed {
            CompletionCause::Failed
        } else {
            CompletionCause::Ok
        };
        let sigma = sigma_override.unwrap_or(match answer {
            PipelineAnswer::Scalar(a) => a.sigma,
            PipelineAnswer::Series(_) => 0.0,
        });
        self.pipeline
            .tracer
            .finish(id, t, cause, answer.age_at(t), sigma);
    }

    /// Submits a query to the asynchronous pipeline. The radio-free
    /// fast paths (cache hit, model extrapolation, spatial
    /// conditioning, dense-coverage aggregation, the shared pull-reply
    /// cache) complete immediately; a precision miss enqueues a
    /// `PendingQuery` that [`PrestoProxy::pump_queries`] serves across
    /// epochs. Returns the ticket id under which the completion
    /// surfaces in [`PrestoProxy::take_completed_queries`]. Uses the
    /// pipeline's default deadline.
    pub fn submit_query(&mut self, t: SimTime, query: PipelineQuery) -> u64 {
        self.submit_query_with_deadline(t, query, None)
    }

    /// [`PrestoProxy::submit_query`] with a per-query deadline (from
    /// query–sensor matching's latency classes — see
    /// [`crate::QuerySensorMatcher::deadline_for`]); `None` falls back
    /// to [`PipelineConfig::deadline`]. A tight deadline bounds how
    /// long the pump may spend retransmitting for this query before it
    /// fails honestly, so callers can trade deadline against retry
    /// budget per latency class.
    pub fn submit_query_with_deadline(
        &mut self,
        t: SimTime,
        query: PipelineQuery,
        deadline: Option<SimDuration>,
    ) -> u64 {
        let id = self.pipeline.next_ticket;
        self.pipeline.next_ticket += 1;
        self.pipeline.stats.submitted += 1;
        self.pipeline.tracer.record(id, t, SpanEvent::Submitted);
        match query {
            PipelineQuery::Now { .. } => self.stats.now_queries += 1,
            PipelineQuery::Past { .. } | PipelineQuery::Aggregate { .. } => {
                self.stats.past_queries += 1
            }
        }
        if !self.sensors.contains_key(&query.sensor()) {
            let answer = self.failed_answer(&query, SimDuration::ZERO);
            self.pipeline.stats.failed += 1;
            self.finish_trace(id, t, &answer);
            self.pipeline.completed.push(CompletedQuery {
                id,
                query,
                answer,
                submitted_at: t,
                completed_at: t,
            });
            return id;
        }
        let fast = match query {
            PipelineQuery::Now { sensor, tolerance } => self
                .try_now_fast(t, sensor, tolerance)
                .map(PipelineAnswer::Scalar),
            PipelineQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => self
                .try_past_fast(sensor, from, to, tolerance)
                .map(PipelineAnswer::Series),
            PipelineQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => self
                .try_aggregate_fast(sensor, from, to, op)
                .map(PipelineAnswer::Scalar),
        };
        if let Some(answer) = fast {
            self.pipeline.stats.completed_fast += 1;
            self.pipeline
                .tracer
                .record(id, t, SpanEvent::CacheHit { path: "fast" });
            self.finish_trace(id, t, &answer);
            self.pipeline.completed.push(CompletedQuery {
                id,
                query,
                answer,
                submitted_at: t,
                completed_at: t,
            });
            return id;
        }
        // Sliced archive-range execution: a PAST window spanning enough
        // fixed time-aligned slices decomposes into canonical slices —
        // slices any earlier query pulled serve from the two-tier slice
        // cache (a sub-window of a previously pulled span completes
        // radio-free), and only the missing slices become sub-RPCs.
        if let PipelineQuery::Past {
            sensor,
            from,
            to,
            tolerance,
        } = query
        {
            if let Some(specs) = self
                .pipeline
                .config
                .slice
                .as_ref()
                .and_then(|cfg| slice::plan(sensor, from, to, tolerance, cfg))
            {
                self.pipeline.stats.sliced += 1;
                let mut parts: Vec<SlicePart> = specs
                    .into_iter()
                    .map(|spec| SlicePart {
                        key: PullKey::Pull {
                            sensor,
                            from: spec.from,
                            to: spec.to,
                            tol_bits: tolerance.to_bits(),
                        },
                        spec,
                        samples: None,
                        sigma: tolerance / 2.0,
                        rpc_qid: None,
                    })
                    .collect();
                let mut all_hit = true;
                for p in parts.iter_mut() {
                    match self.pipeline.slice_cache.lookup(p.spec.key) {
                        Some((samples, sigma)) => {
                            p.samples = Some(samples);
                            p.sigma = sigma;
                        }
                        None => all_hit = false,
                    }
                }
                if all_hit {
                    let (answer, sigma) =
                        self.assemble_sliced(&query, &parts, SimDuration::from_millis(2));
                    self.pipeline.stats.completed_cached += 1;
                    self.pipeline.stats.completed_sliced += 1;
                    self.pipeline.tracer.record(
                        id,
                        t,
                        SpanEvent::CacheHit {
                            path: "slice_cache",
                        },
                    );
                    let sig = (answer.source() != AnswerSource::Failed).then_some(sigma);
                    self.finish_trace_with(id, t, &answer, sig);
                    self.pipeline.completed.push(CompletedQuery {
                        id,
                        query,
                        answer,
                        submitted_at: t,
                        completed_at: t,
                    });
                    return id;
                }
                let deadline = t + deadline.unwrap_or(self.pipeline.config.deadline);
                self.pipeline.tracer.record(id, t, SpanEvent::CacheMiss);
                self.pipeline.pending.push(PendingQuery {
                    id,
                    query,
                    key: PullKey::Pull {
                        sensor,
                        from,
                        to,
                        tol_bits: tolerance.to_bits(),
                    },
                    pull_from: from,
                    pull_to: to,
                    pull_tolerance: tolerance,
                    submitted_at: t,
                    deadline,
                    rpc_qid: None,
                    parts,
                    last_reply_latency: SimDuration::ZERO,
                });
                return id;
            }
        }
        let (key, pull_from, pull_to, pull_tolerance) = self.pull_plan(t, &query);
        // Shared pull-reply cache: a span any user already pulled at
        // this tolerance answers from proxy memory — unless the window
        // extends past the cached reply's coverage (freshness check),
        // in which case a fresh pull is the only honest answer.
        if matches!(key, PullKey::Pull { .. }) {
            if let Some(samples) = self.pipeline.reply_cache.lookup(key, pull_to) {
                let samples = samples.to_vec();
                let answer =
                    self.answer_from_samples(&query, &samples, SimDuration::from_millis(2));
                self.pipeline.stats.completed_cached += 1;
                self.pipeline.tracer.record(
                    id,
                    t,
                    SpanEvent::CacheHit {
                        path: "reply_cache",
                    },
                );
                self.finish_trace(id, t, &answer);
                self.pipeline.completed.push(CompletedQuery {
                    id,
                    query,
                    answer,
                    submitted_at: t,
                    completed_at: t,
                });
                return id;
            }
        }
        let deadline = t + deadline.unwrap_or(self.pipeline.config.deadline);
        self.pipeline.tracer.record(id, t, SpanEvent::CacheMiss);
        self.pipeline.pending.push(PendingQuery {
            id,
            query,
            key,
            pull_from,
            pull_to,
            pull_tolerance,
            submitted_at: t,
            deadline,
            rpc_qid: None,
            parts: Vec::new(),
            last_reply_latency: SimDuration::ZERO,
        });
        id
    }

    /// Joins a sliced query's served parts into its answer: concatenate
    /// in slice order, trim to the queried window, re-bound with the
    /// worst per-slice sigma. An empty assembly falls through to the
    /// honest failure answer.
    fn assemble_sliced(
        &self,
        query: &PipelineQuery,
        parts: &[SlicePart],
        latency: SimDuration,
    ) -> (PipelineAnswer, f64) {
        let (from, to) = match *query {
            PipelineQuery::Past { from, to, .. } => (from, to),
            _ => (SimTime::ZERO, SimTime::MAX),
        };
        let runs: Vec<Vec<(SimTime, f64)>> = parts
            .iter()
            .map(|p| p.samples.clone().unwrap_or_default())
            .collect();
        let samples = slice::assemble(&runs, from, to);
        let sigma = parts.iter().map(|p| p.sigma).fold(0.0f64, f64::max);
        (self.answer_from_samples(query, &samples, latency), sigma)
    }

    /// The radio work a precision-missed query needs: its pull window,
    /// reply tolerance, and coalescing key.
    fn pull_plan(&self, t: SimTime, query: &PipelineQuery) -> (PullKey, SimTime, SimTime, f64) {
        match *query {
            PipelineQuery::Now { sensor, tolerance } => {
                let from = t - self.config.sample_period * 3;
                (
                    PullKey::Pull {
                        sensor,
                        from,
                        to: t,
                        tol_bits: tolerance.to_bits(),
                    },
                    from,
                    t,
                    tolerance,
                )
            }
            PipelineQuery::Past {
                sensor,
                from,
                to,
                tolerance,
            } => (
                PullKey::Pull {
                    sensor,
                    from,
                    to,
                    tol_bits: tolerance.to_bits(),
                },
                from,
                to,
                tolerance,
            ),
            PipelineQuery::Aggregate {
                sensor,
                from,
                to,
                op,
            } => (
                PullKey::Aggregate {
                    sensor,
                    from,
                    to,
                    op: op_key(op),
                },
                from,
                to,
                0.0,
            ),
        }
    }

    /// The honest failure answer for a query, mirroring the blocking
    /// path's best-effort fallbacks (stale cache value or partial cached
    /// range, always advertised with sigma ∞ / `Failed`).
    fn failed_answer(&self, query: &PipelineQuery, latency: SimDuration) -> PipelineAnswer {
        match *query {
            PipelineQuery::Now { sensor, .. } => {
                let (value, sigma) = self
                    .sensors
                    .get(&sensor)
                    .and_then(|s| s.cache.latest())
                    .map(|s| (s.value, f64::INFINITY))
                    .unwrap_or((0.0, f64::INFINITY));
                PipelineAnswer::Scalar(Answer {
                    value,
                    sigma,
                    source: AnswerSource::Failed,
                    latency,
                    data_through: None,
                })
            }
            PipelineQuery::Past {
                sensor, from, to, ..
            } => {
                let samples = self
                    .sensors
                    .get(&sensor)
                    .map(|s| {
                        s.cache
                            .range(from, to)
                            .into_iter()
                            .map(|cs| (cs.t, cs.value))
                            .collect()
                    })
                    .unwrap_or_default();
                PipelineAnswer::Series(PastAnswer {
                    samples,
                    source: AnswerSource::Failed,
                    latency,
                })
            }
            PipelineQuery::Aggregate { .. } => PipelineAnswer::Scalar(Answer {
                value: f64::NAN,
                sigma: f64::INFINITY,
                source: AnswerSource::Failed,
                latency,
                data_through: None,
            }),
        }
    }

    /// Builds a query's answer from a pull reply's samples, mirroring
    /// the blocking path's value extraction exactly (value-identity is
    /// pinned by the pipeline-equivalence property test).
    fn answer_from_samples(
        &self,
        query: &PipelineQuery,
        samples: &[(SimTime, f64)],
        latency: SimDuration,
    ) -> PipelineAnswer {
        match *query {
            PipelineQuery::Now { tolerance, .. } => match samples.last() {
                Some(&(st, v)) => PipelineAnswer::Scalar(Answer {
                    value: v,
                    sigma: tolerance / 2.0,
                    source: AnswerSource::Pulled,
                    latency,
                    data_through: Some(st),
                }),
                None => self.failed_answer(query, latency),
            },
            PipelineQuery::Past { .. } => {
                if samples.is_empty() {
                    self.failed_answer(query, latency)
                } else {
                    PipelineAnswer::Series(PastAnswer {
                        samples: samples.to_vec(),
                        source: AnswerSource::Pulled,
                        latency,
                    })
                }
            }
            // Aggregates complete straight from their scalar reply, not
            // from samples.
            PipelineQuery::Aggregate { .. } => self.failed_answer(query, latency),
        }
    }

    /// Drives the pipeline one epoch tick over a contiguous sensor
    /// cluster: sensor `g` lives at `nodes[g - base_gid]` /
    /// `chans[g - base_gid]`. Thin wrapper over
    /// [`PrestoProxy::pump_queries_view`], the general form.
    pub fn pump_queries(
        &mut self,
        t: SimTime,
        base_gid: u16,
        nodes: &mut [SensorNode],
        chans: &mut [DownlinkChannel],
    ) {
        let mut view: Vec<PumpSensor<'_>> = nodes
            .iter_mut()
            .zip(chans.iter_mut())
            .zip(base_gid..)
            .map(|((node, chan), gid)| PumpSensor { gid, node, chan })
            .collect();
        self.pump_queries_view(t, &mut view);
    }

    /// Drives the pipeline one epoch tick: expires overdue queries
    /// honestly, issues RPCs for newly enqueued ones (coalescing
    /// identical (sensor, window, tolerance) needs into one pull),
    /// pumps every listed sensor's downlink channel round-robin under
    /// the per-epoch attempt budget, and completes queries whose
    /// replies arrived. `sensors` is whatever set this proxy currently
    /// serves — pending queries whose sensor is not in the view stay
    /// queued (and fail honestly at their deadline).
    pub fn pump_queries_view(&mut self, t: SimTime, sensors: &mut [PumpSensor<'_>]) {
        let pending = std::mem::take(&mut self.pipeline.pending);

        // 1. Honest expiry: overdue queries fail now. An RPC left with
        // no attached query is cancelled, so the pending-RPC table
        // cannot leak entries (sensor death included: its RPCs keep
        // failing attempts while the link is gated, then expire here).
        let (expired, mut live): (Vec<PendingQuery>, Vec<PendingQuery>) =
            pending.into_iter().partition(|q| q.deadline <= t);
        for q in expired {
            // Cancel this query's RPCs (the monolithic pull, or each
            // slice sub-RPC) unless another live query still shares
            // them — sliced or not, an RPC with no attached query must
            // not leak.
            let gid = q.query.sensor();
            let qids = q
                .rpc_qid
                .into_iter()
                .chain(q.parts.iter().filter_map(|p| p.rpc_qid));
            for qid in qids {
                let shared = live.iter().any(|p| {
                    p.rpc_qid == Some(qid)
                        || p.parts.iter().any(|pp| pp.rpc_qid == Some(qid))
                });
                if shared {
                    continue;
                }
                let cancelled = sensors
                    .iter_mut()
                    .find(|s| s.gid == gid)
                    .is_some_and(|s| s.chan.cancel_async(qid));
                if cancelled {
                    // The RPC was issued (booked in `pulls`) and
                    // produced nothing: a query-path pull failure.
                    self.stats.pull_failures += 1;
                }
            }
            let answer = self.failed_answer(&q.query, t - q.submitted_at);
            self.pipeline.stats.failed += 1;
            self.finish_trace(q.id, t, &answer);
            self.pipeline.completed.push(CompletedQuery {
                id: q.id,
                query: q.query,
                answer,
                submitted_at: q.submitted_at,
                completed_at: t,
            });
        }

        // 2. Issue radio work for queries that have none. A query (or a
        // slice part) whose (sensor, window, tolerance) an in-flight RPC
        // already covers attaches to it instead of pulling again.
        let mut in_flight_keys: BTreeMap<PullKey, u64> = BTreeMap::new();
        for q in live.iter() {
            if let Some(qid) = q.rpc_qid {
                in_flight_keys.insert(q.key, qid);
            }
            for p in q.parts.iter() {
                if let Some(qid) = p.rpc_qid {
                    in_flight_keys.insert(p.key, qid);
                }
            }
        }
        for q in live.iter_mut() {
            if q.is_sliced() {
                // Per-slice radio work: each unserved part re-checks the
                // slice cache first (a sibling query's reply may have
                // landed the slice since submit), then coalesces onto an
                // in-flight sub-RPC, then issues its own.
                let mut traced_coalesce = false;
                for p in q.parts.iter_mut() {
                    if p.samples.is_some() || p.rpc_qid.is_some() {
                        continue;
                    }
                    if let Some((samples, sigma)) = self.pipeline.slice_cache.lookup(p.spec.key)
                    {
                        p.samples = Some(samples);
                        p.sigma = sigma;
                        continue;
                    }
                    if let Some(&qid) = in_flight_keys.get(&p.key) {
                        p.rpc_qid = Some(qid);
                        self.pipeline.stats.slice_coalesced += 1;
                        if !traced_coalesce {
                            self.pipeline.tracer.record(q.id, t, SpanEvent::Coalesced);
                            traced_coalesce = true;
                        }
                        continue;
                    }
                    let gid = q.query.sensor();
                    let Some(ch) = sensors
                        .iter_mut()
                        .find(|s| s.gid == gid)
                        .map(|s| &mut *s.chan)
                    else {
                        break;
                    };
                    let qid = self.next_query_id;
                    self.next_query_id += 1;
                    let msg = DownlinkMsg::PullRequest {
                        query_id: qid,
                        from: p.spec.from,
                        to: p.spec.to,
                        tolerance: q.pull_tolerance,
                    };
                    self.stats.pulls += 1;
                    self.pipeline.stats.rpcs_issued += 1;
                    self.pipeline.stats.slice_rpcs += 1;
                    ch.submit_async(t, msg, q.deadline);
                    p.rpc_qid = Some(qid);
                    self.pipeline.tracer.record(q.id, t, SpanEvent::RpcIssued);
                    in_flight_keys.insert(p.key, qid);
                }
                continue;
            }
            if q.rpc_qid.is_some() {
                continue;
            }
            if let Some(&qid) = in_flight_keys.get(&q.key) {
                q.rpc_qid = Some(qid);
                self.pipeline.stats.coalesced += 1;
                self.pipeline.tracer.record(q.id, t, SpanEvent::Coalesced);
                continue;
            }
            let gid = q.query.sensor();
            let Some(ch) = sensors
                .iter_mut()
                .find(|s| s.gid == gid)
                .map(|s| &mut *s.chan)
            else {
                // No channel for this sensor in the pumped view; the
                // query fails honestly at its deadline.
                continue;
            };
            let qid = self.next_query_id;
            self.next_query_id += 1;
            let msg = match q.query {
                PipelineQuery::Now { .. } | PipelineQuery::Past { .. } => {
                    DownlinkMsg::PullRequest {
                        query_id: qid,
                        from: q.pull_from,
                        to: q.pull_to,
                        tolerance: q.pull_tolerance,
                    }
                }
                PipelineQuery::Aggregate { from, to, op, .. } => {
                    DownlinkMsg::AggregateRequest {
                        query_id: qid,
                        from,
                        to,
                        op,
                    }
                }
            };
            // One RPC per coalesced group, counted when issued — the
            // same attempts-per-RPC meaning `pulls` has on the blocking
            // path, and still disjoint from `recovery_pulls`.
            self.stats.pulls += 1;
            self.pipeline.stats.rpcs_issued += 1;
            ch.submit_async(t, msg, q.deadline);
            q.rpc_qid = Some(qid);
            self.pipeline.tracer.record(q.id, t, SpanEvent::RpcIssued);
            in_flight_keys.insert(q.key, qid);
        }

        // Peak-concurrency high-water mark, measured after issuance.
        let in_flight: usize = sensors.iter().map(|s| s.chan.async_in_flight()).sum();
        self.pipeline.stats.max_in_flight =
            self.pipeline.stats.max_in_flight.max(in_flight as u64);

        // 3. Pump every channel, rotating the start index each epoch so
        // the shared attempt budget is spread fairly across sensors.
        let budget_start = self.pipeline.config.epoch_attempt_budget;
        let mut budget = budget_start;
        if self.pipeline.tracer.enabled() {
            // Opt the channels into per-RPC attempt logging so traces
            // carry transmission-level detail (idempotent each epoch).
            for s in sensors.iter_mut() {
                s.chan.set_trace_attempts(true);
            }
        }
        let n = sensors.len().max(1);
        let start = self.pipeline.rr_cursor % n;
        self.pipeline.rr_cursor = self.pipeline.rr_cursor.wrapping_add(1);
        let mut events = Vec::new();
        for k in 0..sensors.len() {
            let i = (start + k) % n;
            let s = &mut sensors[i];
            if s.chan.async_in_flight() == 0 {
                continue;
            }
            events.extend(s.chan.pump_async(
                t,
                s.node,
                &self.downlink,
                &mut self.ledger,
                &mut budget,
            ));
        }
        // Pressure probe: a pump that spent its whole budget is
        // saturated — more queries than this epoch could serve.
        self.pipeline.last_pump_attempts = budget_start - budget;

        // Per-RPC attempt detail: each channel logged first
        // transmissions, retransmissions, and budget deferrals by RPC
        // id; map them back onto every pending query sharing that RPC
        // (coalesced queries inherit the attempt history).
        if self.pipeline.tracer.enabled() {
            let mut attempts: Vec<(u64, AttemptEvent)> = Vec::new();
            for s in sensors.iter_mut() {
                attempts.extend(s.chan.take_attempt_log());
            }
            for (qid, ev) in attempts {
                let span = match ev {
                    AttemptEvent::First => SpanEvent::RpcAttempt,
                    AttemptEvent::Retransmit => SpanEvent::RpcRetransmit,
                    AttemptEvent::Deferred => SpanEvent::RpcDeferred,
                };
                for q in live.iter() {
                    if q.rpc_qid == Some(qid)
                        || q.parts.iter().any(|p| p.rpc_qid == Some(qid))
                    {
                        self.pipeline.tracer.record(q.id, t, span.clone());
                    }
                }
            }
        }

        // 4. Match events back to pending queries.
        for ev in events {
            match ev {
                presto_reliability::AsyncRpcEvent::Completed {
                    query_id,
                    reply,
                    attempt_latency,
                    ..
                } => {
                    // Fold the reply into the per-sensor cache exactly
                    // as the blocking path does.
                    self.on_uplink(&reply);
                    let reply_air = self.reply_latency(reply.wire_bytes);
                    let mut served = Vec::new();
                    let mut i = 0;
                    while i < live.len() {
                        if live[i].rpc_qid == Some(query_id) {
                            served.push(live.remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    match &reply.payload {
                        UplinkPayload::PullReply {
                            samples: reply_samples,
                            ..
                        } => {
                            let samples: Vec<(SimTime, f64)> =
                                reply_samples.iter().map(|s| (s.t, s.value)).collect();
                            // Fill every live query's slice parts this
                            // reply serves, and cache the slice once.
                            // The samples are trimmed to the slice span:
                            // the freshest-sample fallback a sensor
                            // sends for an empty window lies outside the
                            // span and must not masquerade as content.
                            let quant = self
                                .pipeline
                                .config
                                .slice
                                .as_ref()
                                .map_or(0.05, |c| c.aging_quant_step);
                            let mut slice_insert = None;
                            for q in live.iter_mut() {
                                let mut filled = false;
                                for p in q.parts.iter_mut() {
                                    if p.rpc_qid != Some(query_id) {
                                        continue;
                                    }
                                    let trimmed: Vec<(SimTime, f64)> = samples
                                        .iter()
                                        .copied()
                                        .filter(|&(st, _)| {
                                            st >= p.spec.from && st <= p.spec.to
                                        })
                                        .collect();
                                    let sigma = slice::slice_sigma(
                                        q.pull_tolerance,
                                        reply_samples.iter().map(|s| s.quality),
                                        quant,
                                    );
                                    if slice_insert.is_none() {
                                        slice_insert = Some((
                                            p.spec.key,
                                            p.spec.span_end,
                                            sigma,
                                            trimmed.clone(),
                                        ));
                                    }
                                    p.sigma = sigma;
                                    p.samples = Some(trimmed);
                                    p.rpc_qid = None;
                                    filled = true;
                                }
                                if filled {
                                    q.last_reply_latency = attempt_latency + reply_air;
                                }
                            }
                            if let Some((key, span_end, sigma, trimmed)) = slice_insert {
                                self.pipeline.slice_cache.insert(
                                    key,
                                    span_end,
                                    reply.sent_at,
                                    sigma,
                                    trimmed,
                                );
                            }
                            if let Some(first) = served.first() {
                                // Share the reply: later queries over
                                // this span skip the radio. `sent_at`
                                // is the sensor-side serving time — the
                                // instant the samples' coverage ends.
                                self.pipeline.reply_cache.insert(
                                    first.key,
                                    reply.sent_at,
                                    samples.clone(),
                                );
                            }
                            for q in served {
                                let latency =
                                    (t - q.submitted_at) + attempt_latency + reply_air;
                                let answer =
                                    self.answer_from_samples(&q.query, &samples, latency);
                                self.pipeline.stats.completed_pull += 1;
                                self.finish_trace(q.id, t, &answer);
                                self.pipeline.completed.push(CompletedQuery {
                                    id: q.id,
                                    query: q.query,
                                    answer,
                                    submitted_at: q.submitted_at,
                                    completed_at: t,
                                });
                            }
                        }
                        UplinkPayload::AggregateReply {
                            value,
                            count,
                            sigma,
                            ..
                        } => {
                            for q in served {
                                let latency =
                                    (t - q.submitted_at) + attempt_latency + reply_air;
                                let to = match &q.query {
                                    PipelineQuery::Aggregate { to, .. } => Some(*to),
                                    _ => None,
                                };
                                // An empty range carries nothing: that
                                // is an honest failure, not an Ok
                                // answer with no age (mirrors the
                                // blocking path exactly).
                                let answer = PipelineAnswer::Scalar(Answer {
                                    value: *value,
                                    sigma: if *count == 0 {
                                        f64::INFINITY
                                    } else {
                                        *sigma
                                    },
                                    source: if *count == 0 {
                                        AnswerSource::Failed
                                    } else {
                                        AnswerSource::Pulled
                                    },
                                    latency,
                                    data_through: if *count == 0 { None } else { to },
                                });
                                self.pipeline.stats.completed_pull += 1;
                                self.finish_trace(q.id, t, &answer);
                                self.pipeline.completed.push(CompletedQuery {
                                    id: q.id,
                                    query: q.query,
                                    answer,
                                    submitted_at: q.submitted_at,
                                    completed_at: t,
                                });
                            }
                        }
                        _ => {}
                    }
                }
                presto_reliability::AsyncRpcEvent::Expired { query_id, .. } => {
                    // The RPC's deadline (its issuing query's) passed in
                    // the channel. That issuing query was expired in
                    // phase 1; coalesced queries with time left re-issue
                    // a fresh RPC on the next pump.
                    self.stats.pull_failures += 1;
                    for q in live.iter_mut() {
                        let mut hit = false;
                        if q.rpc_qid == Some(query_id) {
                            q.rpc_qid = None;
                            hit = true;
                        }
                        for p in q.parts.iter_mut() {
                            if p.rpc_qid == Some(query_id) {
                                p.rpc_qid = None;
                                hit = true;
                            }
                        }
                        if hit {
                            self.pipeline.tracer.record(q.id, t, SpanEvent::RpcExpired);
                        }
                    }
                }
            }
        }

        // 5. Assemble sliced queries whose every slice is now served
        // (from cache at issue time, from replies this epoch, or both).
        let mut i = 0;
        while i < live.len() {
            if !live[i].parts_complete() {
                i += 1;
                continue;
            }
            let q = live.remove(i);
            let latency = (t - q.submitted_at) + q.last_reply_latency;
            let (answer, sigma) = self.assemble_sliced(&q.query, &q.parts, latency);
            self.pipeline.stats.completed_pull += 1;
            self.pipeline.stats.completed_sliced += 1;
            let sig = (answer.source() != AnswerSource::Failed).then_some(sigma);
            self.finish_trace_with(q.id, t, &answer, sig);
            self.pipeline.completed.push(CompletedQuery {
                id: q.id,
                query: q.query,
                answer,
                submitted_at: q.submitted_at,
                completed_at: t,
            });
        }
        self.pipeline.pending = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_net::LinkModel;
    use presto_sensor::{PushPolicy, SensorConfig};
    use presto_sim::SimRng;

    fn diurnal(t: SimTime) -> f64 {
        21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos()
    }

    /// A downlink channel whose first hop loses frames at `loss`.
    fn chan_with_loss(loss: f64, seed: u64) -> DownlinkChannel {
        if loss > 0.0 {
            DownlinkChannel::over(LinkModel::new(
                presto_net::LossProcess::Bernoulli(loss),
                SimRng::new(seed),
            ))
        } else {
            DownlinkChannel::perfect()
        }
    }

    /// Runs `days` of samples through sensor + proxy with the given push
    /// policy and downlink loss, returning (proxy, node, channel).
    fn run_deployment(
        push: PushPolicy,
        days: u64,
        loss: f64,
    ) -> (PrestoProxy, SensorNode, DownlinkChannel) {
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        proxy.register_sensor(3);
        let mut node = SensorNode::new(
            3,
            SensorConfig {
                push,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut chan = chan_with_loss(loss, 9);
        let epochs = days * 86_400 / 31;
        for i in 0..epochs {
            let t = SimTime::from_secs(31 * i);
            for msg in node.on_sample(t, diurnal(t), Some(proxy.ledger_mut())) {
                proxy.on_uplink(&msg);
            }
            // Periodic training opportunity once per simulated hour.
            if i % 120 == 0 {
                proxy.maybe_train_and_push(t, 3, &mut node, &mut chan);
            }
        }
        (proxy, node, chan)
    }

    #[test]
    fn model_gets_trained_and_pushed() {
        let (proxy, node, _) = run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 2, 0.0);
        assert!(proxy.stats().models_pushed >= 1);
        assert!(node.has_model());
    }

    #[test]
    fn model_driven_push_quiets_the_uplink() {
        let (proxy_md, node_md, _) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 3, 0.0);
        let (_, node_stream, _) = run_deployment(
            PushPolicy::Batched {
                interval: SimDuration::from_mins(1),
                compression: None,
            },
            3,
            0.0,
        );
        // Once the model is installed the sensor barely talks; the
        // streaming sensor talks constantly.
        assert!(
            node_md.stats().bytes_sent < node_stream.stats().bytes_sent / 5,
            "model-driven {} vs streaming {}",
            node_md.stats().bytes_sent,
            node_stream.stats().bytes_sent
        );
        assert!(proxy_md.stats().samples_cached > 0);
    }

    #[test]
    fn now_query_cache_hit_on_fresh_data() {
        let (mut proxy, mut node, mut link) = run_deployment(
            PushPolicy::Batched {
                interval: SimDuration::from_secs(31),
                compression: None,
            },
            1,
            0.0,
        );
        let t = SimTime::from_days(1);
        let a = proxy.answer_now(t, 3, 1.0, &mut node, &mut link);
        assert_eq!(a.source, AnswerSource::CacheHit);
        assert!(a.latency < SimDuration::from_millis(5));
    }

    #[test]
    fn now_query_extrapolates_when_sensor_is_silent() {
        let (mut proxy, mut node, mut link) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 3, 0.0);
        // Advance well past the last sample so the cache is stale.
        let t = SimTime::from_days(3) + SimDuration::from_mins(30);
        let a = proxy.answer_now(t, 3, 1.5, &mut node, &mut link);
        assert_eq!(a.source, AnswerSource::Extrapolated);
        // The answer must be within tolerance of the true diurnal value.
        assert!(
            (a.value - diurnal(t)).abs() < 1.5,
            "{} vs {}",
            a.value,
            diurnal(t)
        );
    }

    #[test]
    fn now_query_pulls_when_tolerance_is_tight() {
        let (mut proxy, mut node, mut link) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 3, 0.0);
        let t = SimTime::from_days(3) + SimDuration::from_mins(30);
        // Tolerance tighter than the push tolerance: extrapolation is not
        // good enough, so the proxy must pull... but the archive has no
        // data this recent (sensor stopped sampling at day 3), so the
        // pull returns the freshest archived samples.
        let a = proxy.answer_now(t, 3, 0.2, &mut node, &mut link);
        assert_eq!(a.source, AnswerSource::Pulled);
        assert!(proxy.stats().pulls >= 1);
        // Pull latency includes the downlink preamble (1 s LPL).
        assert!(a.latency >= SimDuration::from_secs(1));
    }

    #[test]
    fn past_query_cache_hit_under_streaming() {
        let (mut proxy, mut node, mut link) = run_deployment(
            PushPolicy::Batched {
                interval: SimDuration::from_secs(31),
                compression: None,
            },
            1,
            0.0,
        );
        let t = SimTime::from_days(1);
        let a = proxy.answer_past(
            t,
            3,
            SimTime::from_hours(5),
            SimTime::from_hours(6),
            1.0,
            &mut node,
            &mut link,
        );
        assert_eq!(a.source, AnswerSource::CacheHit);
        assert!(a.samples.len() > 100);
    }

    #[test]
    fn past_query_pulls_from_archive_on_miss() {
        let (mut proxy, mut node, mut link) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 2, 0.0);
        let t = SimTime::from_days(2);
        // Tight tolerance defeats extrapolation; the cache is sparse under
        // model-driven push, so the proxy must pull from the archive.
        let a = proxy.answer_past(
            t,
            3,
            SimTime::from_hours(30),
            SimTime::from_hours(31),
            0.1,
            &mut node,
            &mut link,
        );
        assert_eq!(a.source, AnswerSource::Pulled);
        assert!(!a.samples.is_empty());
        // Pulled values match the truth within the pull codec tolerance.
        for &(ts, v) in &a.samples {
            assert!((v - diurnal(ts)).abs() < 0.2, "{v} vs {}", diurnal(ts));
        }
    }

    #[test]
    fn past_extrapolation_covers_model_era_only() {
        let (mut proxy, mut node, mut link) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 2, 0.0);
        let t = SimTime::from_days(2);
        // A range before any model was installed cannot be extrapolated.
        let a = proxy.answer_past(
            t,
            3,
            SimTime::from_mins(10),
            SimTime::from_mins(40),
            1.5,
            &mut node,
            &mut link,
        );
        assert_ne!(a.source, AnswerSource::Extrapolated);
        // A later range can.
        let b = proxy.answer_past(
            t,
            3,
            SimTime::from_hours(40),
            SimTime::from_hours(41),
            1.5,
            &mut node,
            &mut link,
        );
        assert_eq!(b.source, AnswerSource::Extrapolated);
        for &(ts, v) in &b.samples {
            assert!((v - diurnal(ts)).abs() <= 1.5 + 1e-6);
        }
    }

    #[test]
    fn unregistered_sensor_fails_cleanly() {
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        let mut node = SensorNode::new(9, SensorConfig::default(), LinkModel::perfect());
        let mut chan = DownlinkChannel::perfect();
        let a = proxy.answer_now(SimTime::ZERO, 9, 1.0, &mut node, &mut chan);
        assert_eq!(a.source, AnswerSource::Failed);
    }

    #[test]
    fn lossy_downlink_retries_then_fails() {
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        proxy.register_sensor(1);
        let mut node = SensorNode::new(
            1,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut dead = chan_with_loss(1.0, 4);
        let a = proxy.answer_now(SimTime::from_hours(1), 1, 0.5, &mut node, &mut dead);
        assert_eq!(a.source, AnswerSource::Failed);
        assert_eq!(proxy.stats().pull_failures, 1);
        // The channel retried before giving up, and every timeout is in
        // the answer's latency.
        assert!(dead.stats().retransmits >= 1);
        assert!(a.latency >= SimDuration::from_secs(5));
    }

    #[test]
    fn spatial_extrapolation_answers_for_silent_sensor() {
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        for id in 0..3u16 {
            proxy.register_sensor(id);
        }
        // Feed correlated streams for sensors 0..2 via batch messages.
        let mut rng = SimRng::new(11);
        for i in 0..500u64 {
            let t = SimTime::from_secs(31 * i);
            let field = diurnal(t) + rng.gaussian_ms(0.0, 0.1);
            for id in 0..3u16 {
                let msg = UplinkMsg {
                    sensor: id,
                    sent_at: t,
                    wire_bytes: 15,
                    payload: UplinkPayload::Value {
                        value: field + id as f64 * 0.5,
                    },
                };
                proxy.on_uplink(&msg);
            }
        }
        proxy.refresh_spatial_model();
        // Sensor 2 goes silent; 0 and 1 keep reporting.
        let t = SimTime::from_secs(31 * 500);
        for id in 0..2u16 {
            proxy.on_uplink(&UplinkMsg {
                sensor: id,
                sent_at: t,
                wire_bytes: 15,
                payload: UplinkPayload::Value {
                    value: diurnal(t) + id as f64 * 0.5,
                },
            });
        }
        let mut node = SensorNode::new(
            2,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        // Kill the pull path so only spatial inference can answer. Query
        // at an instant where the target's cache is stale (93 s old,
        // beyond the 62 s freshness window) but the neighbours' entries
        // (62 s old) are still fresh.
        let mut dead = chan_with_loss(1.0, 5);
        let a = proxy.answer_now(t + SimDuration::from_secs(62), 2, 1.0, &mut node, &mut dead);
        assert_eq!(a.source, AnswerSource::SpatialExtrapolated);
        assert!((a.value - (diurnal(t) + 1.0)).abs() < 1.0, "{}", a.value);
    }

    #[test]
    fn pull_counters_are_disjoint_and_count_rpcs() {
        // One query pull, one aggregate pull, one recovery pull, one
        // failed query pull: `pulls` counts exactly one per query-path
        // RPC issued (success or not), `pull_failures` only the failed
        // query RPC, `recovery_pulls` only the recovery replay.
        let (mut proxy, mut node, mut chan) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 1, 0.0);
        let t = SimTime::from_days(1);
        let a = proxy.answer_past(
            t,
            3,
            SimTime::from_hours(6),
            SimTime::from_hours(7),
            0.1,
            &mut node,
            &mut chan,
        );
        assert_eq!(a.source, AnswerSource::Pulled);
        assert_eq!(proxy.stats().pulls, 1);
        assert_eq!(proxy.stats().pull_failures, 0);
        assert_eq!(proxy.stats().recovery_pulls, 0);

        let ag = proxy.answer_aggregate(
            t,
            3,
            SimTime::from_hours(6),
            SimTime::from_hours(8),
            presto_sensor::AggregateOp::Mean,
            &mut node,
            &mut chan,
        );
        assert_eq!(ag.source, AnswerSource::Pulled);
        assert_eq!(proxy.stats().pulls, 2, "aggregate RPC counts once");

        let replayed = proxy.recover_span(
            t,
            3,
            SimTime::from_hours(2),
            SimTime::from_hours(3),
            0.05,
            &mut node,
            &mut chan,
        );
        assert!(replayed.is_some());
        assert_eq!(proxy.stats().recovery_pulls, 1);
        assert_eq!(
            proxy.stats().pulls,
            2,
            "recovery must not double-count into query pulls"
        );
        assert_eq!(proxy.stats().pull_failures, 0);

        let mut dead = chan_with_loss(1.0, 77);
        let failed = proxy.answer_past(
            t,
            3,
            t - SimDuration::from_mins(30),
            t,
            0.01,
            &mut node,
            &mut dead,
        );
        assert_eq!(failed.source, AnswerSource::Failed);
        assert_eq!(proxy.stats().pulls, 3, "failed RPC still counts as issued");
        assert_eq!(proxy.stats().pull_failures, 1);
        assert_eq!(proxy.stats().recovery_pulls, 1);
    }

    #[test]
    fn failed_recovery_does_not_book_query_pull_failures() {
        let (mut proxy, mut node, _) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 1, 0.0);
        let mut dead = chan_with_loss(1.0, 78);
        let out = proxy.recover_span(
            SimTime::from_days(1),
            3,
            SimTime::from_hours(2),
            SimTime::from_hours(3),
            0.05,
            &mut node,
            &mut dead,
        );
        assert!(out.is_none());
        assert_eq!(proxy.stats().recovery_pulls, 1);
        assert_eq!(proxy.stats().pulls, 0);
        assert_eq!(proxy.stats().pull_failures, 0);
    }

    #[test]
    fn aggregate_over_aged_rows_reports_honest_sigma() {
        // Tiny archive so early data ages into wavelet summaries, then
        // aggregate over the aged span: the answer must not claim
        // sigma = 0.
        let mut node = SensorNode::new(
            3,
            SensorConfig {
                push: PushPolicy::Silent,
                archive: presto_archive::ArchiveConfig {
                    capacity_bytes: 8 * 1024,
                    ..presto_archive::ArchiveConfig::default()
                },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        proxy.register_sensor(3);
        let mut chan = DownlinkChannel::perfect();
        let mut t = SimTime::ZERO;
        for i in 0..4000u64 {
            t = SimTime::from_secs(31 * i);
            node.on_sample(t, diurnal(t), None);
        }
        let a = proxy.answer_aggregate(
            t,
            3,
            SimTime::ZERO,
            SimTime::from_hours(2),
            presto_sensor::AggregateOp::Mean,
            &mut node,
            &mut chan,
        );
        assert_eq!(a.source, AnswerSource::Pulled);
        assert!(
            a.sigma > 0.0 && a.sigma.is_finite(),
            "aged aggregate claimed sigma {}",
            a.sigma
        );
    }

    #[test]
    fn aggregate_cache_hit_under_streaming() {
        let (mut proxy, mut node, mut link) = run_deployment(
            PushPolicy::Batched {
                interval: SimDuration::from_secs(31),
                compression: None,
            },
            1,
            0.0,
        );
        let t = SimTime::from_days(1);
        let a = proxy.answer_aggregate(
            t,
            3,
            SimTime::from_hours(10),
            SimTime::from_hours(12),
            presto_sensor::AggregateOp::Mean,
            &mut node,
            &mut link,
        );
        assert_eq!(a.source, AnswerSource::CacheHit);
        // Mean of the diurnal curve over 10:00–12:00 sits between the
        // curve endpoints.
        let lo = diurnal(SimTime::from_hours(10));
        let hi = diurnal(SimTime::from_hours(12));
        assert!(
            a.value >= lo.min(hi) - 0.1 && a.value <= lo.max(hi) + 0.1,
            "mean {} outside [{lo}, {hi}]",
            a.value
        );
    }

    /// A silent sensor with ~200 archived samples plus a proxy whose
    /// radio-free fast paths are disabled (empty cache, no model,
    /// impossible coverage threshold), so every pipeline query takes
    /// the pull path.
    fn pipeline_rig(loss: f64, seed: u64) -> (PrestoProxy, SensorNode, DownlinkChannel) {
        let mut proxy = PrestoProxy::new(ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            ..ProxyConfig::default()
        });
        proxy.register_sensor(0);
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        for i in 0..200u64 {
            node.on_sample(SimTime::from_secs(31 * i), diurnal(SimTime::from_secs(31 * i)), None);
        }
        (proxy, node, chan_with_loss(loss, seed))
    }

    fn past(from_s: u64, to_s: u64, tolerance: f64) -> PipelineQuery {
        PipelineQuery::Past {
            sensor: 0,
            from: SimTime::from_secs(from_s),
            to: SimTime::from_secs(to_s),
            tolerance,
        }
    }

    #[test]
    fn pipeline_coalesces_identical_windows_into_one_pull() {
        let (mut proxy, mut node, mut chan) = pipeline_rig(0.0, 1);
        let t = SimTime::from_secs(31 * 210);
        // Three users ask the same window, two ask another.
        for _ in 0..3 {
            proxy.submit_query(t, past(31 * 10, 31 * 60, 0.3));
        }
        for _ in 0..2 {
            proxy.submit_query(t, past(31 * 100, 31 * 150, 0.3));
        }
        assert_eq!(proxy.pipeline().pending_queries(), 5);
        proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 5, "all coalesced queries complete from one reply");
        for c in &done {
            assert_eq!(c.answer.source(), AnswerSource::Pulled);
        }
        // Identical windows shared one RPC: two pulls on the wire, two
        // flash serves at the sensor, three coalesced riders.
        assert_eq!(proxy.stats().pulls, 2);
        assert_eq!(node.stats().pulls_served, 2);
        let ps = proxy.pipeline().stats();
        assert_eq!(ps.rpcs_issued, 2);
        assert_eq!(ps.coalesced, 3);
        assert_eq!(ps.max_in_flight, 2, "both RPCs overlapped in flight");
        // Bookkeeping: nothing leaks after completion.
        assert_eq!(proxy.pipeline().pending_queries(), 0);
        assert_eq!(chan.async_in_flight(), 0);
        assert_eq!(chan.outstanding_rpcs(), 0);
        // Coalesced answers are identical to each other.
        let a0 = &done[0].answer;
        let a1 = &done[1].answer;
        match (a0, a1) {
            (PipelineAnswer::Series(x), PipelineAnswer::Series(y)) => {
                assert_eq!(x.samples, y.samples);
            }
            _ => panic!("past queries produce series"),
        }
    }

    #[test]
    fn pipeline_reply_cache_serves_repeat_window_without_radio() {
        let (mut proxy, mut node, mut chan) = pipeline_rig(0.0, 2);
        let t = SimTime::from_secs(31 * 210);
        proxy.submit_query(t, past(31 * 10, 31 * 60, 0.3));
        proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        let first = proxy.take_completed_queries().remove(0);
        let pulls_after_first = proxy.stats().pulls;
        // A later user asks the same window: served from the shared
        // reply cache, zero radio work.
        let t2 = t + SimDuration::from_mins(5);
        proxy.submit_query(t2, past(31 * 10, 31 * 60, 0.3));
        let second = proxy.take_completed_queries().remove(0);
        assert_eq!(proxy.stats().pulls, pulls_after_first, "no new RPC");
        assert_eq!(proxy.pipeline().stats().completed_cached, 1);
        assert_eq!(proxy.pipeline().reply_cache().hits(), 1);
        match (&first.answer, &second.answer) {
            (PipelineAnswer::Series(x), PipelineAnswer::Series(y)) => {
                assert_eq!(x.samples, y.samples, "cache serves the identical reply");
            }
            _ => panic!("past queries produce series"),
        }
    }

    #[test]
    fn pipeline_reply_cache_rejects_stale_coverage_regression() {
        // Regression for the staleness boundary: a cached reply must
        // not serve a query whose window extends past the reply's
        // coverage. Window [3100 s, 12400 s] is pulled while its end is
        // still in the future (t = 6200 s): the reply covers only what
        // was archived by then. After the sensor archives through the
        // window's end, a repeat query over the same window must take a
        // fresh pull — serving the cached reply would silently drop the
        // newer half.
        let (mut proxy, mut node, mut chan) = pipeline_rig(0.0, 3);
        let open_window = past(3_100, 12_400, 0.3);
        let t1 = SimTime::from_secs(6_200);
        proxy.submit_query(t1, open_window);
        proxy.pump_queries(t1, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        let first = proxy.take_completed_queries().remove(0);
        let first_n = match &first.answer {
            PipelineAnswer::Series(a) => {
                assert_eq!(a.source, AnswerSource::Pulled);
                a.samples.len()
            }
            _ => panic!("past query produces a series"),
        };
        // The sensor keeps sampling through the window's end.
        for i in 200..500u64 {
            let ts = SimTime::from_secs(31 * i);
            node.on_sample(ts, diurnal(ts), None);
        }
        let t2 = SimTime::from_secs(31 * 500);
        proxy.submit_query(t2, open_window);
        assert_eq!(
            proxy.pipeline().pending_queries(),
            1,
            "stale cached reply must not serve the repeat query"
        );
        assert!(proxy.pipeline().reply_cache().stale_rejections() >= 1);
        proxy.pump_queries(t2, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        let second = proxy.take_completed_queries().remove(0);
        match &second.answer {
            PipelineAnswer::Series(a) => {
                assert_eq!(a.source, AnswerSource::Pulled);
                assert!(
                    a.samples.len() > first_n,
                    "fresh pull must cover the newer span: {} vs {first_n}",
                    a.samples.len()
                );
                let last = a.samples.last().expect("non-empty").0;
                assert!(last > SimTime::from_secs(6_200), "newer half missing");
            }
            _ => panic!("past query produces a series"),
        }
    }

    #[test]
    fn pipeline_deadline_fails_honestly_and_leaves_no_leaks() {
        let (mut proxy, mut node, mut chan) = pipeline_rig(1.0, 4);
        let t0 = SimTime::from_secs(31 * 210);
        let deadline = proxy.config().pipeline.deadline;
        for i in 0..4u64 {
            proxy.submit_query(t0, past(31 * 10 * (i + 1), 31 * 10 * (i + 2), 0.3));
        }
        // Pump epoch by epoch until past the deadline.
        let epochs = deadline.div_duration(SimDuration::from_secs(31)) + 2;
        for e in 0..epochs {
            let t = t0 + SimDuration::from_secs(31) * e;
            proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        }
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 4, "every query terminates by its deadline");
        for c in &done {
            match &c.answer {
                PipelineAnswer::Series(a) => assert_eq!(a.source, AnswerSource::Failed),
                PipelineAnswer::Scalar(a) => {
                    assert_eq!(a.source, AnswerSource::Failed);
                    assert!(a.sigma.is_infinite());
                }
            }
            assert!(c.completed_at <= c.submitted_at + deadline + SimDuration::from_secs(31));
        }
        // Bookkeeping: no leaked PendingQuery or pending-RPC entries.
        assert_eq!(proxy.pipeline().pending_queries(), 0);
        assert_eq!(chan.async_in_flight(), 0);
        assert_eq!(chan.outstanding_rpcs(), 0);
        assert!(proxy.stats().pull_failures >= 4);
    }

    #[test]
    fn pipeline_pull_counters_stay_disjoint_under_concurrency() {
        let (mut proxy, mut node, mut chan) = pipeline_rig(0.0, 5);
        let t = SimTime::from_secs(31 * 210);
        // Two pipeline pulls in flight plus a recovery replay.
        proxy.submit_query(t, past(31 * 10, 31 * 60, 0.3));
        proxy.submit_query(
            t,
            PipelineQuery::Aggregate {
                sensor: 0,
                from: SimTime::from_secs(31 * 10),
                to: SimTime::from_secs(31 * 120),
                op: presto_sensor::AggregateOp::Mean,
            },
        );
        proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        let replayed = proxy.recover_span(
            t,
            0,
            SimTime::from_secs(31 * 100),
            SimTime::from_secs(31 * 150),
            0.05,
            &mut node,
            &mut chan,
        );
        assert!(replayed.is_some());
        assert_eq!(proxy.stats().pulls, 2, "one per pipeline RPC issued");
        assert_eq!(proxy.stats().recovery_pulls, 1);
        assert_eq!(proxy.stats().pull_failures, 0);
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|c| c.answer.source() == AnswerSource::Pulled));
    }

    #[test]
    fn recovery_resyncs_the_replica_instead_of_dropping_it() {
        // Two days of model-driven push: a model is trained and pushed.
        let (mut proxy, mut node, mut chan) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 2, 0.0);
        assert!(proxy.stats().models_pushed >= 1);
        let t = SimTime::from_days(2);
        // Repair a span (as the gap tracker would after lost pushes).
        let replayed = proxy.recover_span(
            t,
            3,
            t - SimDuration::from_hours(2),
            t,
            0.05,
            &mut node,
            &mut chan,
        );
        assert!(replayed.expect("repair succeeds") > 100);
        assert_eq!(proxy.stats().replica_resyncs, 1, "replica resynced");
        // The model survived: a NOW query past cache freshness is still
        // answered by extrapolation (the old fence dropped the replica
        // and forced a pull here), and stays within the push tolerance.
        let t2 = t + SimDuration::from_mins(5);
        let a = proxy.answer_now(t2, 3, 1.0, &mut node, &mut chan);
        assert_eq!(a.source, AnswerSource::Extrapolated, "model kept");
        assert!((a.value - diurnal(t2)).abs() < 1.5, "{} vs {}", a.value, diurnal(t2));
    }

    #[test]
    fn per_query_deadline_overrides_the_pipeline_default() {
        // Total loss: nothing can complete, so deadlines decide.
        let (mut proxy, mut node, mut chan) = pipeline_rig(1.0, 11);
        let t0 = SimTime::from_secs(31 * 210);
        let tight = proxy.submit_query_with_deadline(
            t0,
            past(31 * 10, 31 * 60, 0.3),
            Some(SimDuration::from_secs(60)),
        );
        let loose = proxy.submit_query(t0, past(31 * 70, 31 * 120, 0.3));
        // Two epochs (~62 s) later the tight query has failed honestly;
        // the default-deadline query is still pending.
        for e in 0..3u64 {
            let t = t0 + SimDuration::from_secs(31) * e;
            proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        }
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, tight);
        assert_eq!(done[0].answer.source(), AnswerSource::Failed);
        assert!(done[0].completed_at <= t0 + SimDuration::from_secs(93));
        assert_eq!(proxy.pipeline().pending_queries(), 1);
        // The loose query runs to the default deadline, then fails too.
        let deadline = proxy.config().pipeline.deadline;
        let epochs = deadline.div_duration(SimDuration::from_secs(31)) + 2;
        for e in 0..epochs {
            let t = t0 + SimDuration::from_secs(31) * e;
            proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        }
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, loose);
        assert_eq!(proxy.pipeline().pending_queries(), 0);
        assert_eq!(chan.async_in_flight(), 0);
    }

    #[test]
    fn pump_view_serves_non_contiguous_sensor_ids() {
        // A proxy serving an arbitrary sensor set (as after adopting a
        // crashed peer's cluster): gid 9 with no gid 0..8 anywhere.
        let mut proxy = PrestoProxy::new(ProxyConfig {
            past_coverage_hit: f64::INFINITY,
            ..ProxyConfig::default()
        });
        proxy.register_sensor(9);
        let mut node = SensorNode::new(
            9,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        for i in 0..200u64 {
            node.on_sample(SimTime::from_secs(31 * i), diurnal(SimTime::from_secs(31 * i)), None);
        }
        let mut chan = DownlinkChannel::perfect();
        let t = SimTime::from_secs(31 * 210);
        proxy.submit_query(
            t,
            PipelineQuery::Past {
                sensor: 9,
                from: SimTime::from_secs(31 * 10),
                to: SimTime::from_secs(31 * 60),
                tolerance: 0.3,
            },
        );
        let mut view = [PumpSensor {
            gid: 9,
            node: &mut node,
            chan: &mut chan,
        }];
        proxy.pump_queries_view(t, &mut view);
        let done = proxy.take_completed_queries();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].answer.source(), AnswerSource::Pulled);
        assert_eq!(proxy.pipeline().last_pump_attempts, 1);
    }

    #[test]
    fn crash_reset_wipes_query_state_and_caches() {
        let (mut proxy, mut node, mut chan) = pipeline_rig(0.0, 12);
        let t = SimTime::from_secs(31 * 210);
        proxy.submit_query(t, past(31 * 10, 31 * 60, 0.3));
        proxy.pump_queries(t, 0, std::slice::from_mut(&mut node), std::slice::from_mut(&mut chan));
        // One answer completed (uncollected), one fresh query pending.
        proxy.submit_query(t, past(31 * 70, 31 * 120, 0.3));
        assert_eq!(proxy.pipeline().pending_queries(), 1);
        assert!(!proxy.cache(0).expect("registered").is_empty());
        let dropped = proxy.crash_reset();
        assert_eq!(dropped, 2);
        assert_eq!(proxy.pipeline().pending_queries(), 0);
        assert!(proxy.take_completed_queries().is_empty());
        assert!(proxy.cache(0).expect("registered").is_empty());
        assert!(proxy.pipeline().reply_cache().is_empty());
        // The channel's proxy half is cleared by its own reset (the
        // only RPC here completed before the crash, so nothing to drop).
        assert_eq!(chan.reset_proxy_state(), 0);
        assert_eq!(chan.async_in_flight(), 0);
        assert_eq!(chan.outstanding_rpcs(), 0);
    }

    #[test]
    fn aggregate_ships_operator_on_cache_miss() {
        // Model-driven push leaves the cache sparse, so the operator is
        // evaluated at the sensor and only a scalar returns.
        let (mut proxy, mut node, mut link) =
            run_deployment(PushPolicy::ModelDriven { tolerance: 1.0 }, 1, 0.0);
        let t = SimTime::from_days(1);
        let before = node.stats().bytes_sent;
        let a = proxy.answer_aggregate(
            t,
            3,
            SimTime::from_hours(6),
            SimTime::from_hours(12),
            presto_sensor::AggregateOp::Max,
            &mut node,
            &mut link,
        );
        let reply_bytes = node.stats().bytes_sent - before;
        assert_eq!(a.source, AnswerSource::Pulled);
        assert!(a.value.is_finite());
        // Six hours of data (≈700 samples) crossed the radio as ~23 B.
        assert!(reply_bytes < 40, "{reply_bytes} bytes");
        // Truth check against the generator.
        let mut truth = f64::NEG_INFINITY;
        let mut ts = SimTime::from_hours(6);
        while ts <= SimTime::from_hours(12) {
            truth = truth.max(diurnal(ts));
            ts += SimDuration::from_secs(31);
        }
        assert!((a.value - truth).abs() < 0.05, "{} vs {truth}", a.value);
    }
}
