//! Sliced archive-range execution: fixed time-aligned slices and the
//! two-tier slice cache.
//!
//! A big archive-range query used to be one monolithic pull, and the
//! shared [`crate::pipeline::PullReplyCache`] only serves exact
//! (sensor, window, tolerance) matches — so overlapping windows from
//! many users each re-pull the radio for mostly the same rows. This
//! module splits range queries into **fixed, time-aligned slices**
//! (the HTTP range-slicing idiom, applied to archive time):
//!
//! * the **slice calculator** ([`plan`]) maps a query window onto
//!   canonical slice keys — slice `i` covers
//!   `[i·len, (i+1)·len)` on the absolute simulation clock, so the
//!   same slice key falls out of *any* window overlapping it;
//! * each missing slice becomes its own sub-RPC through the existing
//!   async downlink machinery (per-slice retry, deferral, and
//!   coalescing across queries);
//! * the **assembler** ([`assemble`]) joins per-slice replies back
//!   into the query's window and re-bounds the result with the worst
//!   per-slice codec/aging sigma ([`slice_sigma`]);
//! * complete slices land in a **two-tier cache** ([`TieredSliceCache`]):
//!   a hot L1 in RAM and a bounded L2 spill, with promotion back to L1
//!   on an L2 hit. A sub-window of any previously pulled span is served
//!   radio-free from cached slices — containment serving falls out of
//!   the slice decomposition instead of needing its own machinery.
//!
//! Staleness is handled by construction: only slices whose span was
//! **fully archived at serve time** (`served_at >= span end`) are
//! cached, so a cached slice is immutable and can never serve data it
//! does not have. The trailing, still-filling slice of a window is
//! re-pulled each time.

use std::collections::VecDeque;

use presto_archive::Quality;
use presto_sim::{SimDuration, SimTime};

/// Sliced-execution parameters. `None` in
/// [`crate::PipelineConfig::slice`] keeps the monolithic pull path
/// byte-identical to the pre-slice behavior.
#[derive(Clone, Debug)]
pub struct SliceConfig {
    /// Fixed slice length; slice `i` covers `[i·len, (i+1)·len)` on
    /// the absolute simulation clock.
    pub slice_len: SimDuration,
    /// Minimum number of slices a PAST window must span before the
    /// sliced path engages; narrower windows stay monolithic (one
    /// small pull beats several sub-RPCs).
    pub min_slices: u64,
    /// Hot tier (L1, RAM) capacity, in slices.
    pub l1_capacity: usize,
    /// Spill tier (L2) capacity, in slices; 0 disables the spill tier
    /// (L1 evictions drop instead of demoting).
    pub l2_capacity: usize,
    /// The deployment's archive quantization step, used to re-bound
    /// aged rows with the same ladder formula the sensors use
    /// (`quant_step · 2^level`). The proxy configures the sensors, so
    /// it knows this by construction.
    pub aging_quant_step: f64,
}

impl Default for SliceConfig {
    fn default() -> Self {
        SliceConfig {
            slice_len: SimDuration::from_hours(1),
            min_slices: 2,
            l1_capacity: 64,
            l2_capacity: 256,
            aging_quant_step: 0.05,
        }
    }
}

/// Canonical identity of one slice: the sensor, the time-aligned slice
/// index, and the reply tolerance (a slice pulled at a different
/// tolerance is differently encoded and must not be shared).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SliceKey {
    /// The sensor whose archive the slice covers.
    pub sensor: u16,
    /// Slice index: the slice covers `[index·len, (index+1)·len)`.
    pub index: u64,
    /// Bit pattern of the pull tolerance (exact-match keying, as in
    /// [`crate::pipeline::PullReplyCache`]).
    pub tol_bits: u64,
}

/// One slice of a query's window, as the calculator emits it: the
/// canonical key plus the slice's pull window (the full aligned span,
/// so the pulled reply is shareable with any other window overlapping
/// this slice).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceSpec {
    /// Canonical identity.
    pub key: SliceKey,
    /// Pull window start (the slice's aligned start).
    pub from: SimTime,
    /// Pull window end, inclusive (one tick short of the next slice's
    /// start, so adjacent slices never double-count a boundary row).
    pub to: SimTime,
    /// Exclusive span end `(index+1)·len`: the instant the slice is
    /// fully archived. Only replies served at or after this instant
    /// are cacheable.
    pub span_end: SimTime,
}

/// The slice calculator: maps a PAST window `[from, to]` at `tolerance`
/// onto its canonical slice sequence, oldest first. Returns `None`
/// when the window spans fewer than `min_slices` slices (the query
/// stays monolithic) or the configuration is degenerate.
pub fn plan(
    sensor: u16,
    from: SimTime,
    to: SimTime,
    tolerance: f64,
    cfg: &SliceConfig,
) -> Option<Vec<SliceSpec>> {
    let len = cfg.slice_len.as_micros();
    if len == 0 || to < from {
        return None;
    }
    let first = from.as_micros() / len;
    let last = to.as_micros() / len;
    if last - first + 1 < cfg.min_slices.max(1) {
        return None;
    }
    let tol_bits = tolerance.to_bits();
    Some(
        (first..=last)
            .map(|index| {
                let start = SimTime::from_micros(index * len);
                let span_end = SimTime::from_micros((index + 1) * len);
                SliceSpec {
                    key: SliceKey {
                        sensor,
                        index,
                        tol_bits,
                    },
                    from: start,
                    to: span_end - SimDuration::from_micros(1),
                    span_end,
                }
            })
            .collect(),
    )
}

/// Joins per-slice sample runs (oldest slice first) back into the
/// query's window: concatenation plus an inclusive `[from, to]` trim.
/// Slices partition time, so no dedup is needed.
pub fn assemble(parts: &[Vec<(SimTime, f64)>], from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
    parts
        .iter()
        .flatten()
        .copied()
        .filter(|&(t, _)| t >= from && t <= to)
        .collect()
}

/// Re-bounds one slice's error from its reply: the codec reconstruction
/// bound (`tolerance / 2`, what the sensor's lossy reply encoding
/// honors) max'd with the aging ladder bound of the worst aged row
/// (`quant_step · 2^level`, the same formula the sensors report for
/// aggregate sigma). The assembled answer advertises the worst slice.
pub fn slice_sigma(
    tolerance: f64,
    qualities: impl Iterator<Item = Quality>,
    aging_quant_step: f64,
) -> f64 {
    let mut bound: f64 = tolerance / 2.0;
    for q in qualities {
        if let Quality::Aged(level) = q {
            bound = bound.max(aging_quant_step * (1u64 << level.min(32)) as f64);
        }
    }
    bound
}

/// One cached slice.
#[derive(Clone, Debug)]
struct SliceEntry {
    key: SliceKey,
    /// Re-bounded per-slice sigma (codec/aging, [`slice_sigma`]).
    sigma: f64,
    samples: Vec<(SimTime, f64)>,
}

/// Two-tier slice cache counters. Invariants the equivalence property
/// pins: `lookups == l1_hits + l2_hits + misses` and
/// `promotions <= l2_hits`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SliceCacheStats {
    /// Slice lookups.
    pub lookups: u64,
    /// Served from the hot tier.
    pub l1_hits: u64,
    /// Served from the spill tier (and promoted).
    pub l2_hits: u64,
    /// Not cached in either tier.
    pub misses: u64,
    /// Complete slices inserted.
    pub inserts: u64,
    /// L2 entries promoted back to L1 on a hit.
    pub promotions: u64,
    /// L1 entries demoted into the spill tier.
    pub demotions: u64,
    /// Entries dropped entirely (spill-tier eviction, or L1 eviction
    /// with no spill tier configured).
    pub evictions: u64,
    /// Insert attempts rejected because the slice's span was not fully
    /// archived at serve time (caching it would risk a stale-confident
    /// serve later).
    pub incomplete_skips: u64,
}

impl SliceCacheStats {
    /// Folds another cache's counters into this one (all additive) —
    /// the aggregation a multi-proxy snapshot needs.
    pub fn merge(&mut self, other: &SliceCacheStats) {
        self.lookups += other.lookups;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
        self.evictions += other.evictions;
        self.incomplete_skips += other.incomplete_skips;
    }

    /// Hits (either tier) over lookups; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        (self.l1_hits + self.l2_hits) as f64 / self.lookups as f64
    }
}

presto_telemetry::observe_counters!(SliceCacheStats {
    lookups,
    l1_hits,
    l2_hits,
    misses,
    inserts,
    promotions,
    demotions,
    evictions,
    incomplete_skips,
});

/// The two-tier slice store: a hot L1 (LRU, RAM) in front of a bounded
/// L2 spill. Inserts land in L1; L1 eviction demotes into L2; an L2
/// hit promotes back to L1. Both tiers evict **before** inserting, so
/// neither ever exceeds its capacity, even transiently (the
/// push-then-evict pattern the summary caches used to have is exactly
/// what this store avoids).
#[derive(Clone, Debug)]
pub struct TieredSliceCache {
    /// Hot tier, LRU order: front is coldest, back is hottest.
    l1: VecDeque<SliceEntry>,
    /// Spill tier, FIFO order: front is oldest.
    l2: VecDeque<SliceEntry>,
    l1_capacity: usize,
    l2_capacity: usize,
    stats: SliceCacheStats,
}

impl TieredSliceCache {
    /// Creates a cache with the given tier capacities (L1 is clamped
    /// to at least one slice; an L2 of 0 disables the spill tier).
    pub fn new(l1_capacity: usize, l2_capacity: usize) -> Self {
        TieredSliceCache {
            l1: VecDeque::new(),
            l2: VecDeque::new(),
            l1_capacity: l1_capacity.max(1),
            l2_capacity,
            stats: SliceCacheStats::default(),
        }
    }

    /// Builds the store a [`SliceConfig`] asks for.
    pub fn for_config(cfg: &SliceConfig) -> Self {
        TieredSliceCache::new(cfg.l1_capacity, cfg.l2_capacity)
    }

    /// Counters.
    pub fn stats(&self) -> SliceCacheStats {
        self.stats
    }

    /// Cached slices across both tiers.
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.l1.is_empty() && self.l2.is_empty()
    }

    /// Drops every cached slice, keeping the counters (crash reset:
    /// entries are RAM state, counters are measurement).
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
    }

    /// Pushes an entry into L1, demoting (or dropping) the coldest L1
    /// entry first when full — the tier never exceeds capacity.
    fn push_l1(&mut self, entry: SliceEntry) {
        if self.l1.len() >= self.l1_capacity {
            if let Some(cold) = self.l1.pop_front() {
                self.demote(cold);
            }
        }
        self.l1.push_back(entry);
    }

    /// Spills an evicted L1 entry into L2 (FIFO, evict-before-insert),
    /// or drops it when no spill tier is configured.
    fn demote(&mut self, entry: SliceEntry) {
        if self.l2_capacity == 0 {
            self.stats.evictions += 1;
            return;
        }
        if self.l2.len() >= self.l2_capacity {
            self.l2.pop_front();
            self.stats.evictions += 1;
        }
        self.l2.push_back(entry);
        self.stats.demotions += 1;
    }

    /// Inserts a served slice. Only **complete** slices are accepted:
    /// `served_at` (the sensor-side serving instant) must be at or past
    /// `span_end`, otherwise the slice's span was still filling and a
    /// cached copy could later serve data it never had — the insert is
    /// skipped and counted instead. A re-pull of the same key replaces
    /// the older entry in whichever tier held it.
    pub fn insert(
        &mut self,
        key: SliceKey,
        span_end: SimTime,
        served_at: SimTime,
        sigma: f64,
        samples: Vec<(SimTime, f64)>,
    ) {
        if served_at < span_end {
            self.stats.incomplete_skips += 1;
            return;
        }
        self.l1.retain(|e| e.key != key);
        self.l2.retain(|e| e.key != key);
        self.stats.inserts += 1;
        self.push_l1(SliceEntry {
            key,
            sigma,
            samples,
        });
    }

    /// Looks up a slice: an L1 hit refreshes its recency, an L2 hit
    /// promotes the entry back into L1. Returns the samples and the
    /// slice's re-bounded sigma.
    pub fn lookup(&mut self, key: SliceKey) -> Option<(Vec<(SimTime, f64)>, f64)> {
        self.stats.lookups += 1;
        if let Some(pos) = self.l1.iter().position(|e| e.key == key) {
            self.stats.l1_hits += 1;
            if let Some(entry) = self.l1.remove(pos) {
                let out = (entry.samples.clone(), entry.sigma);
                self.l1.push_back(entry);
                return Some(out);
            }
        }
        if let Some(pos) = self.l2.iter().position(|e| e.key == key) {
            self.stats.l2_hits += 1;
            if let Some(entry) = self.l2.remove(pos) {
                self.stats.promotions += 1;
                let out = (entry.samples.clone(), entry.sigma);
                self.push_l1(entry);
                return Some(out);
            }
        }
        self.stats.misses += 1;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SliceConfig {
        SliceConfig::default()
    }

    fn key(index: u64) -> SliceKey {
        SliceKey {
            sensor: 0,
            index,
            tol_bits: 0.2f64.to_bits(),
        }
    }

    fn hour(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn calculator_emits_aligned_covering_slices() {
        // [1h07, 3h11] at 1h slices → slices 1, 2, 3.
        let from = hour(1) + SimDuration::from_mins(7);
        let to = hour(3) + SimDuration::from_mins(11);
        let specs = plan(5, from, to, 0.2, &cfg()).expect("spans 3 slices");
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].key.index, 1);
        assert_eq!(specs[2].key.index, 3);
        assert_eq!(specs[0].from, hour(1));
        assert_eq!(specs[0].span_end, hour(2));
        // Inclusive pull end is one tick short of the next slice.
        assert_eq!(specs[0].to + SimDuration::from_micros(1), specs[1].from);
        assert!(specs.iter().all(|s| s.key.sensor == 5));
    }

    #[test]
    fn calculator_boundary_end_belongs_to_next_slice() {
        // A window ending exactly on a boundary includes the slice the
        // endpoint opens (t = 2h belongs to slice 2).
        let specs = plan(0, hour(1), hour(2), 0.2, &cfg()).expect("2 slices");
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].key.index, 2);
    }

    #[test]
    fn calculator_keeps_narrow_windows_monolithic() {
        let from = hour(1) + SimDuration::from_mins(10);
        let to = hour(1) + SimDuration::from_mins(50);
        assert!(plan(0, from, to, 0.2, &cfg()).is_none(), "single-slice window");
        assert!(plan(0, to, from, 0.2, &cfg()).is_none(), "inverted window");
    }

    #[test]
    fn assembler_trims_to_window() {
        let parts = vec![
            vec![(hour(1), 1.0), (hour(1) + SimDuration::from_mins(30), 2.0)],
            vec![(hour(2), 3.0), (hour(2) + SimDuration::from_mins(30), 4.0)],
        ];
        let joined = assemble(
            &parts,
            hour(1) + SimDuration::from_mins(10),
            hour(2) + SimDuration::from_mins(10),
        );
        assert_eq!(joined, vec![(hour(1) + SimDuration::from_mins(30), 2.0), (hour(2), 3.0)]);
    }

    #[test]
    fn sigma_rebounds_worst_aged_row() {
        let all_exact = slice_sigma(0.2, [Quality::Exact, Quality::Exact].into_iter(), 0.05);
        assert_eq!(all_exact, 0.1, "codec bound only");
        let aged = slice_sigma(0.2, [Quality::Exact, Quality::Aged(3)].into_iter(), 0.05);
        assert_eq!(aged, 0.05 * 8.0, "ladder bound dominates");
    }

    #[test]
    fn tiered_cache_promotes_and_demotes() {
        let mut c = TieredSliceCache::new(2, 4);
        for i in 0..4u64 {
            c.insert(key(i), hour(i + 1), hour(i + 1), 0.1, vec![(hour(i), i as f64)]);
        }
        // L1 holds {2, 3}; {0, 1} were demoted.
        assert_eq!(c.stats().demotions, 2);
        assert_eq!(c.len(), 4);
        // L2 hit promotes 0 back to L1 (demoting 2).
        let (samples, sigma) = c.lookup(key(0)).expect("still cached in L2");
        assert_eq!(samples, vec![(hour(0), 0.0)]);
        assert_eq!(sigma, 0.1);
        let s = c.stats();
        assert_eq!(s.l2_hits, 1);
        assert_eq!(s.promotions, 1);
        assert_eq!(s.demotions, 3);
        // Now an L1 hit.
        assert!(c.lookup(key(0)).is_some());
        assert_eq!(c.stats().l1_hits, 1);
        // Accounting invariants.
        let s = c.stats();
        assert_eq!(s.lookups, s.l1_hits + s.l2_hits + s.misses);
        assert!(s.promotions <= s.l2_hits);
    }

    #[test]
    fn tiered_cache_rejects_incomplete_slices() {
        let mut c = TieredSliceCache::new(4, 4);
        // Served before the span end: the slice was still filling.
        c.insert(key(7), hour(8), hour(7) + SimDuration::from_mins(30), 0.1, Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.stats().incomplete_skips, 1);
        assert!(c.lookup(key(7)).is_none());
        // Served exactly at the span end: complete, cacheable.
        c.insert(key(7), hour(8), hour(8), 0.1, Vec::new());
        assert_eq!(c.len(), 1);
        assert!(c.lookup(key(7)).is_some());
    }

    #[test]
    fn tiered_cache_never_exceeds_capacity() {
        let mut c = TieredSliceCache::new(2, 2);
        for i in 0..10u64 {
            c.insert(key(i), hour(i + 1), hour(i + 1), 0.1, Vec::new());
            assert!(c.l1.len() <= 2, "L1 overflow at insert {i}");
            assert!(c.l2.len() <= 2, "L2 overflow at insert {i}");
        }
        assert_eq!(c.len(), 4);
        let s = c.stats();
        assert_eq!(s.inserts, 10);
        assert_eq!(s.evictions, 6, "spill-tier drops");
        // No spill tier: L1 evictions drop outright.
        let mut d = TieredSliceCache::new(1, 0);
        d.insert(key(0), hour(1), hour(1), 0.1, Vec::new());
        d.insert(key(1), hour(2), hour(2), 0.1, Vec::new());
        assert_eq!(d.len(), 1);
        assert_eq!(d.stats().evictions, 1);
        assert_eq!(d.stats().demotions, 0);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut c = TieredSliceCache::new(2, 2);
        c.insert(key(0), hour(1), hour(1), 0.1, vec![(hour(0), 1.0)]);
        c.insert(key(0), hour(1), hour(2), 0.1, vec![(hour(0), 2.0)]);
        assert_eq!(c.len(), 1);
        let (samples, _) = c.lookup(key(0)).expect("cached");
        assert_eq!(samples[0].1, 2.0, "newest serving wins");
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = TieredSliceCache::new(2, 2);
        c.insert(key(0), hour(1), hour(1), 0.1, Vec::new());
        assert!(c.lookup(key(0)).is_some());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().inserts, 1);
        assert_eq!(c.stats().l1_hits, 1);
    }
}
