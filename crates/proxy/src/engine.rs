//! The prediction engine: model lifecycle and extrapolation.
//!
//! The engine trains a model per sensor from the cached history, keeps
//! the proxy-side replica observing incoming data, and re-trains when
//! either a retrain interval elapses or the recent push rate suggests
//! model drift. Training cost is charged to the proxy's CPU ledger —
//! proxies are powered, but the cost is *measured* so the build/check
//! asymmetry claim (E7) is demonstrable.

use presto_models::{
    ArModel, LinearTrendModel, MarkovModel, ModelKind, Prediction, Predictor, SeasonalArModel,
    SeasonalModel, SpatialGaussian, TrainReport,
};
use presto_net::CpuModel;
use presto_sim::{EnergyCategory, EnergyLedger, SimDuration, SimTime};

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Model class to train.
    pub kind: ModelKind,
    /// Seasonal bins (when applicable).
    pub seasonal_bins: usize,
    /// AR order (when applicable).
    pub ar_order: usize,
    /// Markov states (when applicable).
    pub markov_states: usize,
    /// Refine the SeasonalAr residual stage with per-bin lag
    /// coefficients (one shared Cholesky factor across every bin's
    /// normal-equation solve).
    pub per_bin_ar: bool,
    /// Minimum history before the first model is trained.
    pub min_history: usize,
    /// Re-train at least this often.
    pub retrain_interval: SimDuration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            kind: ModelKind::SeasonalAr,
            seasonal_bins: 24,
            ar_order: 2,
            markov_states: 8,
            per_bin_ar: false,
            min_history: 500,
            retrain_interval: SimDuration::from_days(1),
        }
    }
}

/// Per-sensor model state.
pub struct ModelSlot {
    /// The proxy's own replica (observes everything the proxy hears).
    pub model: Box<dyn Predictor>,
    /// Version, bumped on each retrain.
    pub version: u32,
    /// When this version was trained.
    pub trained_at: SimTime,
    /// Training cost report.
    pub report: TrainReport,
}

/// The prediction engine.
pub struct PredictionEngine {
    config: EngineConfig,
    cpu: CpuModel,
    /// Cumulative training cycles (for E7).
    pub total_train_cycles: u64,
}

impl PredictionEngine {
    /// Creates an engine. The proxy CPU is modelled as a Stargate-class
    /// part; we reuse the mote CPU model scaled up via cycles (the cycle
    /// *count* is the asymmetry metric, the joules are charged at proxy
    /// rates).
    pub fn new(config: EngineConfig) -> Self {
        PredictionEngine {
            config,
            cpu: CpuModel {
                freq_hz: 400e6, // Stargate PXA255
                active_power_w: 0.4,
            },
            total_train_cycles: 0,
        }
    }

    /// The configured model kind.
    pub fn kind(&self) -> ModelKind {
        self.config.kind
    }

    /// Engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// True when a (re)train is warranted.
    pub fn should_train(&self, slot: Option<&ModelSlot>, history_len: usize, now: SimTime) -> bool {
        if history_len < self.config.min_history {
            return false;
        }
        match slot {
            None => true,
            Some(s) => now - s.trained_at >= self.config.retrain_interval,
        }
    }

    /// Trains a model of the configured class from history, charging the
    /// proxy's CPU ledger.
    pub fn train(
        &mut self,
        history: &[(SimTime, f64)],
        now: SimTime,
        prev_version: u32,
        ledger: &mut EnergyLedger,
    ) -> ModelSlot {
        let (model, report): (Box<dyn Predictor>, TrainReport) = match self.config.kind {
            ModelKind::Seasonal => {
                let (m, r) = SeasonalModel::train(history, self.config.seasonal_bins);
                (Box::new(m), r)
            }
            ModelKind::Ar => {
                let (m, r) = ArModel::train(history, self.config.ar_order);
                (Box::new(m), r)
            }
            ModelKind::SeasonalAr => {
                let (m, r) = if self.config.per_bin_ar {
                    SeasonalArModel::train_binned(
                        history,
                        self.config.seasonal_bins,
                        self.config.ar_order,
                    )
                } else {
                    SeasonalArModel::train(
                        history,
                        self.config.seasonal_bins,
                        self.config.ar_order,
                    )
                };
                (Box::new(m), r)
            }
            ModelKind::LinearTrend => {
                let (m, r) = LinearTrendModel::train(history);
                (Box::new(m), r)
            }
            ModelKind::Markov => {
                let (m, r) = MarkovModel::train(history, self.config.markov_states);
                (Box::new(m), r)
            }
        };
        ledger.charge(EnergyCategory::Cpu, self.cpu.op_energy(report.train_cycles));
        self.total_train_cycles += report.train_cycles;
        ModelSlot {
            model,
            version: prev_version + 1,
            trained_at: now,
            report,
        }
    }

    /// Trains the spatial Gaussian over aligned rows of sensor values
    /// (one row per epoch, one column per sensor).
    pub fn train_spatial(
        &mut self,
        rows: &[Vec<f64>],
        ledger: &mut EnergyLedger,
    ) -> Option<SpatialGaussian> {
        let g = SpatialGaussian::train(rows)?;
        ledger.charge(EnergyCategory::Cpu, self.cpu.op_energy(g.train_cycles));
        self.total_train_cycles += g.train_cycles;
        Some(g)
    }

    /// Extrapolates a value at `t` from a model slot, with the
    /// model-driven-push guarantee folded into the confidence: while the
    /// sensor is silent, the true value provably lies within
    /// `push_tolerance` of the replica's prediction (modulo lost pushes).
    pub fn extrapolate(slot: &ModelSlot, t: SimTime, push_tolerance: f64) -> Prediction {
        let p = slot.model.predict(t);
        Prediction {
            value: p.value,
            sigma: p.sigma.max(push_tolerance / 2.0),
        }
    }

    /// The guaranteed absolute error bound for extrapolation under
    /// model-driven push with the given sensor tolerance.
    pub fn extrapolation_bound(push_tolerance: f64) -> f64 {
        push_tolerance
    }

    /// Decodes a context-free replica from pushed parameters — the
    /// exact state a sensor holds right after installing a model push.
    /// The replica-resync path replays cached history through this to
    /// reconstruct the sensor's current replica without retraining.
    pub fn decode_replica(kind: ModelKind, params: &[u8]) -> Option<Box<dyn Predictor>> {
        match kind {
            ModelKind::Seasonal => {
                SeasonalModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
            }
            ModelKind::Ar => {
                ArModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
            }
            ModelKind::SeasonalAr => {
                SeasonalArModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
            }
            ModelKind::LinearTrend => {
                LinearTrendModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
            }
            ModelKind::Markov => {
                MarkovModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diurnal_history(days: u64) -> Vec<(SimTime, f64)> {
        (0..days * 24 * 4)
            .map(|i| {
                let t = SimTime::from_mins(i * 15);
                let v =
                    21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos();
                (t, v)
            })
            .collect()
    }

    #[test]
    fn trains_after_min_history_and_on_schedule() {
        let mut e = PredictionEngine::new(EngineConfig {
            min_history: 100,
            retrain_interval: SimDuration::from_hours(6),
            ..EngineConfig::default()
        });
        let hist = diurnal_history(3);
        assert!(!e.should_train(None, 50, SimTime::ZERO));
        assert!(e.should_train(None, 150, SimTime::ZERO));

        let mut ledger = EnergyLedger::new();
        let slot = e.train(&hist, SimTime::from_days(3), 0, &mut ledger);
        assert_eq!(slot.version, 1);
        assert!(ledger.category(EnergyCategory::Cpu) > 0.0);
        assert!(!e.should_train(Some(&slot), 1000, SimTime::from_days(3)));
        assert!(e.should_train(
            Some(&slot),
            1000,
            SimTime::from_days(3) + SimDuration::from_hours(7)
        ));
    }

    #[test]
    fn trained_model_predicts_diurnal_shape() {
        let mut e = PredictionEngine::new(EngineConfig::default());
        let mut ledger = EnergyLedger::new();
        let slot = e.train(&diurnal_history(7), SimTime::from_days(7), 0, &mut ledger);
        let t = SimTime::from_days(8) + SimDuration::from_hours(14);
        let p = slot.model.predict(t);
        assert!((p.value - 25.0).abs() < 1.0, "{}", p.value);
    }

    #[test]
    fn every_model_kind_trains() {
        let hist = diurnal_history(3);
        let mut ledger = EnergyLedger::new();
        for kind in [
            ModelKind::Seasonal,
            ModelKind::Ar,
            ModelKind::SeasonalAr,
            ModelKind::LinearTrend,
            ModelKind::Markov,
        ] {
            let mut e = PredictionEngine::new(EngineConfig {
                kind,
                ..EngineConfig::default()
            });
            let slot = e.train(&hist, SimTime::from_days(3), 0, &mut ledger);
            assert_eq!(slot.model.kind(), kind);
            assert!(slot.report.train_cycles > 0);
            // Replica parameters must be shippable.
            assert!(!slot.model.encode_params().is_empty());
        }
    }

    #[test]
    fn per_bin_ar_flag_trains_a_binned_replica() {
        let mut e = PredictionEngine::new(EngineConfig {
            per_bin_ar: true,
            ..EngineConfig::default()
        });
        let mut ledger = EnergyLedger::new();
        let slot = e.train(&diurnal_history(7), SimTime::from_days(7), 0, &mut ledger);
        // The refinement travels in the pushed parameters.
        let replica =
            presto_models::SeasonalArModel::decode_params(&slot.model.encode_params())
                .expect("decodable");
        assert!(replica.is_binned());
    }

    #[test]
    fn extrapolation_folds_in_push_tolerance() {
        let mut e = PredictionEngine::new(EngineConfig::default());
        let mut ledger = EnergyLedger::new();
        let slot = e.train(&diurnal_history(7), SimTime::from_days(7), 0, &mut ledger);
        let p = PredictionEngine::extrapolate(&slot, SimTime::from_days(8), 2.0);
        assert!(p.sigma >= 1.0);
        assert_eq!(PredictionEngine::extrapolation_bound(0.5), 0.5);
    }

    #[test]
    fn spatial_training_charges_cpu() {
        let mut e = PredictionEngine::new(EngineConfig::default());
        let mut ledger = EnergyLedger::new();
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|k| {
                let f = (k as f64 * 0.1).sin();
                vec![20.0 + f, 20.5 + f, 21.0 + f]
            })
            .collect();
        let g = e.train_spatial(&rows, &mut ledger).unwrap();
        assert_eq!(g.sensors(), 3);
        assert!(ledger.category(EnergyCategory::Cpu) > 0.0);
        assert!(e.total_train_cycles > 0);
    }
}
