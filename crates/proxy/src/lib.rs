//! The PRESTO proxy (paper §3).
//!
//! "The PRESTO proxy comprises two components: a cache of summary
//! information about the data observed at the remote sensors and a
//! prediction engine that is responsible for data extrapolation,
//! model-driven push, and query-sensor matching."
//!
//! * [`cache`] — the per-sensor summary cache: a lossy view assembled
//!   from pushes, batches, and pull refinements, plus the semantic event
//!   log.
//! * [`engine`] — the prediction engine: trains models on cached history
//!   (charging proxy CPU so the build/check asymmetry is measurable),
//!   versions them, and extrapolates missing data with confidence bounds.
//! * [`matching`] — query–sensor matching: translates query classes
//!   (rate, latency bound, precision) into sensor settings (LPL check
//!   interval, batching interval, push tolerance, reply codec).
//! * [`proxy`] — the proxy itself: consumes uplink traffic, answers NOW
//!   and PAST queries via *cache hit → extrapolation → pull* (exactly the
//!   miss path of paper §2), and delivers downlink messages over the
//!   energy-metered MAC.
//! * [`slice`] — sliced archive-range execution: the slice calculator,
//!   the two-tier slice cache, and the assembler behind the pipeline's
//!   sliced PAST path.

pub mod cache;
pub mod engine;
pub mod matching;
pub mod pipeline;
pub mod proxy;
pub mod slice;

pub use cache::{CachedEvent, EventCache, SensorCache};
pub use engine::{EngineConfig, PredictionEngine};
pub use matching::{QueryClass, QuerySensorMatcher};
pub use pipeline::{
    CompletedQuery, PipelineAnswer, PipelineConfig, PipelineQuery, PipelineStats, PullReplyCache,
    QueryPipeline,
};
pub use proxy::{
    Answer, AnswerSource, PastAnswer, PrestoProxy, ProxyConfig, ProxyStats, PumpSensor,
};
pub use slice::{SliceCacheStats, SliceConfig, SliceKey, SliceSpec, TieredSliceCache};
