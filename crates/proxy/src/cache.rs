//! The proxy's per-sensor summary cache.
//!
//! "This cache differs significantly from both memory caches as well as
//! web caches in that the cached data is either a lossy view or a
//! higher-level semantic event-based view of the sensor data" (paper §3).
//!
//! The cache holds whatever the proxy has learned about one sensor's
//! series: pushed deviations, batch contents, and pull refinements, each
//! tagged with provenance. It is bounded; eviction drops the oldest
//! entries (the sensor's archive remains the authority for old data).

use std::collections::VecDeque;
use std::sync::Arc;

use presto_sim::{SimDuration, SimTime};

/// Where a cached sample came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheSource {
    /// Model-failure or value push from the sensor.
    Pushed,
    /// Arrived in a periodic batch.
    Batch,
    /// Fetched by a miss-triggered pull (refinement).
    Pulled,
}

/// One cached sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CachedSample {
    /// Sample timestamp.
    pub t: SimTime,
    /// Value (possibly lossy).
    pub value: f64,
    /// Provenance.
    pub source: CacheSource,
}

/// A cached semantic event.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedEvent {
    /// Event timestamp.
    pub t: SimTime,
    /// Reporting sensor.
    pub sensor: u16,
    /// Application event type.
    pub event_type: u16,
    /// Application payload, shared with the uplink message that carried
    /// it (no per-event copy on the proxy's receive path).
    pub data: Arc<[u8]>,
}

/// The proxy's deployment-wide semantic event cache: time-ordered,
/// capacity-bounded (oldest events evict first — the sensors' archives
/// remain the authority for old events, exactly as with samples), with
/// binary-searched range reads instead of full scans.
#[derive(Clone, Debug)]
pub struct EventCache {
    events: VecDeque<CachedEvent>,
    capacity: usize,
}

impl EventCache {
    /// Creates a cache bounded to `capacity` events. A capacity of 0 is
    /// clamped to 1 (a cache that can never admit anything is always a
    /// misconfiguration), and the clamped bound also drives the
    /// preallocation — capped so a huge configured bound does not
    /// reserve memory up front.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventCache {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
        }
    }

    /// Number of cached events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Inserts an event, keeping time order and the capacity bound.
    /// Eviction happens *before* the insert, so the deque never holds
    /// `capacity + 1` entries, even transiently.
    pub fn insert(&mut self, event: CachedEvent) {
        if self.events.back().is_none_or(|b| b.t <= event.t) {
            while self.events.len() >= self.capacity {
                self.events.pop_front();
            }
            self.events.push_back(event);
            return;
        }
        let idx = self.events.partition_point(|e| e.t <= event.t);
        if self.events.len() >= self.capacity {
            // Oldest evicts first; an incoming event older than the
            // whole cache is its own eviction victim.
            if idx == 0 {
                return;
            }
            self.events.pop_front();
            self.events.insert(idx - 1, event);
            return;
        }
        self.events.insert(idx, event);
    }

    /// Events in `[from, to]`, oldest first, via binary search on the
    /// time-ordered deque.
    pub fn range(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = &CachedEvent> {
        let lo = self.events.partition_point(|e| e.t < from);
        let hi = self.events.partition_point(|e| e.t <= to);
        self.events.iter().skip(lo).take(hi - lo)
    }

    /// All cached events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &CachedEvent> {
        self.events.iter()
    }

    /// `[min, max]` timestamp over cached events, `None` when empty.
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        match (self.events.front(), self.events.back()) {
            (Some(a), Some(b)) => Some((a.t, b.t)),
            _ => None,
        }
    }
}

/// Per-sensor summary cache.
#[derive(Clone, Debug)]
pub struct SensorCache {
    samples: VecDeque<CachedSample>,
    capacity: usize,
    /// Most recent contact of any kind (push, batch, reply).
    pub last_heard: Option<SimTime>,
}

impl SensorCache {
    /// Creates a cache bounded to `capacity` samples. Bounds handling
    /// matches [`EventCache::new`]: clamp to at least 1 first, then cap
    /// the preallocation.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SensorCache {
            samples: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            last_heard: None,
        }
    }

    /// Number of cached samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Inserts a sample, keeping the deque time-ordered and bounded.
    /// Pulled samples refine (replace) earlier lossy entries at the same
    /// timestamp. Eviction happens *before* the insert (growth paths
    /// only — a same-timestamp refinement replaces in place), so the
    /// deque never holds `capacity + 1` entries, even transiently.
    pub fn insert(&mut self, sample: CachedSample) {
        self.last_heard = Some(self.last_heard.map_or(sample.t, |h| h.max(sample.t)));
        // Fast path: append at the tail.
        if self.samples.back().is_none_or(|b| b.t < sample.t) {
            while self.samples.len() >= self.capacity {
                self.samples.pop_front();
            }
            self.samples.push_back(sample);
            return;
        }
        // Find insertion point (rare: out-of-order arrival).
        let idx = self.samples.partition_point(|s| s.t < sample.t);
        if self.samples.get(idx).is_some_and(|s| s.t == sample.t) {
            // Same timestamp: pulled data wins over lossy views. No
            // growth, so no eviction.
            let existing = &mut self.samples[idx];
            if sample.source == CacheSource::Pulled || existing.source != CacheSource::Pulled {
                *existing = sample;
            }
            return;
        }
        if self.samples.len() >= self.capacity {
            // Oldest evicts first; an incoming sample older than the
            // whole cache is its own eviction victim.
            if idx == 0 {
                return;
            }
            self.samples.pop_front();
            self.samples.insert(idx - 1, sample);
            return;
        }
        self.samples.insert(idx, sample);
    }

    /// The most recent cached sample.
    pub fn latest(&self) -> Option<CachedSample> {
        self.samples.back().copied()
    }

    /// The most recent sample at or before `t`.
    pub fn latest_at(&self, t: SimTime) -> Option<CachedSample> {
        let idx = self.samples.partition_point(|s| s.t <= t);
        idx.checked_sub(1)
            .and_then(|i| self.samples.get(i))
            .copied()
    }

    /// All cached samples in `[from, to]`.
    pub fn range(&self, from: SimTime, to: SimTime) -> Vec<CachedSample> {
        let lo = self.samples.partition_point(|s| s.t < from);
        let hi = self.samples.partition_point(|s| s.t <= to);
        self.samples
            .iter()
            .skip(lo)
            .take(hi - lo)
            .copied()
            .collect()
    }

    /// Fraction of expected epochs in `[from, to]` that have a cached
    /// sample, given the sensor's sampling period.
    pub fn coverage(&self, from: SimTime, to: SimTime, period: SimDuration) -> f64 {
        let expected = (to - from).div_duration(period).max(1);
        let have = self.range(from, to).len() as u64;
        (have as f64 / expected as f64).min(1.0)
    }

    /// Full history view (oldest first) for model training. Allocates;
    /// hot paths should prefer [`SensorCache::history_iter`] or
    /// [`SensorCache::history_into`].
    pub fn history(&self) -> Vec<(SimTime, f64)> {
        self.history_iter().collect()
    }

    /// Borrowing history view (oldest first) — no allocation per pass.
    pub fn history_iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.samples.iter().map(|s| (s.t, s.value))
    }

    /// Writes the history into a caller-owned buffer (cleared first), so
    /// repeated model-training passes reuse one allocation.
    pub fn history_into(&self, buf: &mut Vec<(SimTime, f64)>) {
        buf.clear();
        buf.extend(self.history_iter());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t_secs: u64, v: f64, source: CacheSource) -> CachedSample {
        CachedSample {
            t: SimTime::from_secs(t_secs),
            value: v,
            source,
        }
    }

    #[test]
    fn insert_keeps_time_order() {
        let mut c = SensorCache::new(100);
        c.insert(s(30, 2.0, CacheSource::Batch));
        c.insert(s(10, 1.0, CacheSource::Batch));
        c.insert(s(20, 1.5, CacheSource::Pushed));
        let all = c.range(SimTime::ZERO, SimTime::from_secs(100));
        let ts: Vec<u64> = all.iter().map(|x| x.t.as_secs()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut c = SensorCache::new(3);
        for i in 0..5 {
            c.insert(s(i * 10, i as f64, CacheSource::Batch));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.range(SimTime::ZERO, SimTime::from_secs(100))[0]
                .t
                .as_secs(),
            20
        );
    }

    #[test]
    fn pulled_refines_lossy_entries() {
        let mut c = SensorCache::new(10);
        c.insert(s(10, 20.0, CacheSource::Batch));
        c.insert(s(20, 21.0, CacheSource::Batch));
        c.insert(s(10, 19.5, CacheSource::Pulled));
        let all = c.range(SimTime::ZERO, SimTime::from_secs(100));
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].value, 19.5);
        assert_eq!(all[0].source, CacheSource::Pulled);
        // A later lossy view must not clobber pulled truth.
        c.insert(s(10, 25.0, CacheSource::Batch));
        assert_eq!(
            c.range(SimTime::ZERO, SimTime::from_secs(15))[0].value,
            19.5
        );
    }

    #[test]
    fn latest_at_respects_time() {
        let mut c = SensorCache::new(10);
        c.insert(s(10, 1.0, CacheSource::Pushed));
        c.insert(s(30, 3.0, CacheSource::Pushed));
        assert_eq!(c.latest_at(SimTime::from_secs(5)), None);
        assert_eq!(c.latest_at(SimTime::from_secs(10)).unwrap().value, 1.0);
        assert_eq!(c.latest_at(SimTime::from_secs(29)).unwrap().value, 1.0);
        assert_eq!(c.latest_at(SimTime::from_secs(99)).unwrap().value, 3.0);
        assert_eq!(c.latest().unwrap().value, 3.0);
    }

    #[test]
    fn coverage_measures_density() {
        let mut c = SensorCache::new(1000);
        for i in 0..50 {
            c.insert(s(i * 31, 20.0, CacheSource::Batch));
        }
        let full = c.coverage(
            SimTime::ZERO,
            SimTime::from_secs(49 * 31),
            SimDuration::from_secs(31),
        );
        assert!(full > 0.9, "{full}");
        let empty = c.coverage(
            SimTime::from_hours(10),
            SimTime::from_hours(11),
            SimDuration::from_secs(31),
        );
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn last_heard_tracks_maximum() {
        let mut c = SensorCache::new(10);
        assert_eq!(c.last_heard, None);
        c.insert(s(50, 1.0, CacheSource::Pushed));
        c.insert(s(20, 1.0, CacheSource::Pulled));
        assert_eq!(c.last_heard, Some(SimTime::from_secs(50)));
    }

    fn ev(t_secs: u64, sensor: u16, ty: u16) -> CachedEvent {
        CachedEvent {
            t: SimTime::from_secs(t_secs),
            sensor,
            event_type: ty,
            data: Vec::new().into(),
        }
    }

    #[test]
    fn event_cache_keeps_time_order_and_bound() {
        let mut c = EventCache::new(3);
        c.insert(ev(30, 0, 1));
        c.insert(ev(10, 1, 2));
        c.insert(ev(20, 2, 3));
        let ts: Vec<u64> = c.iter().map(|e| e.t.as_secs()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(c.span(), Some((SimTime::from_secs(10), SimTime::from_secs(30))));
        // Over capacity: oldest evicts.
        c.insert(ev(40, 3, 4));
        assert_eq!(c.len(), 3);
        assert_eq!(c.iter().next().unwrap().t.as_secs(), 20);
        assert_eq!(c.span(), Some((SimTime::from_secs(20), SimTime::from_secs(40))));
    }

    #[test]
    fn event_cache_range_is_inclusive() {
        let mut c = EventCache::new(100);
        for i in 0..10u64 {
            c.insert(ev(i * 10, i as u16, 0));
        }
        let got: Vec<u64> = c
            .range(SimTime::from_secs(20), SimTime::from_secs(50))
            .map(|e| e.t.as_secs())
            .collect();
        assert_eq!(got, vec![20, 30, 40, 50]);
        assert_eq!(
            c.range(SimTime::from_secs(91), SimTime::from_secs(200)).count(),
            0
        );
    }

    #[test]
    fn eviction_precedes_insert_and_bounds_are_unified() {
        // Zero capacity clamps to one in both caches (the clamped bound
        // is what admits entries, not the raw argument).
        let mut sc = SensorCache::new(0);
        sc.insert(s(10, 1.0, CacheSource::Batch));
        assert_eq!(sc.len(), 1);
        let mut ec = EventCache::new(0);
        ec.insert(ev(10, 0, 1));
        assert_eq!(ec.len(), 1);

        // At capacity, the bound holds through every insert path: tail
        // append, mid-range out-of-order, and an incoming entry older
        // than the whole cache (its own eviction victim — dropped, with
        // the cached entries untouched).
        let mut c = SensorCache::new(3);
        for i in 1..=3u64 {
            c.insert(s(i * 10, i as f64, CacheSource::Batch));
        }
        c.insert(s(25, 2.5, CacheSource::Batch)); // mid-range: evicts t=10
        assert_eq!(c.len(), 3);
        let ts: Vec<u64> = c
            .range(SimTime::ZERO, SimTime::from_secs(100))
            .iter()
            .map(|x| x.t.as_secs())
            .collect();
        assert_eq!(ts, vec![20, 25, 30]);
        c.insert(s(5, 0.5, CacheSource::Batch)); // older than everything
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.range(SimTime::ZERO, SimTime::from_secs(100))[0].t.as_secs(),
            20,
            "incoming oldest-ever sample is dropped, cache untouched"
        );
        // Same-timestamp refinement replaces in place at capacity (no
        // growth, so nothing is evicted).
        c.insert(s(25, 2.6, CacheSource::Pulled));
        assert_eq!(c.len(), 3);
        assert_eq!(c.latest_at(SimTime::from_secs(25)).unwrap().value, 2.6);

        let mut e = EventCache::new(3);
        for i in 1..=3u64 {
            e.insert(ev(i * 10, 0, 1));
        }
        e.insert(ev(25, 0, 2)); // mid-range: evicts t=10
        let ts: Vec<u64> = e.iter().map(|x| x.t.as_secs()).collect();
        assert_eq!(ts, vec![20, 25, 30]);
        e.insert(ev(5, 0, 3)); // older than everything: dropped
        assert_eq!(e.len(), 3);
        assert_eq!(e.iter().next().unwrap().t.as_secs(), 20);
    }

    #[test]
    fn history_matches_contents() {
        let mut c = SensorCache::new(10);
        c.insert(s(1, 1.0, CacheSource::Batch));
        c.insert(s(2, 2.0, CacheSource::Batch));
        assert_eq!(
            c.history(),
            vec![(SimTime::from_secs(1), 1.0), (SimTime::from_secs(2), 2.0)]
        );
    }
}
