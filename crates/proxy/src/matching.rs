//! Query–sensor matching (paper §3).
//!
//! "The query type, frequency, latency and precision requirements are
//! translated into the appropriate parameters for the remote sensors,
//! such that they can minimize energy while achieving query
//! requirements."
//!
//! Translation rules implemented here:
//!
//! * **latency bound → LPL check interval**: the sensor may probe as
//!   rarely as the tightest latency bound allows (minus a guard), since a
//!   downlink wake-up costs one check interval in the worst case.
//! * **latency bound → batching interval**: batched data may be delayed
//!   at most one bound.
//! * **precision → push tolerance**: under model-driven push, the proxy
//!   can answer within `tolerance` without contacting the sensor iff the
//!   sensor pushes whenever the model errs by more than that tolerance;
//!   the matcher sets the push tolerance to the tightest query tolerance.
//! * **precision → reply codec**: pull replies are lossily compressed to
//!   the same tolerance.

use presto_net::{DutyCycle, Mac};
use presto_sim::SimDuration;
use presto_wavelet::CodecParams;

use presto_sensor::DownlinkMsg;

/// A registered query class (aggregated view of a query stream).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryClass {
    /// Mean arrivals per hour.
    pub rate_per_hour: f64,
    /// Worst-case acceptable notification latency.
    pub latency_bound: SimDuration,
    /// Acceptable absolute error.
    pub tolerance: f64,
}

/// The matcher: accumulates registered classes, emits sensor settings.
#[derive(Clone, Debug, Default)]
pub struct QuerySensorMatcher {
    classes: Vec<QueryClass>,
}

impl QuerySensorMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or refreshes) a query class.
    pub fn register(&mut self, class: QueryClass) {
        self.classes.push(class);
    }

    /// Clears all classes (e.g. when an application detaches).
    pub fn clear(&mut self) {
        self.classes.clear();
    }

    /// The tightest latency bound across classes, if any.
    pub fn tightest_latency(&self) -> Option<SimDuration> {
        self.classes.iter().map(|c| c.latency_bound).min()
    }

    /// The tightest tolerance across classes, if any.
    pub fn tightest_tolerance(&self) -> Option<f64> {
        self.classes
            .iter()
            .map(|c| c.tolerance)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// The deadline a query of the given tolerance earns under the
    /// registered latency classes: the query belongs to the class whose
    /// tolerance is nearest its own (ties to the tighter latency
    /// bound), and inherits that class's latency bound as its pipeline
    /// deadline. `None` when no class is registered — callers fall back
    /// to the pipeline's default deadline. This is the per-query half
    /// of query–sensor matching: the class's latency bound caps how
    /// long the pump may keep retransmitting for the query, so a
    /// latency-tolerant class spends retry budget where a tight class
    /// fails honestly instead.
    pub fn deadline_for(&self, tolerance: f64) -> Option<SimDuration> {
        self.classes
            .iter()
            .min_by(|a, b| {
                (a.tolerance - tolerance)
                    .abs()
                    .total_cmp(&(b.tolerance - tolerance).abs())
                    .then(a.latency_bound.cmp(&b.latency_bound))
            })
            .map(|c| c.latency_bound)
    }

    /// Derives the sensor settings satisfying every registered class.
    ///
    /// Returns `None` when no class is registered (leave defaults).
    pub fn derive_retune(&self) -> Option<DownlinkMsg> {
        if self.classes.is_empty() {
            return None;
        }
        let (Some(latency), Some(tolerance)) =
            (self.tightest_latency(), self.tightest_tolerance())
        else {
            return None;
        };
        let duty = DutyCycle::for_latency_bound(latency);
        Some(DownlinkMsg::Retune {
            push_tolerance: Some(tolerance),
            batching_interval: Some(latency),
            lpl_check_interval: Some(duty.check_interval),
            reply_codec: Some(CodecParams::for_tolerance(tolerance)),
        })
    }

    /// Expected sensor-side energy per day for a candidate configuration,
    /// used to compare matching decisions: idle listening at the duty
    /// cycle plus the pull traffic induced by the registered query rates
    /// (assuming the worst case in which every query misses the cache).
    pub fn estimated_energy_per_day(
        &self,
        duty: &DutyCycle,
        uplink: &Mac,
        reply_bytes: usize,
    ) -> f64 {
        let listen = duty.average_listen_power(&uplink.radio) * 86_400.0;
        let queries_per_day: f64 = self.classes.iter().map(|c| c.rate_per_hour * 24.0).sum();
        let per_reply = uplink.expected_send_energy(reply_bytes);
        listen + queries_per_day * per_reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_net::{FrameFormat, RadioModel};

    fn class(latency_mins: u64, tolerance: f64) -> QueryClass {
        QueryClass {
            rate_per_hour: 10.0,
            latency_bound: SimDuration::from_mins(latency_mins),
            tolerance,
        }
    }

    #[test]
    fn empty_matcher_leaves_defaults() {
        assert!(QuerySensorMatcher::new().derive_retune().is_none());
    }

    #[test]
    fn tightest_requirements_win() {
        let mut m = QuerySensorMatcher::new();
        m.register(class(10, 1.0));
        m.register(class(2, 0.25));
        m.register(class(60, 2.0));
        assert_eq!(m.tightest_latency(), Some(SimDuration::from_mins(2)));
        assert_eq!(m.tightest_tolerance(), Some(0.25));
        let Some(DownlinkMsg::Retune {
            push_tolerance,
            batching_interval,
            lpl_check_interval,
            reply_codec,
        }) = m.derive_retune()
        else {
            panic!("expected a retune");
        };
        assert_eq!(push_tolerance, Some(0.25));
        assert_eq!(batching_interval, Some(SimDuration::from_mins(2)));
        let lpl = lpl_check_interval.unwrap();
        assert!(lpl <= SimDuration::from_mins(2));
        assert!(lpl > SimDuration::from_mins(1));
        assert!(reply_codec.is_some());
    }

    #[test]
    fn paper_example_ten_minute_latency() {
        // "if it is known that the worst case notification latency for
        // typical queries is 10 minutes, the proxy can instruct remote
        // sensors to set its radio duty-cycling parameters accordingly."
        let mut m = QuerySensorMatcher::new();
        m.register(class(10, 1.0));
        let Some(DownlinkMsg::Retune {
            lpl_check_interval, ..
        }) = m.derive_retune()
        else {
            panic!("expected a retune");
        };
        let lpl = lpl_check_interval.unwrap();
        // Worst-case wake latency (= one check interval) within bound.
        assert!(lpl <= SimDuration::from_mins(10));
        // But not absurdly conservative either.
        assert!(lpl >= SimDuration::from_mins(8));
    }

    #[test]
    fn relaxed_latency_saves_listen_energy() {
        let m = {
            let mut m = QuerySensorMatcher::new();
            m.register(class(10, 1.0));
            m
        };
        let uplink = Mac::uplink(RadioModel::mica2(), FrameFormat::tinyos_mica2());
        let tight = DutyCycle::for_latency_bound(SimDuration::from_secs(5));
        let relaxed = DutyCycle::for_latency_bound(SimDuration::from_mins(10));
        let e_tight = m.estimated_energy_per_day(&tight, &uplink, 100);
        let e_relaxed = m.estimated_energy_per_day(&relaxed, &uplink, 100);
        assert!(
            e_relaxed < e_tight / 2.0,
            "relaxed {e_relaxed} vs tight {e_tight}"
        );
    }

    #[test]
    fn deadline_follows_the_nearest_tolerance_class() {
        let mut m = QuerySensorMatcher::new();
        assert!(m.deadline_for(0.5).is_none(), "no classes, no deadline");
        m.register(class(2, 0.25)); // tight precision, tight latency
        m.register(class(30, 1.0)); // loose precision, relaxed latency
        assert_eq!(m.deadline_for(0.25), Some(SimDuration::from_mins(2)));
        assert_eq!(m.deadline_for(0.05), Some(SimDuration::from_mins(2)));
        assert_eq!(m.deadline_for(1.2), Some(SimDuration::from_mins(30)));
        // Equidistant tolerances (0.625 sits exactly between) tie to
        // the tighter latency bound.
        assert_eq!(m.deadline_for(0.625), Some(SimDuration::from_mins(2)));
    }

    #[test]
    fn clear_resets() {
        let mut m = QuerySensorMatcher::new();
        m.register(class(5, 0.5));
        m.clear();
        assert!(m.derive_retune().is_none());
    }
}
