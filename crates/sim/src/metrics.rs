//! Lightweight metric collection for experiment drivers.
//!
//! Two primitives cover every experiment in the workspace:
//!
//! * [`Counter`] — monotonically increasing event counts (packets sent,
//!   cache hits, model failures, ...).
//! * [`Summary`] — a reservoir of observations supporting mean, standard
//!   deviation, min/max, and exact quantiles (experiments are small enough
//!   that storing all samples is cheaper than an approximate sketch and
//!   keeps the figures exactly reproducible).

use std::fmt;

/// A named monotonic counter.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A collection of f64 observations with exact summary statistics.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    samples: Vec<f64>,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation; non-finite values are rejected.
    pub fn record(&mut self, x: f64) {
        if x.is_finite() {
            self.samples.push(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum() / self.samples.len() as f64
        }
    }

    /// Population standard deviation, or 0.0 when fewer than two samples.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        var.sqrt()
    }

    /// Minimum observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite_or(0.0)
    }

    /// Maximum observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite_or(0.0)
    }

    /// Exact quantile via the nearest-rank method; `q` in `[0, 1]`.
    ///
    /// Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// All recorded samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges another summary's samples into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Internal helper: map ±infinity sentinels (empty fold) to a default.
trait FiniteOr {
    fn pipe_finite_or(self, default: f64) -> f64;
}
impl FiniteOr for f64 {
    fn pipe_finite_or(self, default: f64) -> f64 {
        if self.is_finite() {
            self
        } else {
            default
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} max={:.4}",
            self.count(),
            self.mean(),
            self.std_dev(),
            self.min(),
            self.median(),
            self.p95(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_quantiles() {
        let mut s = Summary::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.median(), 50.0);
        assert_eq!(s.p95(), 95.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
    }

    #[test]
    fn summary_empty_defaults() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.median(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn summary_rejects_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_sample_std_dev_is_zero() {
        let mut s = Summary::new();
        s.record(42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.median(), 42.0);
    }
}
