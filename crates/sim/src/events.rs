//! The future-event list and a minimal run loop.
//!
//! Events are totally ordered by `(time, sequence)`: two events scheduled
//! for the same instant fire in scheduling order. This makes simulations
//! deterministic regardless of heap tie-breaking, which is essential for
//! reproducible figures.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
    cancelled: bool,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap and we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// `E` is the caller-defined event payload. The queue tracks the current
/// virtual time: popping an event advances the clock to that event's
/// timestamp, and scheduling in the past is clamped to "now".
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    cancelled: std::collections::BTreeSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: std::collections::BTreeSet::new(),
        }
    }

    /// The current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at` (clamped to now if in the
    /// past) and returns a cancellation handle.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            at,
            seq,
            event,
            cancelled: false,
        });
        EventId(seq)
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Lazy deletion: remember the id; skip it on pop.
        self.cancelled.insert(id.0)
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancelled || self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.at;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled heads so the peek is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let e = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&e.seq);
            } else {
                return Some(head.at);
            }
        }
        None
    }
}

/// A minimal simulation driver: pops events until the horizon or until the
/// queue drains, dispatching each to a handler that may schedule more.
pub struct Simulation<E> {
    queue: EventQueue<E>,
    horizon: SimTime,
    processed: u64,
}

impl<E> Simulation<E> {
    /// Creates a simulation that stops at `horizon` (events after it stay
    /// unprocessed).
    pub fn new(horizon: SimTime) -> Self {
        Simulation {
            queue: EventQueue::new(),
            horizon,
            processed: 0,
        }
    }

    /// Access to the underlying queue for scheduling.
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Runs until the queue drains or the horizon passes. The handler
    /// receives the queue (for scheduling follow-ups), the event time, and
    /// the event itself.
    pub fn run(&mut self, mut handler: impl FnMut(&mut EventQueue<E>, SimTime, E)) {
        while let Some(at) = self.queue.peek_time() {
            if at > self.horizon {
                break;
            }
            let (t, e) = self.queue.pop().expect("peeked event exists");
            self.processed += 1;
            handler(&mut self.queue, t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(5), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(3), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop_and_clamps_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "x");
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(10));
        // Scheduling in the past clamps to now.
        q.schedule_at(SimTime::from_secs(1), "y");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(2), "first");
        q.pop();
        q.schedule_in(SimDuration::from_secs(3), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, "b");
        assert!(q.pop().is_none());
        // Cancelling an unknown or already-fired id is a no-op.
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn peek_time_skips_cancelled_heads() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }

    #[test]
    fn simulation_respects_horizon() {
        let mut sim = Simulation::new(SimTime::from_secs(10));
        sim.queue().schedule_at(SimTime::from_secs(1), 1u32);
        sim.queue().schedule_at(SimTime::from_secs(20), 2u32);
        let mut seen = Vec::new();
        sim.run(|_, _, e| seen.push(e));
        assert_eq!(seen, vec![1]);
        assert_eq!(sim.processed(), 1);
    }

    #[test]
    fn handler_can_reschedule() {
        // A periodic tick implemented via the handler: counts ticks of a
        // 1-second timer over a 5-second horizon.
        let mut sim = Simulation::new(SimTime::from_secs(5));
        sim.queue().schedule_at(SimTime::from_secs(1), ());
        let mut ticks = 0;
        sim.run(|q, _, ()| {
            ticks += 1;
            q.schedule_in(SimDuration::from_secs(1), ());
        });
        assert_eq!(ticks, 5);
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10)
            .map(|i| q.schedule_at(SimTime::from_secs(i), i))
            .collect();
        for id in ids.iter().take(4) {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 6);
        assert!(!q.is_empty());
    }
}
