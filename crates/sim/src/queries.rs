//! Multi-user query workload generator.
//!
//! The paper's proxies are the tethered tier that "absorbs queries" for
//! many users; this module generates that load as a pure function of a
//! seed. Each simulated user independently emits NOW, PAST, and
//! aggregate queries at a configured rate, with PAST windows drawn
//! either uniformly over the recent archive or snapped to a shared
//! **hot window** (the dashboard-span pattern: many users watching the
//! same recent range at once — exactly the traffic a proxy-side shared
//! pull-reply cache and request coalescing exist to absorb).
//!
//! The generator is policy-free: it knows sensor *slots* and window
//! arithmetic, nothing about proxies or stores. The system tier maps
//! arrivals onto its own query types.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// What a user asked for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Current value.
    Now,
    /// Historical series over `[from, to]`.
    Past,
    /// Scalar aggregate over `[from, to]`.
    Aggregate,
}

/// One emitted query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryArrival {
    /// The emitting user.
    pub user: usize,
    /// Target sensor slot, in `0..sensors`.
    pub sensor_slot: usize,
    /// Query class.
    pub kind: QueryKind,
    /// Range start (PAST/aggregate; equals `to` for NOW).
    pub from: SimTime,
    /// Range end.
    pub to: SimTime,
    /// Acceptable absolute error.
    pub tolerance: f64,
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct QueryLoadConfig {
    /// Concurrent users.
    pub users: usize,
    /// Mean queries per user per hour.
    pub queries_per_user_per_hour: f64,
    /// Fraction of queries that are PAST (the rest split NOW vs
    /// aggregate by `aggregate_fraction`).
    pub past_fraction: f64,
    /// Fraction of non-PAST queries that are aggregates.
    pub aggregate_fraction: f64,
    /// PAST window length bounds.
    pub window_min: SimDuration,
    /// Longest PAST window.
    pub window_max: SimDuration,
    /// How far into the past window ends may reach.
    pub max_age: SimDuration,
    /// Tolerance choices; `tolerances[0]` is also the hot-window
    /// tolerance so hot queries coalesce exactly.
    pub tolerances: Vec<f64>,
    /// Fraction of PAST queries snapped to the shared hot window.
    pub hot_fraction: f64,
    /// Hot-window grid: window ends snap to multiples of this.
    pub hot_grid: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLoadConfig {
    fn default() -> Self {
        QueryLoadConfig {
            users: 8,
            queries_per_user_per_hour: 12.0,
            past_fraction: 0.6,
            aggregate_fraction: 0.25,
            window_min: SimDuration::from_mins(10),
            window_max: SimDuration::from_hours(2),
            max_age: SimDuration::from_hours(12),
            tolerances: vec![0.1, 0.5, 1.5],
            hot_fraction: 0.4,
            hot_grid: SimDuration::from_mins(30),
            seed: 0x9E_57,
        }
    }
}

/// The generator: call [`QueryLoad::step`] once per epoch.
pub struct QueryLoad {
    config: QueryLoadConfig,
    sensors: usize,
    rng: SimRng,
    emitted: u64,
}

impl QueryLoad {
    /// Creates a load over `sensors` sensor slots.
    pub fn new(config: QueryLoadConfig, sensors: usize) -> Self {
        let rng = SimRng::new(config.seed).split("query-load");
        QueryLoad {
            config,
            sensors: sensors.max(1),
            rng,
            emitted: 0,
        }
    }

    /// Total queries emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Per-user emission probability for one epoch (the thinned-Poisson
    /// law shared by every generator composed over this load).
    pub fn emit_probability(&self, epoch: SimDuration) -> f64 {
        (self.config.queries_per_user_per_hour * epoch.as_secs_f64() / 3600.0).min(1.0)
    }

    /// Concurrent users in this load.
    pub fn users(&self) -> usize {
        self.config.users
    }

    /// Emits this epoch's arrivals: each user flips a Bernoulli coin
    /// with the per-epoch rate (a thinned Poisson process).
    pub fn step(&mut self, t: SimTime, epoch: SimDuration) -> Vec<QueryArrival> {
        let p_emit = self.emit_probability(epoch);
        let mut out = Vec::new();
        for user in 0..self.config.users {
            if !self.rng.chance(p_emit) {
                continue;
            }
            out.push(self.draw(user, t));
            self.emitted += 1;
        }
        out
    }

    /// Draws one arrival for `user` at `t` (the per-query half of
    /// [`QueryLoad::step`], exposed so deployment-tier generators can
    /// compose their own arrival processes over the same query shapes).
    pub fn draw_one(&mut self, user: usize, t: SimTime) -> QueryArrival {
        self.emitted += 1;
        self.draw(user, t)
    }

    fn draw(&mut self, user: usize, t: SimTime) -> QueryArrival {
        let sensor_slot = self.rng.below(self.sensors as u64) as usize;
        if self.rng.chance(self.config.past_fraction) {
            let (from, to, tolerance) = if self.rng.chance(self.config.hot_fraction) {
                self.hot_window(t)
            } else {
                let len = SimDuration::from_secs_f64(self.rng.uniform_range(
                    self.config.window_min.as_secs_f64(),
                    self.config.window_max.as_secs_f64(),
                ));
                let age = SimDuration::from_secs_f64(
                    self.rng.uniform_range(0.0, self.config.max_age.as_secs_f64()),
                );
                let to = if t > SimTime::ZERO + age + len {
                    t - age
                } else {
                    SimTime::ZERO + len
                };
                let tol = *self
                    .rng
                    .choose(&self.config.tolerances)
                    .expect("non-empty tolerances");
                (to - len, to, tol)
            };
            QueryArrival {
                user,
                sensor_slot,
                kind: QueryKind::Past,
                from,
                to,
                tolerance,
            }
        } else if self.rng.chance(self.config.aggregate_fraction) {
            let (from, to, _) = self.hot_window(t);
            QueryArrival {
                user,
                sensor_slot,
                kind: QueryKind::Aggregate,
                from,
                to,
                tolerance: self.config.tolerances[0],
            }
        } else {
            let tol = *self
                .rng
                .choose(&self.config.tolerances)
                .expect("non-empty tolerances");
            QueryArrival {
                user,
                sensor_slot,
                kind: QueryKind::Now,
                from: t,
                to: t,
                tolerance: tol,
            }
        }
    }

    /// The shared hot window at `t`: ends at the last grid boundary,
    /// one grid cell long, always at the head tolerance — so every hot
    /// arrival across users carries an identical (window, tolerance)
    /// and coalesces into one pull.
    fn hot_window(&self, t: SimTime) -> (SimTime, SimTime, f64) {
        let grid = (self.config.hot_grid.as_secs_f64() as u64).max(1);
        let end_s = (t.as_secs() / grid) * grid;
        let end = SimTime::from_secs(end_s.max(grid));
        (end - self.config.hot_grid, end, self.config.tolerances[0])
    }
}

/// One emitted cross-proxy query: a per-proxy [`QueryArrival`] plus the
/// deployment group (proxy) it targets. `arrival.sensor_slot` is local
/// to the group; the deployment tier maps `(group, slot)` to a global
/// sensor id.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetArrival {
    /// Target group (proxy index) — Zipf-skewed.
    pub group: usize,
    /// The query, with a group-local sensor slot.
    pub arrival: QueryArrival,
}

/// Cross-proxy workload parameters.
#[derive(Clone, Debug)]
pub struct FleetLoadConfig {
    /// Per-query shape parameters (users, rates, windows, tolerances,
    /// hot-window grid — shared across groups, so hot windows correlate
    /// deployment-wide).
    pub load: QueryLoadConfig,
    /// Deployment groups (proxies).
    pub groups: usize,
    /// Zipf skew exponent over groups: group `g` is drawn with weight
    /// `1/(g+1)^s`. Zero is uniform; 1–2 concentrates most queries on
    /// group 0 (the hot proxy).
    pub zipf_s: f64,
}

/// Zipf-skewed multi-proxy query workload: each arrival first draws its
/// target group from a Zipf law over proxies (group 0 hottest), then a
/// query shape from the shared [`QueryLoad`] generator — so the hot
/// proxy sees the same *kinds* of queries as the cold ones, just many
/// more of them, and hot PAST windows repeat across proxies (the
/// deployment-wide dashboard pattern).
pub struct FleetQueryLoad {
    inner: QueryLoad,
    /// Cumulative Zipf weights over groups, normalized to 1.
    cumulative: Vec<f64>,
    rng: SimRng,
    /// Queries emitted per group.
    per_group: Vec<u64>,
}

impl FleetQueryLoad {
    /// Creates a load over `config.groups` groups of
    /// `sensors_per_group` sensor slots each.
    pub fn new(config: FleetLoadConfig, sensors_per_group: usize) -> Self {
        let groups = config.groups.max(1);
        let weights: Vec<f64> = (0..groups)
            .map(|g| 1.0 / ((g + 1) as f64).powf(config.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        let rng = SimRng::new(config.load.seed).split("fleet-groups");
        FleetQueryLoad {
            inner: QueryLoad::new(config.load, sensors_per_group),
            cumulative,
            rng,
            per_group: vec![0; groups],
        }
    }

    /// Total queries emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.emitted()
    }

    /// Queries emitted per group so far.
    pub fn per_group(&self) -> &[u64] {
        &self.per_group
    }

    /// Emits this epoch's arrivals (same thinned-Poisson process as
    /// [`QueryLoad::step`], with a Zipf group draw per arrival).
    pub fn step(&mut self, t: SimTime, epoch: SimDuration) -> Vec<FleetArrival> {
        let p_emit = self.inner.emit_probability(epoch);
        let mut out = Vec::new();
        for user in 0..self.inner.users() {
            if !self.rng.chance(p_emit) {
                continue;
            }
            let u = self.rng.uniform();
            let group = self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1);
            self.per_group[group] += 1;
            out.push(FleetArrival {
                group,
                arrival: self.inner.draw_one(user, t),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(seed: u64) -> Vec<QueryArrival> {
        let mut load = QueryLoad::new(
            QueryLoadConfig {
                seed,
                ..QueryLoadConfig::default()
            },
            6,
        );
        let mut all = Vec::new();
        for e in 0..2_000u64 {
            let t = SimTime::from_hours(13) + SimDuration::from_secs(31) * e;
            all.extend(load.step(t, SimDuration::from_secs(31)));
        }
        all
    }

    #[test]
    fn rate_is_respected_roughly() {
        let all = run(1);
        // 8 users × 12 q/h over ~17.2 h ≈ 1653 expected.
        let hours = 2_000.0 * 31.0 / 3600.0;
        let expected = 8.0 * 12.0 * hours;
        assert!(
            (all.len() as f64) > expected * 0.8 && (all.len() as f64) < expected * 1.2,
            "{} vs expected {expected}",
            all.len()
        );
    }

    #[test]
    fn hot_windows_repeat_exactly_across_users() {
        let all = run(2);
        use std::collections::HashMap;
        let mut by_window: HashMap<(u64, u64), usize> = HashMap::new();
        for q in all.iter().filter(|q| q.kind == QueryKind::Past) {
            *by_window
                .entry((q.from.as_secs(), q.to.as_secs()))
                .or_default() += 1;
        }
        let max_repeat = by_window.values().copied().max().unwrap_or(0);
        assert!(
            max_repeat >= 5,
            "hot windows never repeated: max repeat {max_repeat}"
        );
    }

    #[test]
    fn windows_are_well_formed() {
        for q in run(3) {
            assert!(q.from <= q.to, "{q:?}");
            assert!(q.tolerance > 0.0);
            assert!(q.sensor_slot < 6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    fn run_fleet(zipf_s: f64, seed: u64) -> (FleetQueryLoad, Vec<FleetArrival>) {
        let mut load = FleetQueryLoad::new(
            FleetLoadConfig {
                load: QueryLoadConfig {
                    seed,
                    ..QueryLoadConfig::default()
                },
                groups: 4,
                zipf_s,
            },
            3,
        );
        let mut all = Vec::new();
        for e in 0..3_000u64 {
            let t = SimTime::from_hours(13) + SimDuration::from_secs(31) * e;
            all.extend(load.step(t, SimDuration::from_secs(31)));
        }
        (load, all)
    }

    #[test]
    fn zipf_skew_concentrates_on_the_hot_group() {
        let (load, all) = run_fleet(1.4, 5);
        assert!(!all.is_empty());
        let pg = load.per_group();
        assert_eq!(pg.iter().sum::<u64>(), all.len() as u64);
        assert!(
            pg[0] > pg[3] * 3,
            "group 0 must be hot under skew: {pg:?}"
        );
        // Every group still sees some traffic, with well-formed queries.
        assert!(pg.iter().all(|&n| n > 0), "{pg:?}");
        for q in &all {
            assert!(q.group < 4);
            assert!(q.arrival.sensor_slot < 3);
            assert!(q.arrival.from <= q.arrival.to);
        }
    }

    #[test]
    fn zero_skew_is_roughly_uniform() {
        let (load, _) = run_fleet(0.0, 6);
        let pg = load.per_group();
        let (lo, hi) = (
            *pg.iter().min().expect("non-empty"),
            *pg.iter().max().expect("non-empty"),
        );
        assert!(hi < lo * 2, "uniform draw skewed: {pg:?}");
    }

    #[test]
    fn fleet_hot_windows_repeat_across_groups() {
        let (_, all) = run_fleet(1.0, 7);
        use std::collections::HashMap;
        let mut windows: HashMap<(u64, u64), std::collections::HashSet<usize>> = HashMap::new();
        for q in all.iter().filter(|q| q.arrival.kind == QueryKind::Past) {
            windows
                .entry((q.arrival.from.as_secs(), q.arrival.to.as_secs()))
                .or_default()
                .insert(q.group);
        }
        assert!(
            windows.values().any(|groups| groups.len() >= 3),
            "hot windows never correlated across groups"
        );
    }

    #[test]
    fn fleet_deterministic_given_seed() {
        assert_eq!(run_fleet(1.2, 9).1, run_fleet(1.2, 9).1);
        assert_ne!(run_fleet(1.2, 9).1, run_fleet(1.2, 10).1);
    }
}
