//! Deterministic, splittable pseudo-random numbers.
//!
//! The kernel ships its own tiny generator (xoshiro256++ seeded through
//! SplitMix64) instead of depending on `rand`, so that the simulation core
//! has zero dependencies and identical streams on every platform. Higher
//! layers that want `rand`'s distribution machinery can still use it; the
//! experiments only need uniform, Gaussian, exponential, and Poisson
//! variates, all provided here.
//!
//! Determinism contract: for a fixed seed and a fixed sequence of calls,
//! the outputs are identical across runs, platforms, and compiler
//! versions. [`SimRng::split`] derives an independent stream for a labelled
//! component so that adding RNG consumers to one part of an experiment
//! does not perturb the draws seen by another.

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second Gaussian variate from the Box–Muller pair.
    gauss_spare: Option<f64>,
}

/// SplitMix64 step, used for seeding and stream splitting.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent stream for a labelled sub-component.
    ///
    /// The label is hashed (FNV-1a) together with the parent state so two
    /// distinct labels yield uncorrelated streams.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SimRng::new(h ^ self.s[0].rotate_left(17) ^ self.s[2])
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// Returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard Gaussian variate (Box–Muller, with caching of the pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Gaussian with the given mean and standard deviation.
    pub fn gaussian_ms(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential variate with the given rate (events per unit time).
    ///
    /// Returns `f64::INFINITY` for non-positive rates.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Poisson variate with the given mean (Knuth for small means,
    /// Gaussian approximation above 64 where the error is negligible).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean > 64.0 {
            let x = self.gaussian_ms(mean, mean.sqrt()).round();
            return if x < 0.0 { 0 } else { x as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut a1 = root.split("radio");
        let mut a2 = root.split("radio");
        let mut b = root.split("workload");
        let first_a = a1.next_u64();
        assert_eq!(first_a, a2.next_u64());
        assert_ne!(first_a, b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::new(11);
        let n = 50_000;
        let (mut s1, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gaussian();
            s1 += z;
            s2 += z * z;
        }
        let mean = s1 / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::new(13);
        let rate = 0.25;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
        assert!(r.exponential(0.0).is_infinite());
    }

    #[test]
    fn poisson_mean_matches() {
        let mut r = SimRng::new(17);
        for &m in &[0.5, 4.0, 100.0] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| r.poisson(m) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - m).abs() < 0.05 * m.max(1.0) + 0.05,
                "mean {mean} target {m}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[5]).copied() == Some(5));
    }
}
