//! Deterministic fault injection: node crash/reboot windows and link
//! blackout windows.
//!
//! A fault plan is pure data — a set of time windows queried by the
//! system driver each epoch — so the same plan replays identically under
//! any seed and composes with the stochastic frame-loss models in
//! `presto-net` (a blackout suppresses a link *entirely*, on top of
//! whatever the loss process would have done). Crash semantics follow
//! the PRESTO hardware model: a crashed node stops sampling,
//! transmitting, and receiving; on reboot its RAM state (model replica,
//! pending batch) is gone but its flash archive survives, which is
//! exactly why archive-backed recovery works.

use crate::time::SimTime;

/// One node-down window: the node is dead in `[down_from, up_at)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    /// Index of the crashed node (global sensor id in system drivers).
    pub node: usize,
    /// First instant the node is down.
    pub down_from: SimTime,
    /// First instant the node is back up (reboot completes).
    pub up_at: SimTime,
}

/// One link blackout window: affected links deliver nothing in
/// `[from, to)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blackout {
    /// First instant of the blackout.
    pub from: SimTime,
    /// First instant after the blackout.
    pub to: SimTime,
    /// Affected nodes; `None` blacks out every link.
    pub nodes: Option<Vec<usize>>,
}

/// One shared-fading burst window: the common loss state near every
/// proxy is pinned *bad* in `[from, to)`. Only meaningful when the
/// deployment runs correlated loss (a shared Gilbert–Elliott state);
/// drivers without one ignore these windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SharedBurst {
    /// First instant of the burst.
    pub from: SimTime,
    /// First instant after the burst.
    pub to: SimTime,
}

/// One split-brain window: every proxy↔proxy mesh link crossing the
/// `group` boundary is cut (both directions) in `[from, to)`, while
/// sensor downlinks stay up. The cut is *asymmetric with respect to the
/// fleet* — proxies on each side keep talking among themselves and keep
/// serving their sensors, but heartbeats and forwards across the
/// boundary die — which is exactly the failure a single omniscient
/// membership observer cannot distinguish from a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MeshPartition {
    /// Proxies on one side of the cut (the complement is the other).
    pub group: Vec<usize>,
    /// First instant of the partition.
    pub from: SimTime,
    /// First instant after the partition heals.
    pub to: SimTime,
}

/// One single-link mesh cut: only the `a`↔`b` proxy link is severed
/// (both directions) in `[from, to)`. Unlike a [`MeshPartition`], no
/// proxy loses contact with a majority, so quorum membership must keep
/// everyone alive — the discriminating case for pairwise suspicion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeshLinkCut {
    /// One endpoint proxy.
    pub a: usize,
    /// The other endpoint proxy.
    pub b: usize,
    /// First instant of the cut.
    pub from: SimTime,
    /// First instant after the cut heals.
    pub to: SimTime,
}

/// One fault instance for attribution: a structured name for an
/// injected window, carried by observability incidents so an alarm
/// raised during a fault is *blamed* on it (and an alarm outside every
/// window is an unexplained regression).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ActiveFault {
    /// A sensor-node crash window ([`CrashWindow`]).
    NodeCrash {
        /// The crashed node.
        node: usize,
        /// Window start.
        from: SimTime,
        /// Window end (first instant back up).
        to: SimTime,
    },
    /// A link blackout window ([`Blackout`]); `nodes` empty means all.
    LinkBlackout {
        /// Affected nodes (empty = every link).
        nodes: Vec<usize>,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
    /// A shared-fading burst ([`SharedBurst`]).
    SharedBurst {
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
    /// A proxy-process crash window.
    ProxyCrash {
        /// The crashed proxy.
        proxy: usize,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
    /// A split-brain mesh partition ([`MeshPartition`]).
    MeshPartition {
        /// Proxies on the minority side of the cut.
        group: Vec<usize>,
        /// Window start.
        from: SimTime,
        /// Window end (heal).
        to: SimTime,
    },
    /// A single-link mesh cut ([`MeshLinkCut`]).
    MeshLinkCut {
        /// One endpoint proxy.
        a: usize,
        /// The other endpoint proxy.
        b: usize,
        /// Window start.
        from: SimTime,
        /// Window end.
        to: SimTime,
    },
}

impl ActiveFault {
    /// The fault's injection window `[from, to)`.
    pub fn window(&self) -> (SimTime, SimTime) {
        match self {
            ActiveFault::NodeCrash { from, to, .. }
            | ActiveFault::LinkBlackout { from, to, .. }
            | ActiveFault::SharedBurst { from, to }
            | ActiveFault::ProxyCrash { from, to, .. }
            | ActiveFault::MeshPartition { from, to, .. }
            | ActiveFault::MeshLinkCut { from, to, .. } => (*from, *to),
        }
    }

    /// A short stable label for reports (`mesh_partition`, `proxy_crash`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            ActiveFault::NodeCrash { .. } => "node_crash",
            ActiveFault::LinkBlackout { .. } => "link_blackout",
            ActiveFault::SharedBurst { .. } => "shared_burst",
            ActiveFault::ProxyCrash { .. } => "proxy_crash",
            ActiveFault::MeshPartition { .. } => "mesh_partition",
            ActiveFault::MeshLinkCut { .. } => "mesh_link_cut",
        }
    }
}

/// A deterministic schedule of crashes and blackouts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    crashes: Vec<CrashWindow>,
    blackouts: Vec<Blackout>,
    shared_bursts: Vec<SharedBurst>,
    /// Proxy-tier blackouts: the *proxy* process is down in the window
    /// (reusing [`CrashWindow`] with `node` = proxy index). A down
    /// proxy consumes no uplinks, pumps no queries, trains nothing, and
    /// its RAM-resident query state dies; its sensors keep archiving
    /// and become reachable again when they re-home to a survivor or
    /// the proxy reboots.
    proxy_crashes: Vec<CrashWindow>,
    /// Split-brain windows over the proxy↔proxy mesh.
    mesh_partitions: Vec<MeshPartition>,
    /// Single-link mesh cuts.
    mesh_link_cuts: Vec<MeshLinkCut>,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.blackouts.is_empty()
            && self.shared_bursts.is_empty()
            && self.proxy_crashes.is_empty()
            && self.mesh_partitions.is_empty()
            && self.mesh_link_cuts.is_empty()
    }

    /// Adds a crash/reboot window for one node (builder style).
    pub fn with_crash(mut self, node: usize, down_from: SimTime, up_at: SimTime) -> Self {
        assert!(down_from <= up_at, "crash window must not be inverted");
        self.crashes.push(CrashWindow {
            node,
            down_from,
            up_at,
        });
        self
    }

    /// Adds a blackout of every link (builder style).
    pub fn with_blackout(mut self, from: SimTime, to: SimTime) -> Self {
        assert!(from <= to, "blackout window must not be inverted");
        self.blackouts.push(Blackout {
            from,
            to,
            nodes: None,
        });
        self
    }

    /// Adds a blackout of specific nodes' links (builder style).
    pub fn with_blackout_of(mut self, nodes: Vec<usize>, from: SimTime, to: SimTime) -> Self {
        assert!(from <= to, "blackout window must not be inverted");
        self.blackouts.push(Blackout {
            from,
            to,
            nodes: Some(nodes),
        });
        self
    }

    /// The scheduled crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// The scheduled blackouts.
    pub fn blackouts(&self) -> &[Blackout] {
        &self.blackouts
    }

    /// Adds a shared-fading burst window (builder style): while active,
    /// a correlated-loss deployment pins its common channel state bad,
    /// so every channel near the proxy fades at once.
    pub fn with_shared_burst(mut self, from: SimTime, to: SimTime) -> Self {
        assert!(from <= to, "burst window must not be inverted");
        self.shared_bursts.push(SharedBurst { from, to });
        self
    }

    /// The scheduled shared-fading bursts.
    pub fn shared_bursts(&self) -> &[SharedBurst] {
        &self.shared_bursts
    }

    /// True while a shared-fading burst is active at `t`.
    pub fn shared_burst_active(&self, t: SimTime) -> bool {
        self.shared_bursts.iter().any(|b| b.from <= t && t < b.to)
    }

    /// True when `node` is crashed at `t`.
    pub fn is_down(&self, node: usize, t: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && c.down_from <= t && t < c.up_at)
    }

    /// True when `node`'s link is blacked out at `t`.
    pub fn in_blackout(&self, node: usize, t: SimTime) -> bool {
        self.blackouts.iter().any(|b| {
            b.from <= t
                && t < b.to
                && b.nodes.as_ref().is_none_or(|ns| ns.contains(&node))
        })
    }

    /// True when `node` can neither transmit nor receive at `t`
    /// (crashed, or its link is blacked out).
    pub fn is_unreachable(&self, node: usize, t: SimTime) -> bool {
        self.is_down(node, t) || self.in_blackout(node, t)
    }

    /// True when a reboot of `node` completed in the half-open interval
    /// `(since, until]` — the driver's cue to wipe the node's RAM state.
    pub fn rebooted_within(&self, node: usize, since: SimTime, until: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.node == node && since < c.up_at && c.up_at <= until)
    }

    /// Adds a proxy blackout window (builder style): the proxy process
    /// is dead in `[down_from, up_at)`.
    pub fn with_proxy_crash(mut self, proxy: usize, down_from: SimTime, up_at: SimTime) -> Self {
        assert!(down_from <= up_at, "proxy crash window must not be inverted");
        self.proxy_crashes.push(CrashWindow {
            node: proxy,
            down_from,
            up_at,
        });
        self
    }

    /// The scheduled proxy blackouts.
    pub fn proxy_crashes(&self) -> &[CrashWindow] {
        &self.proxy_crashes
    }

    /// True when `proxy` is down at `t`.
    pub fn proxy_down(&self, proxy: usize, t: SimTime) -> bool {
        self.proxy_crashes
            .iter()
            .any(|c| c.node == proxy && c.down_from <= t && t < c.up_at)
    }

    /// Adds a split-brain window (builder style): every mesh link
    /// between `group` and its complement is cut in `[from, to)`.
    pub fn with_mesh_partition(mut self, group: Vec<usize>, from: SimTime, to: SimTime) -> Self {
        assert!(from <= to, "partition window must not be inverted");
        self.mesh_partitions.push(MeshPartition { group, from, to });
        self
    }

    /// Adds a single-link mesh cut (builder style): only the `a`↔`b`
    /// proxy link is severed in `[from, to)`.
    pub fn with_mesh_link_cut(mut self, a: usize, b: usize, from: SimTime, to: SimTime) -> Self {
        assert!(from <= to, "link-cut window must not be inverted");
        self.mesh_link_cuts.push(MeshLinkCut { a, b, from, to });
        self
    }

    /// The scheduled split-brain windows.
    pub fn mesh_partitions(&self) -> &[MeshPartition] {
        &self.mesh_partitions
    }

    /// The scheduled single-link mesh cuts.
    pub fn mesh_link_cuts(&self) -> &[MeshLinkCut] {
        &self.mesh_link_cuts
    }

    /// True when the mesh link between proxies `a` and `b` is cut at
    /// `t` — either a single-link cut names the pair, or a split-brain
    /// window puts `a` and `b` on opposite sides of the boundary. The
    /// cut is symmetric: `mesh_link_cut(a, b, t) == mesh_link_cut(b, a, t)`.
    /// Every scheduled fault whose window `[from, to)` overlaps the
    /// query interval `[lo, hi]` — the attribution set an observability
    /// incident in that interval carries. Stable order: plan insertion
    /// order within each fault class, classes in declaration order.
    pub fn active_in(&self, lo: SimTime, hi: SimTime) -> Vec<ActiveFault> {
        let overlaps = |from: SimTime, to: SimTime| from <= hi && lo < to;
        let mut out = Vec::new();
        for c in &self.crashes {
            if overlaps(c.down_from, c.up_at) {
                out.push(ActiveFault::NodeCrash {
                    node: c.node,
                    from: c.down_from,
                    to: c.up_at,
                });
            }
        }
        for b in &self.blackouts {
            if overlaps(b.from, b.to) {
                out.push(ActiveFault::LinkBlackout {
                    nodes: b.nodes.clone().unwrap_or_default(),
                    from: b.from,
                    to: b.to,
                });
            }
        }
        for s in &self.shared_bursts {
            if overlaps(s.from, s.to) {
                out.push(ActiveFault::SharedBurst {
                    from: s.from,
                    to: s.to,
                });
            }
        }
        for c in &self.proxy_crashes {
            if overlaps(c.down_from, c.up_at) {
                out.push(ActiveFault::ProxyCrash {
                    proxy: c.node,
                    from: c.down_from,
                    to: c.up_at,
                });
            }
        }
        for p in &self.mesh_partitions {
            if overlaps(p.from, p.to) {
                out.push(ActiveFault::MeshPartition {
                    group: p.group.clone(),
                    from: p.from,
                    to: p.to,
                });
            }
        }
        for c in &self.mesh_link_cuts {
            if overlaps(c.from, c.to) {
                out.push(ActiveFault::MeshLinkCut {
                    a: c.a,
                    b: c.b,
                    from: c.from,
                    to: c.to,
                });
            }
        }
        out
    }

    /// Every scheduled fault active at the instant `t`.
    pub fn active_at(&self, t: SimTime) -> Vec<ActiveFault> {
        self.active_in(t, t)
    }

    pub fn mesh_link_cut(&self, a: usize, b: usize, t: SimTime) -> bool {
        self.mesh_partitions.iter().any(|p| {
            p.from <= t && t < p.to && (p.group.contains(&a) != p.group.contains(&b))
        }) || self.mesh_link_cuts.iter().any(|c| {
            c.from <= t
                && t < c.to
                && ((c.a == a && c.b == b) || (c.a == b && c.b == a))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.is_down(0, t(100)));
        assert!(!p.in_blackout(0, t(100)));
        assert!(!p.is_unreachable(3, t(0)));
    }

    #[test]
    fn crash_windows_are_half_open() {
        let p = FaultPlan::none().with_crash(2, t(10), t(20));
        assert!(!p.is_down(2, t(9)));
        assert!(p.is_down(2, t(10)));
        assert!(p.is_down(2, t(19)));
        assert!(!p.is_down(2, t(20)));
        // Other nodes untouched.
        assert!(!p.is_down(1, t(15)));
    }

    #[test]
    fn blackouts_scope_to_nodes_or_all() {
        let p = FaultPlan::none()
            .with_blackout(t(100), t(110))
            .with_blackout_of(vec![1, 3], t(200), t(210));
        assert!(p.in_blackout(7, t(105)));
        assert!(!p.in_blackout(7, t(205)));
        assert!(p.in_blackout(1, t(205)));
        assert!(p.in_blackout(3, t(209)));
        assert!(!p.in_blackout(3, t(210)));
    }

    #[test]
    fn reboot_detection_is_edge_triggered() {
        let p = FaultPlan::none().with_crash(0, t(10), t(20));
        assert!(p.rebooted_within(0, t(15), t(20)));
        assert!(p.rebooted_within(0, t(19), t(25)));
        assert!(!p.rebooted_within(0, t(20), t(30)), "already up at `since`");
        assert!(!p.rebooted_within(0, t(5), t(15)), "still down");
        assert!(!p.rebooted_within(1, t(15), t(25)), "different node");
    }

    #[test]
    fn shared_bursts_are_half_open_windows() {
        let p = FaultPlan::none().with_shared_burst(t(50), t(60));
        assert!(!p.is_empty());
        assert!(!p.shared_burst_active(t(49)));
        assert!(p.shared_burst_active(t(50)));
        assert!(p.shared_burst_active(t(59)));
        assert!(!p.shared_burst_active(t(60)));
        // Bursts alone make no node unreachable.
        assert!(!p.is_unreachable(0, t(55)));
    }

    #[test]
    fn proxy_crash_windows_are_half_open_and_scoped() {
        let p = FaultPlan::none().with_proxy_crash(1, t(100), t(200));
        assert!(!p.is_empty());
        assert!(!p.proxy_down(1, t(99)));
        assert!(p.proxy_down(1, t(100)));
        assert!(p.proxy_down(1, t(199)));
        assert!(!p.proxy_down(1, t(200)));
        assert!(!p.proxy_down(0, t(150)), "other proxies untouched");
        // A proxy blackout alone makes no *sensor* unreachable (the
        // driver derives sensor reachability from its serving proxy).
        assert!(!p.is_unreachable(1, t(150)));
    }

    #[test]
    fn mesh_partition_cuts_exactly_the_boundary_links() {
        let p = FaultPlan::none().with_mesh_partition(vec![2], t(100), t(200));
        assert!(!p.is_empty());
        // Boundary links are cut, symmetrically, only inside the window.
        assert!(p.mesh_link_cut(0, 2, t(100)));
        assert!(p.mesh_link_cut(2, 0, t(150)));
        assert!(p.mesh_link_cut(1, 2, t(199)));
        assert!(!p.mesh_link_cut(0, 2, t(99)));
        assert!(!p.mesh_link_cut(0, 2, t(200)), "healed at `to`");
        // Same-side links stay up — downlinks are untouched by design.
        assert!(!p.mesh_link_cut(0, 1, t(150)));
        assert!(!p.is_unreachable(2, t(150)), "partitioned proxy is alive");
    }

    #[test]
    fn single_link_cut_severs_one_pair_only() {
        let p = FaultPlan::none().with_mesh_link_cut(0, 2, t(10), t(20));
        assert!(!p.is_empty());
        assert!(p.mesh_link_cut(0, 2, t(10)));
        assert!(p.mesh_link_cut(2, 0, t(19)), "cut is symmetric");
        assert!(!p.mesh_link_cut(0, 2, t(20)));
        assert!(!p.mesh_link_cut(0, 1, t(15)));
        assert!(!p.mesh_link_cut(1, 2, t(15)));
    }

    #[test]
    fn active_in_names_exactly_the_overlapping_faults() {
        let p = FaultPlan::none()
            .with_crash(3, t(10), t(20))
            .with_shared_burst(t(50), t(60))
            .with_proxy_crash(1, t(100), t(200))
            .with_mesh_partition(vec![2], t(150), t(250))
            .with_mesh_link_cut(0, 1, t(300), t(310));
        assert!(p.active_in(t(25), t(45)).is_empty(), "gap between faults");
        assert_eq!(
            p.active_at(t(15)),
            vec![ActiveFault::NodeCrash {
                node: 3,
                from: t(10),
                to: t(20),
            }]
        );
        // A query spanning the proxy crash and the partition names both,
        // in class-declaration order.
        let both = p.active_in(t(190), t(210));
        assert_eq!(both.len(), 2);
        assert_eq!(both[0].kind(), "proxy_crash");
        assert_eq!(both[1].kind(), "mesh_partition");
        assert_eq!(both[1].window(), (t(150), t(250)));
        // Half-open windows: the heal instant is out, the start is in.
        assert!(p.active_at(t(250)).is_empty());
        assert_eq!(p.active_at(t(300)).len(), 1);
    }

    #[test]
    fn unreachable_merges_crash_and_blackout() {
        let p = FaultPlan::none()
            .with_crash(0, t(10), t(20))
            .with_blackout_of(vec![0], t(30), t(40));
        assert!(p.is_unreachable(0, t(15)));
        assert!(p.is_unreachable(0, t(35)));
        assert!(!p.is_unreachable(0, t(25)));
    }
}
