//! Virtual time for the simulation kernel.
//!
//! Time is an unsigned count of microseconds since the start of the
//! simulation. Microsecond resolution comfortably covers both the
//! millisecond-scale MAC preambles of `presto-net` and the multi-week
//! experiment horizons of the Figure 2 reproduction without overflow
//! (`u64` microseconds ≈ 584,000 years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates an instant from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Creates an instant from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// Creates an instant from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * 86_400_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to microseconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    /// Time as fractional days.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / 8.64e10
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration since an earlier instant, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Hour-of-day in `[0, 24)` assuming the epoch is midnight.
    ///
    /// Used by the seasonal models and the diurnal workload generators.
    pub fn hour_of_day(self) -> f64 {
        (self.as_secs_f64() / 3600.0) % 24.0
    }

    /// Day index since the epoch (day 0 is the first day).
    pub fn day_index(self) -> u64 {
        self.0 / 86_400_000_000
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000_000)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e6).round() as u64)
    }

    /// Creates a duration from fractional minutes (Figure 2's x-axis unit).
    pub fn from_mins_f64(m: f64) -> Self {
        Self::from_secs_f64(m * 60.0)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 6e7
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of two durations (how many `rhs` fit in `self`).
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0.checked_div(rhs.0).unwrap_or(0)
    }

    /// Multiplies the duration by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // Saturating: "infinitely far in the future" stays representable
        // (e.g. the gap drawn from a zero-rate Poisson process).
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs();
        let (d, rem) = (s / 86_400, s % 86_400);
        let (h, rem) = (rem / 3_600, rem % 3_600);
        let (m, sec) = (rem / 60, rem % 60);
        write!(f, "{d}d {h:02}:{m:02}:{sec:02}")
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 < 60_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.2}min", self.as_mins_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(
            SimDuration::from_mins_f64(16.5),
            SimDuration::from_secs(990)
        );
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(31);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(25) + SimDuration::from_mins(30);
        assert!((t.hour_of_day() - 1.5).abs() < 1e-9);
        assert_eq!(t.day_index(), 1);
    }

    #[test]
    fn div_duration_counts_intervals() {
        let horizon = SimDuration::from_days(1);
        let epoch = SimDuration::from_secs(31);
        assert_eq!(horizon.div_duration(epoch), 86_400 / 31);
        assert_eq!(horizon.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(10)), "10us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "90.00min");
        assert_eq!(
            format!("{}", SimTime::from_days(2) + SimDuration::from_secs(3_723)),
            "2d 01:02:03"
        );
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a - SimDuration::from_secs(10), SimTime::ZERO);
    }
}
