//! Energy accounting.
//!
//! PRESTO's central argument is economic: radio communication is roughly
//! two orders of magnitude more expensive than flash storage and four
//! orders more expensive than computation (paper §1, citing Pottie &
//! Kaiser). Every claim in the evaluation therefore reduces to *joules
//! charged per hardware category*. The [`EnergyLedger`] is the single
//! source of truth for those charges; `presto-net` and `presto-archive`
//! charge it, and the experiment drivers read it.

use std::fmt;

/// Hardware categories to which energy is charged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EnergyCategory {
    /// Radio transmission (payload bytes, headers, preambles).
    RadioTx,
    /// Radio reception of frames addressed to (or overheard by) the node.
    RadioRx,
    /// Idle listening: LPL channel probes and receive windows.
    RadioListen,
    /// Microcontroller computation (model checks, compression, ...).
    Cpu,
    /// Flash page reads.
    FlashRead,
    /// Flash page programs and block erases.
    FlashWrite,
    /// The sensing transducer itself (ADC sampling).
    Sensing,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 7] = [
        EnergyCategory::RadioTx,
        EnergyCategory::RadioRx,
        EnergyCategory::RadioListen,
        EnergyCategory::Cpu,
        EnergyCategory::FlashRead,
        EnergyCategory::FlashWrite,
        EnergyCategory::Sensing,
    ];

    /// Short, stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            EnergyCategory::RadioTx => "radio-tx",
            EnergyCategory::RadioRx => "radio-rx",
            EnergyCategory::RadioListen => "radio-listen",
            EnergyCategory::Cpu => "cpu",
            EnergyCategory::FlashRead => "flash-read",
            EnergyCategory::FlashWrite => "flash-write",
            EnergyCategory::Sensing => "sensing",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyCategory::RadioTx => 0,
            EnergyCategory::RadioRx => 1,
            EnergyCategory::RadioListen => 2,
            EnergyCategory::Cpu => 3,
            EnergyCategory::FlashRead => 4,
            EnergyCategory::FlashWrite => 5,
            EnergyCategory::Sensing => 6,
        }
    }
}

/// Per-node energy ledger, in joules, split by [`EnergyCategory`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    joules: [f64; 7],
    charges: [u64; 7],
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `joules` to `category`.
    ///
    /// Negative or non-finite charges are rejected (ignored) — energy only
    /// flows out of a battery.
    pub fn charge(&mut self, category: EnergyCategory, joules: f64) {
        if joules.is_finite() && joules > 0.0 {
            self.joules[category.index()] += joules;
            self.charges[category.index()] += 1;
        }
    }

    /// Total joules charged to one category.
    pub fn category(&self, category: EnergyCategory) -> f64 {
        self.joules[category.index()]
    }

    /// Number of individual charges recorded against one category.
    pub fn charge_count(&self, category: EnergyCategory) -> u64 {
        self.charges[category.index()]
    }

    /// Total joules across all categories.
    pub fn total(&self) -> f64 {
        self.joules.iter().sum()
    }

    /// Radio subtotal (tx + rx + listen) — the paper's "communication" cost.
    pub fn radio_total(&self) -> f64 {
        self.category(EnergyCategory::RadioTx)
            + self.category(EnergyCategory::RadioRx)
            + self.category(EnergyCategory::RadioListen)
    }

    /// Storage subtotal (flash read + write).
    pub fn storage_total(&self) -> f64 {
        self.category(EnergyCategory::FlashRead) + self.category(EnergyCategory::FlashWrite)
    }

    /// Adds every category of `other` into `self` (used to aggregate a
    /// tier's ledgers into a deployment total).
    pub fn merge(&mut self, other: &EnergyLedger) {
        for i in 0..7 {
            self.joules[i] += other.joules[i];
            self.charges[i] += other.charges[i];
        }
    }

    /// The difference `self - other`, clamped at zero per category.
    ///
    /// Useful for measuring the energy spent inside a window given ledger
    /// snapshots at the window boundaries.
    pub fn delta_since(&self, earlier: &EnergyLedger) -> EnergyLedger {
        let mut out = EnergyLedger::new();
        for i in 0..7 {
            out.joules[i] = (self.joules[i] - earlier.joules[i]).max(0.0);
            out.charges[i] = self.charges[i].saturating_sub(earlier.charges[i]);
        }
        out
    }

    /// Resets the ledger to empty.
    pub fn reset(&mut self) {
        *self = EnergyLedger::new();
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {:.4} J (", self.total())?;
        let mut first = true;
        for c in EnergyCategory::ALL {
            let j = self.category(c);
            if j > 0.0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} {:.4}", c.label(), j)?;
                first = false;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyCategory::RadioTx, 1.5);
        l.charge(EnergyCategory::RadioTx, 0.5);
        l.charge(EnergyCategory::Cpu, 0.25);
        assert_eq!(l.category(EnergyCategory::RadioTx), 2.0);
        assert_eq!(l.charge_count(EnergyCategory::RadioTx), 2);
        assert_eq!(l.category(EnergyCategory::Cpu), 0.25);
        assert_eq!(l.total(), 2.25);
    }

    #[test]
    fn rejects_negative_and_non_finite() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyCategory::Cpu, -1.0);
        l.charge(EnergyCategory::Cpu, f64::NAN);
        l.charge(EnergyCategory::Cpu, f64::INFINITY);
        assert_eq!(l.total(), 0.0);
        assert_eq!(l.charge_count(EnergyCategory::Cpu), 0);
    }

    #[test]
    fn subtotals() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyCategory::RadioTx, 1.0);
        l.charge(EnergyCategory::RadioRx, 2.0);
        l.charge(EnergyCategory::RadioListen, 4.0);
        l.charge(EnergyCategory::FlashRead, 0.5);
        l.charge(EnergyCategory::FlashWrite, 0.25);
        assert_eq!(l.radio_total(), 7.0);
        assert_eq!(l.storage_total(), 0.75);
    }

    #[test]
    fn merge_and_delta() {
        let mut a = EnergyLedger::new();
        a.charge(EnergyCategory::RadioTx, 1.0);
        let snapshot = a.clone();
        a.charge(EnergyCategory::RadioTx, 3.0);
        a.charge(EnergyCategory::Sensing, 0.5);

        let d = a.delta_since(&snapshot);
        assert_eq!(d.category(EnergyCategory::RadioTx), 3.0);
        assert_eq!(d.category(EnergyCategory::Sensing), 0.5);

        let mut total = EnergyLedger::new();
        total.merge(&a);
        total.merge(&d);
        assert_eq!(total.category(EnergyCategory::RadioTx), 7.0);
    }

    #[test]
    fn display_mentions_nonzero_categories_only() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyCategory::FlashWrite, 0.125);
        let s = format!("{l}");
        assert!(s.contains("flash-write"));
        assert!(!s.contains("radio-tx"));
    }

    #[test]
    fn reset_clears() {
        let mut l = EnergyLedger::new();
        l.charge(EnergyCategory::Cpu, 1.0);
        l.reset();
        assert_eq!(l.total(), 0.0);
    }
}
