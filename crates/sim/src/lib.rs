//! Discrete-event simulation kernel for the PRESTO reproduction.
//!
//! Every experiment in this workspace runs on top of this crate. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time.
//! * [`EventQueue`] — a deterministic, totally ordered future-event list.
//! * [`rng`] — a small, dependency-free, splittable PRNG so that every
//!   experiment is a pure function of a `u64` seed.
//! * [`EnergyLedger`] — per-node energy accounting split by hardware
//!   category (radio, CPU, flash, sensing), the currency in which all of
//!   the paper's claims are measured.
//! * [`metrics`] — counters and streaming summaries used by the
//!   experiment drivers.
//! * [`queries`] — a seeded multi-user query workload generator (NOW /
//!   PAST / aggregate arrivals with shared hot windows) for the
//!   query-pipeline experiments.
//! * [`Simulation`] — a minimal actor-style run loop.
//! * [`FaultPlan`] — deterministic crash/reboot and link-blackout
//!   schedules for failure-scenario experiments.
//!
//! The kernel is deliberately free of any networking or sensor policy;
//! those live in `presto-net` and above.

pub mod energy;
pub mod events;
pub mod faults;
pub mod metrics;
pub mod queries;
pub mod rng;
pub mod time;

pub use energy::{EnergyCategory, EnergyLedger};
pub use events::{EventQueue, Simulation};
pub use faults::{
    ActiveFault, Blackout, CrashWindow, FaultPlan, MeshLinkCut, MeshPartition, SharedBurst,
};
pub use queries::{
    FleetArrival, FleetLoadConfig, FleetQueryLoad, QueryArrival, QueryKind, QueryLoad,
    QueryLoadConfig,
};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
