//! The PRESTO sensor node (paper §4).
//!
//! "PRESTO is a proxy-centric architecture where much of the intelligence
//! resides at the proxy, and the remote sensor is kept simple to enable
//! efficient operation under resource constraints. Our contribution lies
//! in the design of sensors that are simple, yet highly tunable and can
//! be completely controlled by the proxy."
//!
//! The node composes the substrates built below it:
//!
//! * every sample is archived locally ([`presto_archive`]);
//! * a [push policy](push::PushPolicy) decides what reaches the proxy:
//!   model-driven (check against the proxy-built model replica, push only
//!   on failure), value-driven (delta threshold), batched (everything,
//!   periodically, optionally wavelet-compressed), or silent;
//! * semantic events are pushed immediately (rare events are never
//!   batched away);
//! * PAST-query pulls are served from the archive, lossily compressed to
//!   the query's tolerance;
//! * every tunable — push tolerance, batching interval, duty cycle,
//!   codec — is settable by the proxy at run time ([`node::SensorNode`]
//!   `apply_retune`), which is what query–sensor matching manipulates.

pub mod config;
pub mod msg;
pub mod node;
pub mod push;

pub use config::SensorConfig;
pub use msg::{AggregateOp, DownlinkMsg, UplinkMsg, UplinkPayload};
pub use node::{aggregate_sigma, evaluate_aggregate};
pub use node::{SensorNode, SensorStats};
pub use push::PushPolicy;
