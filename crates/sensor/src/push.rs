//! Push policies: what a sensor transmits, and when.
//!
//! Figure 2 compares value-driven push against batched push (with and
//! without wavelet denoising); the PRESTO architecture itself uses
//! model-driven push. All of them are expressible as a [`PushPolicy`],
//! so the same [`crate::node::SensorNode`] runs every experimental arm.

use presto_sim::SimDuration;
use presto_wavelet::CodecParams;

/// What a sensor transmits, and when.
#[derive(Clone, Debug)]
pub enum PushPolicy {
    /// PRESTO model-driven push: check each sample against the model
    /// replica; push the deviation immediately when the model fails.
    ModelDriven {
        /// Model-failure threshold (absolute error).
        tolerance: f64,
    },
    /// Value-driven push: push the sample when it differs from the last
    /// *pushed* value by more than `delta` (Figure 2's baseline).
    ValueDriven {
        /// Push threshold.
        delta: f64,
    },
    /// Batched push: transmit every sample, accumulated over
    /// `interval`, optionally compressed (Figure 2's other two arms).
    Batched {
        /// Batching interval.
        interval: SimDuration,
        /// Optional wavelet codec configuration.
        compression: Option<CodecParams>,
    },
    /// Model-driven push with batching of small deviations: deviations
    /// beyond `hard_tolerance` push immediately; others wait for the
    /// batch flush. An extension arm used in E6.
    ModelDrivenBatched {
        /// Batch-eligible deviation threshold.
        tolerance: f64,
        /// Immediate-push threshold (rare events).
        hard_tolerance: f64,
        /// Batching interval.
        interval: SimDuration,
    },
    /// Push nothing (direct-query baseline: the proxy always pulls).
    Silent,
}

impl PushPolicy {
    /// True if the policy involves a periodic batch flush.
    pub fn batch_interval(&self) -> Option<SimDuration> {
        match self {
            PushPolicy::Batched { interval, .. } => Some(*interval),
            PushPolicy::ModelDrivenBatched { interval, .. } => Some(*interval),
            _ => None,
        }
    }

    /// Stable label for experiment reports.
    pub fn label(&self) -> String {
        match self {
            PushPolicy::ModelDriven { tolerance } => format!("model-driven(tol={tolerance})"),
            PushPolicy::ValueDriven { delta } => format!("value-driven(delta={delta})"),
            PushPolicy::Batched {
                interval,
                compression,
            } => format!(
                "batched({:.1}min,{})",
                interval.as_mins_f64(),
                if compression.is_some() {
                    "wavelet"
                } else {
                    "raw"
                }
            ),
            PushPolicy::ModelDrivenBatched { interval, .. } => {
                format!("model-driven-batched({:.1}min)", interval.as_mins_f64())
            }
            PushPolicy::Silent => "silent".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_interval_only_for_batched_policies() {
        assert!(PushPolicy::ModelDriven { tolerance: 1.0 }
            .batch_interval()
            .is_none());
        assert!(PushPolicy::ValueDriven { delta: 1.0 }
            .batch_interval()
            .is_none());
        assert!(PushPolicy::Silent.batch_interval().is_none());
        assert_eq!(
            PushPolicy::Batched {
                interval: SimDuration::from_mins(33),
                compression: None
            }
            .batch_interval(),
            Some(SimDuration::from_mins(33))
        );
    }

    #[test]
    fn labels_distinguish_arms() {
        let a = PushPolicy::Batched {
            interval: SimDuration::from_mins_f64(16.5),
            compression: None,
        }
        .label();
        let b = PushPolicy::Batched {
            interval: SimDuration::from_mins_f64(16.5),
            compression: Some(presto_wavelet::CodecParams::denoising()),
        }
        .label();
        assert_ne!(a, b);
        assert!(a.contains("raw") && b.contains("wavelet"));
    }
}
