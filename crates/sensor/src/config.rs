//! Sensor node configuration.

use presto_archive::ArchiveConfig;
use presto_net::{DutyCycle, FrameFormat, RadioModel};
use presto_sim::SimDuration;
use presto_wavelet::CodecParams;

use crate::push::PushPolicy;

/// Everything a [`crate::node::SensorNode`] needs at construction.
#[derive(Clone, Debug)]
pub struct SensorConfig {
    /// Sampling epoch (31 s default, matching the lab trace).
    pub sample_period: SimDuration,
    /// Push policy.
    pub push: PushPolicy,
    /// Codec for compressed batches and pull replies.
    pub reply_codec: CodecParams,
    /// Radio duty cycle (LPL check interval).
    pub duty: DutyCycle,
    /// Radio hardware.
    pub radio: RadioModel,
    /// Frame geometry.
    pub frame: FrameFormat,
    /// Local archive configuration.
    pub archive: ArchiveConfig,
    /// Charge CPU energy for model checks and compression.
    pub account_cpu: bool,
    /// Announce archive segment seals with a tiny uplink so the proxy
    /// tier's range index follows the archive block-by-block. Off by
    /// default: single-node policy benchmarks measure push policies,
    /// not index maintenance; the assembled system turns it on.
    pub announce_seals: bool,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            sample_period: SimDuration::from_secs(31),
            push: PushPolicy::ModelDriven { tolerance: 1.0 },
            reply_codec: CodecParams::for_tolerance(0.5),
            duty: DutyCycle::lpl(SimDuration::from_secs(1)),
            radio: RadioModel::mica2(),
            frame: FrameFormat::tinyos_mica2(),
            archive: ArchiveConfig::default(),
            account_cpu: true,
            announce_seals: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_model_driven_mica2() {
        let c = SensorConfig::default();
        assert!(matches!(c.push, PushPolicy::ModelDriven { .. }));
        assert_eq!(c.sample_period, SimDuration::from_secs(31));
        assert_eq!(c.radio, RadioModel::mica2());
    }
}
