//! The sensor node state machine.

use presto_archive::{ArchiveStore, Quality};
use presto_models::{
    ArModel, LinearTrendModel, MarkovModel, ModelKind, Predictor, SeasonalArModel, SeasonalModel,
};
use presto_net::{CpuModel, LinkModel, Mac};
use presto_sim::{EnergyCategory, EnergyLedger, SimTime};
use presto_wavelet::{Codec, CodecParams, EncodeScratch};

use crate::config::SensorConfig;
use crate::msg::{wire, DownlinkMsg, ReplySample, UplinkMsg, UplinkPayload};
use crate::push::PushPolicy;

/// Energy for one ADC acquisition (sensing transducer).
const SENSING_J: f64 = 5e-6;

/// Counters exposed to the experiment drivers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SensorStats {
    /// Samples acquired.
    pub samples: u64,
    /// Model checks run.
    pub model_checks: u64,
    /// Deviations pushed (model-driven).
    pub deviations_pushed: u64,
    /// Values pushed (value-driven).
    pub values_pushed: u64,
    /// Batches transmitted.
    pub batches_sent: u64,
    /// Samples carried by those batches.
    pub batch_samples_sent: u64,
    /// Events pushed.
    pub events_pushed: u64,
    /// Pull requests served.
    pub pulls_served: u64,
    /// Uplink sends that failed after all retries.
    pub push_failures: u64,
    /// Payload bytes offered to the MAC.
    pub bytes_sent: u64,
    /// Heartbeat beacons transmitted.
    pub heartbeats_sent: u64,
    /// Segment-seal notifications transmitted.
    pub seals_sent: u64,
    /// Reboots survived (RAM wiped, archive kept).
    pub reboots: u64,
    /// Duplicate downlink requests filtered by sequence number (a
    /// retransmitted request whose reply or ack was lost on the way
    /// back); the cached reply is re-sent instead of re-serving.
    pub duplicate_requests: u64,
}

presto_telemetry::observe_counters!(SensorStats {
    samples,
    model_checks,
    deviations_pushed,
    values_pushed,
    batches_sent,
    batch_samples_sent,
    events_pushed,
    pulls_served,
    push_failures,
    bytes_sent,
    heartbeats_sent,
    seals_sent,
    reboots,
    duplicate_requests,
});

impl SensorStats {
    /// Accumulates another sensor's counters (fleet aggregation).
    pub fn merge(&mut self, other: &SensorStats) {
        self.samples += other.samples;
        self.model_checks += other.model_checks;
        self.deviations_pushed += other.deviations_pushed;
        self.values_pushed += other.values_pushed;
        self.batches_sent += other.batches_sent;
        self.batch_samples_sent += other.batch_samples_sent;
        self.events_pushed += other.events_pushed;
        self.pulls_served += other.pulls_served;
        self.push_failures += other.push_failures;
        self.bytes_sent += other.bytes_sent;
        self.heartbeats_sent += other.heartbeats_sent;
        self.seals_sent += other.seals_sent;
        self.reboots += other.reboots;
        self.duplicate_requests += other.duplicate_requests;
    }
}

/// A PRESTO sensor node.
pub struct SensorNode {
    id: u16,
    config: SensorConfig,
    model: Option<Box<dyn Predictor>>,
    archive: ArchiveStore,
    ledger: EnergyLedger,
    uplink: Mac,
    link: LinkModel,
    cpu: CpuModel,
    batch: Vec<(SimTime, f64)>,
    last_flush: SimTime,
    last_pushed: Option<f64>,
    last_sample: Option<(SimTime, f64)>,
    last_advance: SimTime,
    /// Last instant a transmission was MAC-acknowledged; paces the
    /// liveness heartbeat.
    last_delivered_tx: SimTime,
    /// Sealed-segment spans not yet successfully announced (a failed
    /// MAC send keeps the span here for the next attempt — losing it
    /// would leave the proxy tier's range index stale with no gap to
    /// reveal the omission).
    pending_seals: Vec<(SimTime, SimTime)>,
    /// Reusable transform buffers for batch/pull-reply encoding.
    codec_scratch: EncodeScratch,
    /// Downlink sequence numbers already applied, with the reply each
    /// produced (bounded window). A retransmitted request — the proxy
    /// never saw the reply or ack — must not be re-applied or re-served
    /// from flash; the cached reply is re-transmitted instead. Lives in
    /// RAM: a reboot forgets it, which is safe (the archive-backed
    /// requests are idempotent) and realistic.
    seen_downlinks: std::collections::VecDeque<(u64, Option<UplinkMsg>)>,
    stats: SensorStats,
}

/// Bound on the sensor's duplicate-request window. Retransmissions
/// arrive within a few RPC timeouts of the original, so a small window
/// suffices; older duplicates re-serve (idempotent, just costlier).
const SEEN_DOWNLINK_WINDOW: usize = 64;

impl SensorNode {
    /// Creates a node with the given uplink loss process.
    ///
    /// The uplink MAC pays a wake-up preamble spanning the network's LPL
    /// check interval (the node's own `duty.check_interval`): in a B-MAC
    /// network every transmission — even one bound for the tethered proxy
    /// — must wake the duty-cycled next hop. This per-transmission fixed
    /// cost is exactly what batching amortizes in Figure 2.
    pub fn new(id: u16, config: SensorConfig, link: LinkModel) -> Self {
        let archive = ArchiveStore::new(config.archive.clone());
        let uplink = Mac::downlink(
            config.radio.clone(),
            config.frame.clone(),
            config.duty.check_interval,
        );
        SensorNode {
            id,
            archive,
            uplink,
            link,
            cpu: CpuModel::atmega128(),
            model: None,
            ledger: EnergyLedger::new(),
            batch: Vec::new(),
            last_flush: SimTime::ZERO,
            last_pushed: None,
            last_sample: None,
            last_advance: SimTime::ZERO,
            last_delivered_tx: SimTime::ZERO,
            pending_seals: Vec::new(),
            codec_scratch: EncodeScratch::default(),
            seen_downlinks: std::collections::VecDeque::new(),
            config,
            stats: SensorStats::default(),
        }
    }

    /// Node id.
    pub fn id(&self) -> u16 {
        self.id
    }

    /// Cumulative energy ledger.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Mutable ledger access, used by the proxy's downlink MAC to charge
    /// this node's reception energy.
    pub fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Counters.
    pub fn stats(&self) -> SensorStats {
        self.stats
    }

    /// Read access to the local archive (e.g. for interval indexing).
    pub fn archive(&self) -> &ArchiveStore {
        &self.archive
    }

    /// The local archive (e.g. for test inspection).
    pub fn archive_mut(&mut self) -> &mut ArchiveStore {
        &mut self.archive
    }

    /// The current configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.config
    }

    /// True if a model replica is installed.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// Charges idle-listening energy up to `t`. Call before handing the
    /// node any timestamped work.
    pub fn advance_to(&mut self, t: SimTime) {
        if t > self.last_advance {
            let window = t - self.last_advance;
            self.config
                .duty
                .charge_listening(&self.config.radio, window, &mut self.ledger);
            self.last_advance = t;
        }
    }

    fn charge_cpu(&mut self, cycles: u64) {
        if self.config.account_cpu {
            self.ledger
                .charge(EnergyCategory::Cpu, self.cpu.op_energy(cycles));
        }
    }

    /// Transmits a payload over the uplink; returns the message if every
    /// fragment was delivered.
    fn send(
        &mut self,
        t: SimTime,
        wire_bytes: usize,
        payload: UplinkPayload,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        let outcome = self
            .uplink
            .send(wire_bytes, &mut self.link, &mut self.ledger, proxy_ledger);
        self.stats.bytes_sent += wire_bytes as u64;
        if outcome.delivered {
            self.last_delivered_tx = self.last_delivered_tx.max(t);
            Some(UplinkMsg {
                sensor: self.id,
                sent_at: t,
                wire_bytes,
                payload,
            })
        } else {
            self.stats.push_failures += 1;
            None
        }
    }

    /// Wipes RAM state after a crash/reboot: the model replica, pending
    /// batch, and short-term context are gone, but the flash archive —
    /// the recovery substrate — survives. Idle-listening accrual resumes
    /// at `t` (a dead radio draws nothing).
    pub fn reboot(&mut self, t: SimTime) {
        self.model = None;
        self.batch.clear();
        self.last_pushed = None;
        self.last_sample = None;
        self.last_flush = t;
        self.last_advance = self.last_advance.max(t);
        // Un-announced seal spans die with RAM; the post-reconnect
        // recovery replay rebuilds the range index from the archive.
        self.pending_seals.clear();
        // So does the archive's unflushed page buffer: records not yet
        // programmed into flash never existed as far as recovery is
        // concerned.
        self.archive.discard_ram_buffer();
        // The duplicate-request window is RAM too: post-reboot
        // retransmissions re-serve, which is safe (idempotent requests).
        self.seen_downlinks.clear();
        self.stats.reboots += 1;
    }

    /// Emits a heartbeat when nothing has been MAC-acknowledged for
    /// `every`: the low-rate lease renewal that lets the proxy tell
    /// model-conforming silence from death. Carries the archive
    /// high-water mark so the proxy knows what a recovery pull can
    /// replay.
    pub fn maybe_heartbeat(
        &mut self,
        t: SimTime,
        every: presto_sim::SimDuration,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        if t - self.last_delivered_tx < every {
            return None;
        }
        self.advance_to(t);
        let archived_through = self.last_sample.map_or(SimTime::ZERO, |(ts, _)| ts);
        let msg = self.send(
            t,
            wire::HEARTBEAT,
            UplinkPayload::Heartbeat { archived_through },
            proxy_ledger,
        );
        if msg.is_some() {
            self.stats.heartbeats_sent += 1;
        } else {
            // Preamble + retries were paid but nothing got through; back
            // off a full interval rather than hammering a dead link.
            self.last_delivered_tx = t;
        }
        msg
    }

    /// Acquires one sample: archives it, runs the push policy, and
    /// returns any messages that reached the proxy.
    pub fn on_sample(
        &mut self,
        t: SimTime,
        value: f64,
        mut proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Vec<UplinkMsg> {
        self.advance_to(t);
        self.stats.samples += 1;
        self.ledger.charge(EnergyCategory::Sensing, SENSING_J);
        self.last_sample = Some((t, value));
        // Archival is unconditional: the paper's "complete local archive".
        let _ = self.archive.append_scalar(t, value, &mut self.ledger);

        let mut out = Vec::new();
        // Announce any segment seal the append caused, so the proxy
        // tier's range index follows the archive block-by-block. A
        // failed send keeps the span queued for the next sample.
        if self.config.announce_seals {
            self.pending_seals.extend(self.archive.take_sealed_spans());
            while let Some(&(start, end)) = self.pending_seals.first() {
                match self.send(
                    t,
                    wire::SEGMENT_SEAL,
                    UplinkPayload::SegmentSeal { start, end },
                    proxy_ledger.as_deref_mut(),
                ) {
                    Some(m) => {
                        self.pending_seals.remove(0);
                        self.stats.seals_sent += 1;
                        out.push(m);
                    }
                    // MAC gave up: stop retrying this epoch, keep the
                    // backlog (in order) for the next.
                    None => break,
                }
            }
        }
        let policy = self.config.push.clone();
        match policy {
            PushPolicy::ModelDriven { tolerance } => {
                let verdict = self.run_model_check(t, value);
                if let Some(residual) = verdict {
                    let _ = residual;
                    let predicted = value - residual;
                    if (value - predicted).abs() > tolerance || self.model.is_none() {
                        if let Some(m) = self.send(
                            t,
                            wire::DEVIATION,
                            UplinkPayload::Deviation { value, predicted },
                            proxy_ledger.as_deref_mut(),
                        ) {
                            out.push(m);
                        }
                        self.stats.deviations_pushed += 1;
                    }
                }
            }
            PushPolicy::ValueDriven { delta } => {
                let trigger = match self.last_pushed {
                    None => true,
                    Some(prev) => (value - prev).abs() > delta,
                };
                if trigger {
                    self.last_pushed = Some(value);
                    self.stats.values_pushed += 1;
                    if let Some(m) = self.send(
                        t,
                        wire::VALUE,
                        UplinkPayload::Value { value },
                        proxy_ledger.as_deref_mut(),
                    ) {
                        out.push(m);
                    }
                }
            }
            PushPolicy::Batched { interval, .. } => {
                self.batch.push((t, value));
                if t - self.last_flush >= interval {
                    if let Some(m) = self.flush_batch(t, proxy_ledger.as_deref_mut()) {
                        out.push(m);
                    }
                }
            }
            PushPolicy::ModelDrivenBatched {
                tolerance,
                hard_tolerance,
                interval,
            } => {
                if let Some(residual) = self.run_model_check(t, value) {
                    if residual.abs() > hard_tolerance {
                        let predicted = value - residual;
                        self.stats.deviations_pushed += 1;
                        if let Some(m) = self.send(
                            t,
                            wire::DEVIATION,
                            UplinkPayload::Deviation { value, predicted },
                            proxy_ledger.as_deref_mut(),
                        ) {
                            out.push(m);
                        }
                    } else if residual.abs() > tolerance {
                        self.batch.push((t, value));
                    }
                }
                if t - self.last_flush >= interval && !self.batch.is_empty() {
                    if let Some(m) = self.flush_batch(t, proxy_ledger) {
                        out.push(m);
                    }
                }
            }
            PushPolicy::Silent => {}
        }
        out
    }

    /// Runs the model replica check. Returns `Some(residual)` when the
    /// check deviates (or when no model is installed, in which case the
    /// residual is the value itself — everything is "unpredicted").
    fn run_model_check(&mut self, t: SimTime, value: f64) -> Option<f64> {
        let tolerance = match &self.config.push {
            PushPolicy::ModelDriven { tolerance } => *tolerance,
            PushPolicy::ModelDrivenBatched { tolerance, .. } => *tolerance,
            _ => return Some(value),
        };
        let Some(model) = self.model.as_mut() else {
            return Some(value);
        };
        self.stats.model_checks += 1;
        let cycles = model.check_cycles();
        let pred = model.predict(t);
        // Replica-consistency rule: the model observes *only the values
        // that are pushed*, so the proxy's replica (which sees exactly
        // the pushed values) stays in lock-step and silence provably
        // means "within tolerance".
        let result = if pred.within(value, tolerance) {
            None
        } else {
            model.observe(t, value);
            Some(value - pred.value)
        };
        self.charge_cpu(cycles);
        result
    }

    /// Flushes the accumulated batch (used by the batched policies and by
    /// the end-of-run drain in experiments).
    pub fn flush_batch(
        &mut self,
        t: SimTime,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        self.last_flush = t;
        if self.batch.is_empty() {
            return None;
        }
        let samples = std::mem::take(&mut self.batch);
        let compression = match &self.config.push {
            PushPolicy::Batched { compression, .. } => *compression,
            _ => None,
        };
        let (payload, bytes) = match compression {
            Some(params) => {
                let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
                let codec = Codec::new(params);
                self.charge_cpu(presto_wavelet::haar::forward_cycle_cost(
                    values.len().next_power_of_two(),
                    4,
                ));
                // One pass: encode and reconstruct through the node's
                // persistent scratch — no allocation churn, no decode of
                // our own payload.
                let (compressed, recon) =
                    codec.compress_reconstruct(&values, &mut self.codec_scratch);
                let rebuilt: Vec<(SimTime, f64)> = samples
                    .iter()
                    .zip(recon)
                    .map(|(&(ts, _), v)| (ts, v))
                    .collect();
                (
                    UplinkPayload::Batch {
                        samples: rebuilt,
                        compressed: true,
                    },
                    wire::compressed_batch(compressed.byte_len()),
                )
            }
            None => {
                let n = samples.len();
                (
                    UplinkPayload::Batch {
                        samples,
                        compressed: false,
                    },
                    wire::raw_batch(n),
                )
            }
        };
        self.stats.batches_sent += 1;
        if let UplinkPayload::Batch { samples, .. } = &payload {
            self.stats.batch_samples_sent += samples.len() as u64;
        }
        self.send(t, bytes, payload, proxy_ledger)
    }

    /// Reports a semantic event: archived locally, pushed immediately
    /// (rare events are never batched away).
    pub fn on_event(
        &mut self,
        t: SimTime,
        event_type: u16,
        data: Vec<u8>,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        self.advance_to(t);
        let _ = self
            .archive
            .append_event(t, event_type, &data, &mut self.ledger);
        if matches!(self.config.push, PushPolicy::Silent) {
            return None;
        }
        self.stats.events_pushed += 1;
        let wire_bytes = wire::event(data.len());
        self.send(
            t,
            wire_bytes,
            UplinkPayload::Event {
                event_type,
                data: data.into(),
            },
            proxy_ledger,
        )
    }

    /// Handles a *sequenced* proxy → sensor message from the downlink
    /// channel, deduplicating retransmitted requests by sequence number:
    /// a duplicate is never re-applied (model updates, retunes) or
    /// re-served from flash (pulls); its cached reply is re-transmitted
    /// instead, paying radio energy but not flash reads. Returns the
    /// reply (fresh or re-sent), if its uplink transmission succeeded.
    pub fn handle_sequenced_downlink(
        &mut self,
        t: SimTime,
        seq: u64,
        msg: &DownlinkMsg,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        if let Some(pos) = self.seen_downlinks.iter().position(|(s, _)| *s == seq) {
            self.stats.duplicate_requests += 1;
            let cached = self.seen_downlinks[pos].1.clone();
            let expects_reply = matches!(
                msg,
                DownlinkMsg::PullRequest { .. } | DownlinkMsg::AggregateRequest { .. }
            );
            return match cached {
                // Re-send the cached reply over the radio (a fresh
                // transmission: it costs energy and can fail again).
                Some(prev) => self
                    .send(t, prev.wire_bytes, prev.payload, proxy_ledger)
                    .map(|m| UplinkMsg {
                        // Keep the original send time: the reply content
                        // describes the state at first serving.
                        sent_at: prev.sent_at,
                        ..m
                    }),
                // The first serving's reply never left the MAC, so there
                // is nothing to re-send: serve again (archive reads are
                // idempotent). Ack-only requests (model update, retune)
                // were already applied — do NOT re-apply.
                None if expects_reply => {
                    let reply = self.handle_downlink(t, msg, proxy_ledger);
                    self.seen_downlinks[pos].1 = reply.clone();
                    reply
                }
                None => None,
            };
        }
        let reply = self.handle_downlink(t, msg, proxy_ledger);
        self.seen_downlinks.push_back((seq, reply.clone()));
        while self.seen_downlinks.len() > SEEN_DOWNLINK_WINDOW {
            self.seen_downlinks.pop_front();
        }
        reply
    }

    /// Handles a proxy → sensor message. The proxy charges the radio
    /// energy of the downlink itself; this method performs the sensor's
    /// *reaction* (and any reply transmission).
    pub fn handle_downlink(
        &mut self,
        t: SimTime,
        msg: &DownlinkMsg,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        self.advance_to(t);
        match msg {
            DownlinkMsg::ModelUpdate { kind, params } => {
                // Decoding cost is proportional to the parameter size.
                self.charge_cpu(params.len() as u64 * 4);
                self.model = decode_model(*kind, params);
                None
            }
            DownlinkMsg::Retune {
                push_tolerance,
                batching_interval,
                lpl_check_interval,
                reply_codec,
            } => {
                if let Some(tol) = push_tolerance {
                    match &mut self.config.push {
                        PushPolicy::ModelDriven { tolerance } => *tolerance = *tol,
                        PushPolicy::ModelDrivenBatched { tolerance, .. } => *tolerance = *tol,
                        PushPolicy::ValueDriven { delta } => *delta = *tol,
                        _ => {}
                    }
                }
                if let Some(interval) = batching_interval {
                    match &mut self.config.push {
                        PushPolicy::Batched { interval: i, .. } => *i = *interval,
                        PushPolicy::ModelDrivenBatched { interval: i, .. } => *i = *interval,
                        _ => {}
                    }
                }
                if let Some(check) = lpl_check_interval {
                    self.config.duty = presto_net::DutyCycle::lpl(*check);
                    // The network-wide check interval changed, so the
                    // uplink wake-up preamble changes with it.
                    self.uplink.dest_lpl_interval = *check;
                }
                if let Some(codec) = reply_codec {
                    self.config.reply_codec = *codec;
                }
                None
            }
            DownlinkMsg::PullRequest {
                query_id,
                from,
                to,
                tolerance,
            } => self.serve_pull(t, *query_id, *from, *to, *tolerance, proxy_ledger),
            DownlinkMsg::AggregateRequest {
                query_id,
                from,
                to,
                op,
            } => self.serve_aggregate(t, *query_id, *from, *to, *op, proxy_ledger),
        }
    }

    /// Evaluates an aggregate over the local archive and replies with
    /// just the result: the radio carries ~23 bytes regardless of how
    /// much history the operator consumed.
    fn serve_aggregate(
        &mut self,
        t: SimTime,
        query_id: u64,
        from: SimTime,
        to: SimTime,
        op: crate::msg::AggregateOp,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        let rows = self
            .archive
            .query_range(from, to, &mut self.ledger)
            .unwrap_or_default();
        self.stats.pulls_served += 1;
        // The evaluation itself costs CPU (~8 cycles per sample).
        self.charge_cpu(rows.len() as u64 * 8);
        let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
        let value = evaluate_aggregate(op, &values);
        let sigma = aggregate_sigma(
            op,
            rows.iter().map(|r| r.quality),
            self.config.archive.quant_step,
        );
        self.send(
            t,
            wire::AGGREGATE_REPLY,
            UplinkPayload::AggregateReply {
                query_id,
                value,
                count: u32::try_from(values.len()).unwrap_or(u32::MAX),
                sigma,
            },
            proxy_ledger,
        )
    }

    /// Serves a PAST-query pull from the local archive.
    fn serve_pull(
        &mut self,
        t: SimTime,
        query_id: u64,
        from: SimTime,
        to: SimTime,
        tolerance: f64,
        proxy_ledger: Option<&mut EnergyLedger>,
    ) -> Option<UplinkMsg> {
        let mut rows = self
            .archive
            .query_range(from, to, &mut self.ledger)
            .unwrap_or_default();
        // A NOW-style pull whose range holds no archived record is
        // answered with the freshest reading the sensor has — the proxy
        // asked "what is it now", not "what was logged in this window".
        if rows.is_empty() {
            if let Some((ts, v)) = self.last_sample {
                rows.push(presto_archive::ArchivedSample {
                    timestamp: ts,
                    value: v,
                    quality: Quality::Exact,
                });
            }
        }
        self.stats.pulls_served += 1;

        // Lossy reply encoding to the query tolerance when the range is a
        // regular scalar run; otherwise raw.
        let regular = rows.len() >= 8 && rows.iter().all(|r| r.quality == Quality::Exact);
        let (samples, bytes) = if regular {
            let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
            let codec = Codec::new(CodecParams::for_tolerance(tolerance.max(0.01)));
            self.charge_cpu(presto_wavelet::haar::forward_cycle_cost(
                values.len().next_power_of_two(),
                4,
            ));
            let (compressed, recon) = codec.compress_reconstruct(&values, &mut self.codec_scratch);
            let samples: Vec<ReplySample> = rows
                .iter()
                .zip(recon)
                .map(|(r, v)| ReplySample {
                    t: r.timestamp,
                    value: v,
                    quality: r.quality,
                })
                .collect();
            let n = samples.len();
            (
                samples,
                wire::pull_reply_compressed(compressed.byte_len(), n),
            )
        } else {
            let samples: Vec<ReplySample> = rows
                .iter()
                .map(|r| ReplySample {
                    t: r.timestamp,
                    value: r.value,
                    quality: r.quality,
                })
                .collect();
            let n = samples.len();
            (samples, wire::pull_reply_raw(n))
        };

        self.send(
            t,
            bytes,
            UplinkPayload::PullReply { query_id, samples },
            proxy_ledger,
        )
    }
}

/// Error bound (one sigma) of an aggregate computed over archived rows
/// of the given qualities.
///
/// Each row's reconstruction error is bounded by its provenance: a raw
/// record is exact, a wavelet-aged summary at ladder level `l` carries
/// the quantizer bound widened by the level's time-smoothing (each rung
/// halves the resolution, so the bound doubles per level). The operator
/// then propagates the per-row bounds: a mean averages them, an
/// extremum is located to within the worst row's bound, a mode adds the
/// binning half-width on top. `Count` is exact by construction; an
/// empty range carries no information at all.
pub fn aggregate_sigma(
    op: crate::msg::AggregateOp,
    qualities: impl Iterator<Item = Quality>,
    quant_step: f64,
) -> f64 {
    use crate::msg::AggregateOp;
    let bound = |q: Quality| match q {
        Quality::Exact => 0.0,
        Quality::Aged(level) => quant_step * (1u64 << level.min(32)) as f64,
    };
    let (mut n, mut sum, mut max) = (0u64, 0.0f64, 0.0f64);
    for q in qualities {
        let b = bound(q);
        n += 1;
        sum += b;
        max = max.max(b);
    }
    match op {
        AggregateOp::Count => 0.0,
        _ if n == 0 => f64::INFINITY,
        AggregateOp::Mean => sum / n as f64,
        AggregateOp::Max | AggregateOp::Min => max,
        AggregateOp::Mode { bin_width } => {
            let w = if bin_width > 0.0 && bin_width.is_finite() {
                bin_width
            } else {
                1.0
            };
            w / 2.0 + max
        }
    }
}

/// Evaluates an aggregate operator over a value slice. Returns NaN for
/// value aggregates over an empty slice (Count returns 0).
pub fn evaluate_aggregate(op: crate::msg::AggregateOp, values: &[f64]) -> f64 {
    use crate::msg::AggregateOp;
    match op {
        AggregateOp::Count => values.len() as f64,
        _ if values.is_empty() => f64::NAN,
        AggregateOp::Mean => values.iter().sum::<f64>() / values.len() as f64,
        AggregateOp::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggregateOp::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        AggregateOp::Mode { bin_width } => {
            let w = if bin_width > 0.0 && bin_width.is_finite() {
                bin_width
            } else {
                1.0
            };
            let mut counts: std::collections::BTreeMap<i64, (u64, f64)> =
                std::collections::BTreeMap::new();
            for &v in values {
                let bin = (v / w).floor() as i64;
                let e = counts.entry(bin).or_insert((0, 0.0));
                e.0 += 1;
                e.1 += v;
            }
            // Deterministic tie-break: higher count, then lower bin. The
            // empty-values case was handled above, so the map is
            // non-empty; fall back to NaN (honest "no data") regardless.
            counts
                .iter()
                .max_by_key(|(bin, (n, _))| (*n, std::cmp::Reverse(**bin)))
                .map_or(f64::NAN, |(_, &(n, sum))| sum / n as f64)
        }
    }
}

/// Decodes a model replica from pushed parameters.
fn decode_model(kind: ModelKind, params: &[u8]) -> Option<Box<dyn Predictor>> {
    match kind {
        ModelKind::Seasonal => {
            SeasonalModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
        }
        ModelKind::Ar => ArModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>),
        ModelKind::SeasonalAr => {
            SeasonalArModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
        }
        ModelKind::LinearTrend => {
            LinearTrendModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
        }
        ModelKind::Markov => {
            MarkovModel::decode_params(params).map(|m| Box::new(m) as Box<dyn Predictor>)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presto_models::SeasonalArModel;
    use presto_sim::SimDuration;

    fn diurnal_value(t: SimTime) -> f64 {
        21.0 + 4.0 * ((t.hour_of_day() - 14.0) / 24.0 * std::f64::consts::TAU).cos()
    }

    fn trained_model_update() -> DownlinkMsg {
        let hist: Vec<(SimTime, f64)> = (0..7 * 24 * 4)
            .map(|i| {
                let t = SimTime::from_mins(i * 15);
                (t, diurnal_value(t))
            })
            .collect();
        let (model, _) = SeasonalArModel::train(&hist, 24, 2);
        DownlinkMsg::ModelUpdate {
            kind: ModelKind::SeasonalAr,
            params: model.encode_params(),
        }
    }

    fn node(push: PushPolicy) -> SensorNode {
        let config = SensorConfig {
            push,
            ..SensorConfig::default()
        };
        SensorNode::new(7, config, LinkModel::perfect())
    }

    #[test]
    fn model_driven_stays_silent_on_predictable_data() {
        let mut n = node(PushPolicy::ModelDriven { tolerance: 1.0 });
        n.handle_downlink(SimTime::ZERO, &trained_model_update(), None);
        assert!(n.has_model());
        let mut pushes = 0;
        for i in 0..2000u64 {
            let t = SimTime::from_days(8) + SimDuration::from_secs(31 * i);
            pushes += n.on_sample(t, diurnal_value(t), None).len();
        }
        // Perfectly diurnal data: almost nothing should be pushed.
        assert!(pushes < 20, "{pushes} pushes on predictable data");
    }

    #[test]
    fn model_driven_pushes_rare_events() {
        let mut n = node(PushPolicy::ModelDriven { tolerance: 1.0 });
        n.handle_downlink(SimTime::ZERO, &trained_model_update(), None);
        let t = SimTime::from_days(8);
        // Warm up with conforming samples.
        for i in 0..10u64 {
            n.on_sample(t + SimDuration::from_secs(31 * i), diurnal_value(t), None);
        }
        // Inject a spike.
        let spike_t = t + SimDuration::from_secs(31 * 11);
        let msgs = n.on_sample(spike_t, diurnal_value(spike_t) + 9.0, None);
        assert_eq!(msgs.len(), 1, "spike not pushed");
        match &msgs[0].payload {
            UplinkPayload::Deviation { value, predicted } => {
                assert!((value - predicted).abs() > 8.0);
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn without_model_everything_deviates() {
        let mut n = node(PushPolicy::ModelDriven { tolerance: 1.0 });
        let mut pushed = 0;
        for i in 0..50u64 {
            let t = SimTime::from_secs(31 * i);
            pushed += n.on_sample(t, 20.0, None).len();
        }
        assert_eq!(pushed, 50, "no-model sensor must push everything");
    }

    #[test]
    fn value_driven_thresholds() {
        let mut n = node(PushPolicy::ValueDriven { delta: 1.0 });
        let t = SimTime::ZERO;
        // First sample always pushes.
        assert_eq!(n.on_sample(t, 20.0, None).len(), 1);
        // Small moves do not.
        assert_eq!(
            n.on_sample(t + SimDuration::from_secs(31), 20.5, None)
                .len(),
            0
        );
        assert_eq!(
            n.on_sample(t + SimDuration::from_secs(62), 20.9, None)
                .len(),
            0
        );
        // Crossing delta from the last *pushed* value does.
        assert_eq!(
            n.on_sample(t + SimDuration::from_secs(93), 21.2, None)
                .len(),
            1
        );
    }

    #[test]
    fn batched_flushes_on_interval() {
        let mut n = node(PushPolicy::Batched {
            interval: SimDuration::from_mins(16),
            compression: None,
        });
        let mut msgs = Vec::new();
        for i in 0..64u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            msgs.extend(n.on_sample(t, 20.0 + i as f64 * 0.01, None));
        }
        assert_eq!(msgs.len(), 2, "expected two flushes in ~33 minutes");
        match &msgs[0].payload {
            UplinkPayload::Batch {
                samples,
                compressed,
            } => {
                assert!(!compressed);
                assert!(samples.len() >= 30);
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn compressed_batches_are_smaller_and_close() {
        let run = |compression| {
            let mut n = node(PushPolicy::Batched {
                interval: SimDuration::from_mins(60),
                compression,
            });
            let mut msgs = Vec::new();
            for i in 0..130u64 {
                let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
                msgs.extend(n.on_sample(t, diurnal_value(t), None));
            }
            msgs
        };
        let raw = run(None);
        let comp = run(Some(CodecParams::for_tolerance(0.2)));
        assert_eq!(raw.len(), 1);
        assert_eq!(comp.len(), 1);
        assert!(comp[0].wire_bytes < raw[0].wire_bytes / 2);
        // Reconstructed values stay within tolerance.
        let (UplinkPayload::Batch { samples: rs, .. }, UplinkPayload::Batch { samples: cs, .. }) =
            (&raw[0].payload, &comp[0].payload)
        else {
            panic!("wrong payloads");
        };
        for ((_, a), (_, b)) in rs.iter().zip(cs) {
            assert!((a - b).abs() <= 0.2 + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn events_push_immediately_and_archive() {
        let mut n = node(PushPolicy::Batched {
            interval: SimDuration::from_hours(4),
            compression: None,
        });
        let t = SimTime::from_mins(5);
        let msg = n.on_event(t, 42, vec![1, 2, 3], None).unwrap();
        assert!(matches!(
            msg.payload,
            UplinkPayload::Event { event_type: 42, .. }
        ));
        let mut l = EnergyLedger::new();
        let evs = n
            .archive_mut()
            .query_events(SimTime::ZERO, SimTime::from_hours(1), &mut l)
            .unwrap();
        assert_eq!(evs.len(), 1);
    }

    #[test]
    fn pull_serves_archived_range_within_tolerance() {
        let mut n = node(PushPolicy::Silent);
        let truth: Vec<(SimTime, f64)> = (0..200u64)
            .map(|i| {
                let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
                (t, diurnal_value(t))
            })
            .collect();
        for &(t, v) in &truth {
            n.on_sample(t, v, None);
        }
        let req = DownlinkMsg::PullRequest {
            query_id: 99,
            from: SimTime::from_secs(31 * 50),
            to: SimTime::from_secs(31 * 100),
            tolerance: 0.3,
        };
        let reply = n
            .handle_downlink(SimTime::from_secs(31 * 201), &req, None)
            .unwrap();
        let UplinkPayload::PullReply { query_id, samples } = &reply.payload else {
            panic!("wrong payload");
        };
        assert_eq!(*query_id, 99);
        assert_eq!(samples.len(), 51);
        for s in samples {
            let truth_v = diurnal_value(s.t);
            assert!((s.value - truth_v).abs() <= 0.3 + 1e-6);
        }
        assert_eq!(n.stats().pulls_served, 1);
    }

    #[test]
    fn retune_applies_parameters() {
        let mut n = node(PushPolicy::ModelDriven { tolerance: 1.0 });
        let retune = DownlinkMsg::Retune {
            push_tolerance: Some(2.5),
            batching_interval: None,
            lpl_check_interval: Some(SimDuration::from_secs(8)),
            reply_codec: Some(CodecParams::for_tolerance(1.0)),
        };
        n.handle_downlink(SimTime::from_secs(10), &retune, None);
        match n.config().push {
            PushPolicy::ModelDriven { tolerance } => assert_eq!(tolerance, 2.5),
            _ => panic!("policy changed unexpectedly"),
        }
        assert_eq!(n.config().duty.check_interval, SimDuration::from_secs(8));
    }

    #[test]
    fn listening_energy_accrues_with_time() {
        let mut n = node(PushPolicy::Silent);
        n.advance_to(SimTime::from_hours(10));
        let listen = n.ledger().category(EnergyCategory::RadioListen);
        assert!(listen > 0.0);
        // 1 s LPL at ~93 µW over 10 h ≈ 3.3 J.
        assert!((2.0..5.0).contains(&listen), "{listen}");
    }

    #[test]
    fn lossy_uplink_counts_failures() {
        let config = SensorConfig::default();
        let mut n = SensorNode::new(
            1,
            SensorConfig {
                push: PushPolicy::ValueDriven { delta: 0.0 },
                ..config
            },
            LinkModel::new(
                presto_net::LossProcess::Bernoulli(1.0),
                presto_sim::SimRng::new(1),
            ),
        );
        let msgs = n.on_sample(SimTime::ZERO, 20.0, None);
        assert!(msgs.is_empty());
        assert_eq!(n.stats().push_failures, 1);
    }

    #[test]
    fn silent_policy_archives_but_never_transmits() {
        let mut n = node(PushPolicy::Silent);
        for i in 0..100u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            assert!(n.on_sample(t, 20.0, None).is_empty());
        }
        assert_eq!(n.stats().bytes_sent, 0);
        assert_eq!(n.ledger().category(EnergyCategory::RadioTx), 0.0);
        assert!(n.ledger().storage_total() > 0.0);
    }

    #[test]
    fn evaluate_aggregate_operators() {
        use crate::msg::AggregateOp;
        let xs = [1.0, 2.0, 2.0, 3.0, 10.0];
        assert_eq!(evaluate_aggregate(AggregateOp::Mean, &xs), 3.6);
        assert_eq!(evaluate_aggregate(AggregateOp::Max, &xs), 10.0);
        assert_eq!(evaluate_aggregate(AggregateOp::Min, &xs), 1.0);
        assert_eq!(evaluate_aggregate(AggregateOp::Count, &xs), 5.0);
        // Mode with unit bins: the 2.0 bin holds two samples.
        let mode = evaluate_aggregate(AggregateOp::Mode { bin_width: 1.0 }, &xs);
        assert_eq!(mode, 2.0);
        // Empty inputs: Count is 0, value aggregates are NaN.
        assert_eq!(evaluate_aggregate(AggregateOp::Count, &[]), 0.0);
        assert!(evaluate_aggregate(AggregateOp::Mean, &[]).is_nan());
        // Degenerate bin width falls back to 1.0 rather than dividing
        // by zero.
        let m = evaluate_aggregate(AggregateOp::Mode { bin_width: 0.0 }, &xs);
        assert!(m.is_finite());
    }

    #[test]
    fn duplicate_sequenced_requests_resend_without_reserving() {
        let mut n = node(PushPolicy::Silent);
        for i in 0..100u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            n.on_sample(t, diurnal_value(t), None);
        }
        let req = DownlinkMsg::PullRequest {
            query_id: 7,
            from: SimTime::ZERO,
            to: SimTime::from_secs(31 * 50),
            tolerance: 0.3,
        };
        let t = SimTime::from_secs(31 * 101);
        let first = n.handle_sequenced_downlink(t, 0, &req, None).unwrap();
        assert_eq!(n.stats().pulls_served, 1);
        // Retransmitted request (same seq): same reply, no second serve.
        let dup = n
            .handle_sequenced_downlink(t + SimDuration::from_secs(10), 0, &req, None)
            .unwrap();
        assert_eq!(n.stats().pulls_served, 1, "duplicate re-read the flash");
        assert_eq!(n.stats().duplicate_requests, 1);
        assert_eq!(dup.payload, first.payload);
        assert_eq!(dup.sent_at, first.sent_at, "reply describes first serving");
        // A *new* sequence number is served fresh.
        n.handle_sequenced_downlink(t + SimDuration::from_secs(20), 1, &req, None)
            .unwrap();
        assert_eq!(n.stats().pulls_served, 2);
    }

    #[test]
    fn duplicate_model_update_is_not_reapplied() {
        let mut n = node(PushPolicy::ModelDriven { tolerance: 1.0 });
        let update = trained_model_update();
        assert!(n
            .handle_sequenced_downlink(SimTime::ZERO, 3, &update, None)
            .is_none());
        assert!(n.has_model());
        let checks_before = n.stats().model_checks;
        n.handle_sequenced_downlink(SimTime::from_secs(5), 3, &update, None);
        assert_eq!(n.stats().duplicate_requests, 1);
        assert_eq!(n.stats().model_checks, checks_before);
    }

    #[test]
    fn reply_lost_at_mac_is_reserved_on_retransmit() {
        // Scripted link: the first reply's opening fragment dies through
        // all 4 MAC attempts (4 slots), the retransmitted serving's
        // frames and acks all survive.
        let mut pattern = vec![false; 4];
        pattern.extend(std::iter::repeat_n(true, 64));
        let link = LinkModel::new(
            presto_net::LossProcess::Scripted(pattern.into()),
            presto_sim::SimRng::new(2),
        );
        let mut n = SensorNode::new(
            5,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            link,
        );
        for i in 0..50u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            n.on_sample(t, 20.0, None);
        }
        let req = DownlinkMsg::PullRequest {
            query_id: 9,
            from: SimTime::ZERO,
            to: SimTime::from_secs(31 * 40),
            tolerance: 0.5,
        };
        let t = SimTime::from_secs(31 * 51);
        assert!(
            n.handle_sequenced_downlink(t, 0, &req, None).is_none(),
            "first reply must die at the MAC"
        );
        // Retransmitted request: nothing was cached, so serve again.
        let retry = n.handle_sequenced_downlink(t + SimDuration::from_secs(10), 0, &req, None);
        assert!(retry.is_some(), "retransmit must recover the reply");
        assert_eq!(n.stats().duplicate_requests, 1);
    }

    #[test]
    fn aggregate_sigma_honest_about_aged_rows() {
        use crate::msg::AggregateOp;
        use presto_archive::Quality;
        let exact = [Quality::Exact; 4];
        assert_eq!(
            aggregate_sigma(AggregateOp::Mean, exact.iter().copied(), 0.05),
            0.0
        );
        // Aged rows widen the bound; deeper aging widens it more.
        let aged1 = [Quality::Exact, Quality::Aged(1)];
        let aged3 = [Quality::Exact, Quality::Aged(3)];
        let s1 = aggregate_sigma(AggregateOp::Max, aged1.iter().copied(), 0.05);
        let s3 = aggregate_sigma(AggregateOp::Max, aged3.iter().copied(), 0.05);
        assert!(s1 > 0.0 && s3 > s1, "{s1} vs {s3}");
        // Mean averages bounds, so one aged row among many dilutes.
        let diluted = [
            Quality::Aged(1),
            Quality::Exact,
            Quality::Exact,
            Quality::Exact,
        ];
        let sm = aggregate_sigma(AggregateOp::Mean, diluted.iter().copied(), 0.05);
        assert!(sm < s1);
        // Count is exact regardless; empty ranges carry no information.
        assert_eq!(
            aggregate_sigma(AggregateOp::Count, aged3.iter().copied(), 0.05),
            0.0
        );
        assert!(aggregate_sigma(AggregateOp::Mean, std::iter::empty(), 0.05).is_infinite());
        // Mode adds the binning half-width.
        let sb = aggregate_sigma(AggregateOp::Mode { bin_width: 0.5 }, exact.iter().copied(), 0.05);
        assert_eq!(sb, 0.25);
    }

    #[test]
    fn aggregate_request_returns_scalar_over_tiny_wire() {
        use crate::msg::AggregateOp;
        let mut n = node(PushPolicy::Silent);
        for i in 0..500u64 {
            let t = SimTime::ZERO + SimDuration::from_secs(31) * i;
            n.on_sample(t, diurnal_value(t), None);
        }
        let req = DownlinkMsg::AggregateRequest {
            query_id: 5,
            from: SimTime::ZERO,
            to: SimTime::from_hours(4),
            op: AggregateOp::Max,
        };
        let reply = n
            .handle_downlink(SimTime::from_secs(31 * 501), &req, None)
            .unwrap();
        // The reply is a single scalar, far smaller than a pull of the
        // same range.
        assert!(reply.wire_bytes < 32, "{}", reply.wire_bytes);
        let UplinkPayload::AggregateReply { value, count, .. } = reply.payload else {
            panic!("wrong payload");
        };
        assert!(count > 400);
        // Truth: max of the diurnal curve over the first 4 hours.
        let truth = (0..=464u64)
            .map(|i| diurnal_value(SimTime::ZERO + SimDuration::from_secs(31) * i))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((value - truth).abs() < 0.01, "{value} vs {truth}");
    }
}
