//! Messages between sensor and proxy.
//!
//! The simulator passes decoded content alongside the *wire size* each
//! message would occupy; the MAC charges energy from the wire size while
//! the receiving tier consumes the content directly. Lossy encodings are
//! genuinely applied: a compressed batch carries the values the proxy
//! would reconstruct, not the originals.

use std::sync::Arc;

use presto_archive::Quality;
use presto_models::ModelKind;
use presto_sim::{SimDuration, SimTime};
use presto_wavelet::CodecParams;

/// A sample carried in a pull reply.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplySample {
    /// Timestamp.
    pub t: SimTime,
    /// Value (after any lossy re-encoding).
    pub value: f64,
    /// Exact or aged provenance.
    pub quality: Quality,
}

/// Sensor → proxy message payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum UplinkPayload {
    /// A model failure: the observed value (the proxy knows the model, so
    /// the residual suffices on the wire; we carry the value for clarity).
    Deviation {
        /// Observed value.
        value: f64,
        /// The replica's prediction at check time.
        predicted: f64,
    },
    /// A value-driven push (no model context).
    Value {
        /// Observed value.
        value: f64,
    },
    /// A batch of samples as the proxy will reconstruct them.
    Batch {
        /// Reconstructed samples (post-codec if compression was applied).
        samples: Vec<(SimTime, f64)>,
        /// True if a codec was applied.
        compressed: bool,
    },
    /// A semantic event report. The payload is shared, not copied: the
    /// proxy caches the same allocation the sensor produced instead of
    /// cloning every event blob on arrival.
    Event {
        /// Application event type.
        event_type: u16,
        /// Application payload.
        data: Arc<[u8]>,
    },
    /// Reply to a PAST-query pull.
    PullReply {
        /// Correlates with [`DownlinkMsg::PullRequest`].
        query_id: u64,
        /// Samples as reconstructed at the proxy.
        samples: Vec<ReplySample>,
    },
    /// Reply to an aggregate request: a single value computed at the
    /// sensor over its own archive (paper §3: "the operation can be
    /// transmitted as a parameter to the sensor node, which uses the
    /// specified mode function on its local data before transmitting
    /// the final result").
    AggregateReply {
        /// Correlates with [`DownlinkMsg::AggregateRequest`].
        query_id: u64,
        /// The aggregate value (NaN when the range was empty).
        value: f64,
        /// Number of archived samples aggregated.
        count: u32,
        /// Error bound (one sigma) of the aggregate, derived from the
        /// codec/aging error of the archived rows it consumed: exact
        /// rows contribute nothing, wavelet-aged rows contribute their
        /// quantizer-ladder bound. An aggregate over a partly-aged
        /// range is *not* exact and must not claim to be.
        sigma: f64,
    },
    /// A low-rate liveness beacon. Under model-driven push a conforming
    /// sensor is silent, so silence alone cannot distinguish "all
    /// predictions hold" from "node is dead"; a tiny heartbeat renews
    /// the proxy's lease and carries the archive high-water mark so the
    /// proxy knows exactly what span a recovery pull could replay.
    Heartbeat {
        /// Latest instant the local archive covers.
        archived_through: SimTime,
    },
    /// A segment-seal notification: the local archive sealed a block
    /// covering `[start, end]`. The proxy tier registers the span in
    /// its time-range index immediately, so range routing never lags
    /// the archives until some periodic rebuild.
    SegmentSeal {
        /// Covered start of the sealed segment.
        start: SimTime,
        /// Covered end of the sealed segment.
        end: SimTime,
    },
}

/// Aggregate operators a sensor can evaluate over its local archive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AggregateOp {
    /// Arithmetic mean.
    Mean,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Sample count.
    Count,
    /// Modal value after binning at the given width (the paper's
    /// building-health "mode of vibration" example).
    Mode {
        /// Histogram bin width.
        bin_width: f64,
    },
}

impl AggregateOp {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AggregateOp::Mean => "mean",
            AggregateOp::Max => "max",
            AggregateOp::Min => "min",
            AggregateOp::Count => "count",
            AggregateOp::Mode { .. } => "mode",
        }
    }
}

/// A sensor → proxy message with its wire accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct UplinkMsg {
    /// Sending sensor id.
    pub sensor: u16,
    /// Send time.
    pub sent_at: SimTime,
    /// Payload bytes on the wire (pre-fragmentation).
    pub wire_bytes: usize,
    /// Decoded content.
    pub payload: UplinkPayload,
}

/// Proxy → sensor messages.
#[derive(Clone, Debug)]
pub enum DownlinkMsg {
    /// Replace the sensor's model replica.
    ModelUpdate {
        /// Model class of the parameters.
        kind: ModelKind,
        /// Encoded parameters.
        params: Vec<u8>,
    },
    /// Retune operational parameters (query–sensor matching output).
    Retune {
        /// New push policy parameters, if changing.
        push_tolerance: Option<f64>,
        /// New batching interval, if changing.
        batching_interval: Option<SimDuration>,
        /// New LPL check interval, if changing.
        lpl_check_interval: Option<SimDuration>,
        /// New pull-reply codec, if changing.
        reply_codec: Option<CodecParams>,
    },
    /// Request archived data for a PAST query.
    PullRequest {
        /// Query correlation id.
        query_id: u64,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// Query tolerance (drives lossy reply encoding).
        tolerance: f64,
    },
    /// Ask the sensor to evaluate an aggregate over its archive and
    /// reply with just the result — the cheapest possible PAST answer.
    AggregateRequest {
        /// Query correlation id.
        query_id: u64,
        /// Range start.
        from: SimTime,
        /// Range end.
        to: SimTime,
        /// The operator.
        op: AggregateOp,
    },
}

impl DownlinkMsg {
    /// Wire size of the downlink message.
    pub fn wire_bytes(&self) -> usize {
        match self {
            DownlinkMsg::ModelUpdate { params, .. } => 3 + params.len(),
            DownlinkMsg::Retune { .. } => 2 + 4 + 8 + 8 + 9,
            DownlinkMsg::PullRequest { .. } => 2 + 8 + 8 + 8 + 4,
            DownlinkMsg::AggregateRequest { .. } => 2 + 8 + 8 + 8 + 5,
        }
    }
}

/// Wire sizes of uplink payload variants.
pub mod wire {
    /// Sensor id + timestamp + kind byte.
    pub const UPLINK_HEADER: usize = 2 + 8 + 1;
    /// A deviation push: header + f32 value.
    pub const DEVIATION: usize = UPLINK_HEADER + 4;
    /// A value push: header + f32 value.
    pub const VALUE: usize = UPLINK_HEADER + 4;
    /// Event: header + type + payload.
    pub fn event(data_len: usize) -> usize {
        UPLINK_HEADER + 2 + data_len
    }
    /// Raw batch: header + count + first timestamp + epoch + f32 each.
    pub fn raw_batch(samples: usize) -> usize {
        UPLINK_HEADER + 2 + 8 + 4 + samples * 4
    }
    /// Compressed batch: header + count + first timestamp + epoch + codec
    /// payload.
    pub fn compressed_batch(codec_bytes: usize) -> usize {
        UPLINK_HEADER + 2 + 8 + 4 + codec_bytes
    }
    /// Pull reply: header + query id + count + per-sample (dt:u32 + f32).
    pub fn pull_reply_raw(samples: usize) -> usize {
        UPLINK_HEADER + 8 + 2 + samples * 8
    }
    /// Pull reply with codec payload.
    pub fn pull_reply_compressed(codec_bytes: usize, samples: usize) -> usize {
        // Timestamps still ride as (first, epoch) + codec payload.
        let _ = samples;
        UPLINK_HEADER + 8 + 2 + 8 + 4 + codec_bytes
    }
    /// Aggregate reply: header + query id + f32 value + u32 count +
    /// f32 error bound.
    pub const AGGREGATE_REPLY: usize = UPLINK_HEADER + 8 + 4 + 4 + 4;
    /// Heartbeat: header + archive high-water timestamp.
    pub const HEARTBEAT: usize = UPLINK_HEADER + 8;
    /// Segment-seal notification: header + two timestamps.
    pub const SEGMENT_SEAL: usize = UPLINK_HEADER + 8 + 8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_are_ordered_sensibly() {
        assert!(wire::DEVIATION < wire::raw_batch(2));
        assert!(wire::raw_batch(10) < wire::raw_batch(100));
        assert!(wire::event(0) < wire::event(32));
        // A compressed batch that codes 100 samples into 60 bytes beats
        // the raw encoding.
        assert!(wire::compressed_batch(60) < wire::raw_batch(100));
    }

    #[test]
    fn downlink_sizes() {
        let m = DownlinkMsg::ModelUpdate {
            kind: ModelKind::Seasonal,
            params: vec![0; 194],
        };
        assert_eq!(m.wire_bytes(), 197);
        let p = DownlinkMsg::PullRequest {
            query_id: 1,
            from: SimTime::ZERO,
            to: SimTime::from_secs(10),
            tolerance: 0.5,
        };
        assert!(p.wire_bytes() < 40);
    }
}
