//! Zero-overhead guard for the telemetry layer.
//!
//! Runs the same seeded single-proxy query workload twice — every
//! telemetry surface off (no epoch profiler, no pipeline tracer, no
//! presto-scope) vs everything on (scope sampler + watchdogs included),
//! draining traces each epoch like a real consumer — and fails unless
//! the enabled arm stays within `GUARD_RATIO`× the disabled arm's
//! wall-clock. Each arm is timed `REPS` times
//! interleaved and the minimum kept, so scheduler noise can't trip
//! the guard on a loaded CI box.
//!
//! Run with `cargo bench -p presto-bench --bench telemetry_guard`.

use std::time::Instant;

use presto_core::{PrestoSystem, StoreQuery, SystemConfig};
use presto_net::LossProcess;
use presto_sim::{QueryArrival, QueryKind, QueryLoad, QueryLoadConfig, SimDuration};
use presto_workloads::LabParams;

/// Enabled telemetry may cost at most this multiple of disabled.
const GUARD_RATIO: f64 = 3.0;
const WARMUP_HOURS: u64 = 2;
const QUERY_EPOCHS: u64 = 2000;
const REPS: usize = 3;

fn to_store_query(a: &QueryArrival) -> StoreQuery {
    let sensor = a.sensor_slot as u16;
    match a.kind {
        QueryKind::Now => StoreQuery::Now {
            sensor,
            tolerance: a.tolerance,
        },
        QueryKind::Past => StoreQuery::Past {
            sensor,
            from: a.from,
            to: a.to,
            tolerance: a.tolerance,
        },
        QueryKind::Aggregate => StoreQuery::Aggregate {
            sensor,
            from: a.from,
            to: a.to,
            op: presto_sensor::AggregateOp::Mean,
        },
    }
}

/// One timed run: warm up untimed, then pump `QUERY_EPOCHS` epochs of
/// query traffic. Returns (timed seconds, queries completed).
fn run_arm(telemetry: bool) -> (f64, u64) {
    let mut sys_cfg = SystemConfig {
        proxies: 1,
        sensors_per_proxy: 4,
        seed: 2005,
        lab: LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        ..SystemConfig::default()
    };
    sys_cfg.reliability.downlink.request_loss = LossProcess::Bernoulli(0.2);
    sys_cfg.reliability.downlink.reply_loss = LossProcess::Bernoulli(0.2);
    sys_cfg.profile = telemetry;
    sys_cfg.proxy.pipeline.trace = telemetry;
    if telemetry {
        // The full scope: per-epoch snapshot sampling into ring series
        // plus a live watchdog rule, so the guard prices the whole
        // presto-scope pipeline, not just the legacy counters.
        sys_cfg.scope = presto_telemetry::ScopeConfig {
            enabled: true,
            series: vec![
                presto_telemetry::SeriesSpec::delta("pipeline.rpcs_issued"),
                presto_telemetry::SeriesSpec::delta("pipeline.submitted"),
                presto_telemetry::SeriesSpec::level("trace.recorder_len"),
            ],
            rules: vec![presto_telemetry::WatchdogRule::still(
                presto_telemetry::scope::WD_STALE_CONFIDENT,
                "probe.stale_confident",
            )],
            ..presto_telemetry::ScopeConfig::default()
        };
    }
    let epoch = sys_cfg.lab.epoch;
    let mut sys = PrestoSystem::new(sys_cfg);
    sys.run(SimDuration::from_hours(WARMUP_HOURS));
    let mut gen = QueryLoad::new(
        QueryLoadConfig {
            users: 10,
            queries_per_user_per_hour: 60.0,
            max_age: SimDuration::from_hours(WARMUP_HOURS),
            tolerances: vec![0.05],
            seed: 2005 ^ 0x51_0AD,
            ..QueryLoadConfig::default()
        },
        4,
    );
    let mut completed = 0u64;
    let start = Instant::now();
    for _ in 0..QUERY_EPOCHS {
        let t = sys.now();
        for a in gen.step(t, epoch) {
            sys.submit_query(to_store_query(&a));
        }
        sys.step_epoch();
        completed += sys.take_completed_queries().len() as u64;
        if telemetry {
            // Drain like a real consumer so the enabled arm pays the
            // full cost of producing the traces, not just buffering.
            let _ = sys.proxies[0].pipeline_mut().tracer_mut().take_finished();
        }
    }
    (start.elapsed().as_secs_f64(), completed)
}

fn main() {
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    let (mut off_done, mut on_done) = (0u64, 0u64);
    for _ in 0..REPS {
        let (t, n) = run_arm(false);
        off = off.min(t);
        off_done = n;
        let (t, n) = run_arm(true);
        on = on.min(t);
        on_done = n;
    }
    let ratio = on / off;
    println!(
        "telemetry_guard: disabled {:.3} s, enabled {:.3} s, ratio {:.2}x \
         ({} / {} queries completed)",
        off, on, ratio, off_done, on_done
    );
    assert_eq!(
        off_done, on_done,
        "telemetry changed the simulation: {off_done} vs {on_done} completions"
    );
    assert!(
        ratio < GUARD_RATIO,
        "enabled telemetry cost {ratio:.2}x the disabled pump (guard {GUARD_RATIO}x)"
    );
    println!("telemetry_guard OK");
}
