//! Criterion bench over the Table 1 architecture arms on a short shared
//! workload: tracks the cost of simulating each architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use presto_baselines::{direct, stream, valuepush, DriverConfig};
use presto_core::run_presto;

fn quick_cfg() -> DriverConfig {
    DriverConfig {
        sensors: 3,
        days: 1,
        ..DriverConfig::default()
    }
}

fn bench_architectures(c: &mut Criterion) {
    let cfg = quick_cfg();
    let mut group = c.benchmark_group("table1_architectures");
    group.sample_size(10);
    group.bench_function("direct_query", |b| b.iter(|| direct::run(&cfg)));
    group.bench_function("stream_all", |b| b.iter(|| stream::run(&cfg, true)));
    group.bench_function("stream_batched", |b| b.iter(|| stream::run(&cfg, false)));
    group.bench_function("value_push", |b| b.iter(|| valuepush::run(&cfg, 1.0)));
    group.bench_function("presto", |b| b.iter(|| run_presto(&cfg)));
    group.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);
