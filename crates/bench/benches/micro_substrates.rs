//! Microbenchmarks of the substrates: wavelet codec, model train/check,
//! skip-graph operations, and archive I/O. These quantify the ablation
//! knobs DESIGN.md calls out (codec depth, model class, index size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presto_archive::{ArchiveConfig, ArchiveStore};
use presto_index::SkipGraph;
use presto_models::{ArModel, Predictor, SeasonalArModel, SeasonalModel};
use presto_sim::{EnergyLedger, SimDuration, SimTime};
use presto_wavelet::{Codec, CodecParams};
use presto_workloads::{LabDeployment, LabParams};

fn trace_values(n: usize) -> Vec<f64> {
    LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        7,
        SimDuration::from_secs(31 * n as u64),
    )
    .into_iter()
    .map(|r| r.value)
    .collect()
}

fn bench_wavelet(c: &mut Criterion) {
    let mut group = c.benchmark_group("wavelet_codec");
    for n in [64usize, 1024, 4096] {
        let xs = trace_values(n);
        group.bench_with_input(BenchmarkId::new("compress_denoise", n), &xs, |b, xs| {
            let codec = Codec::new(CodecParams::denoising());
            b.iter(|| codec.compress(xs))
        });
        group.bench_with_input(BenchmarkId::new("roundtrip_fine", n), &xs, |b, xs| {
            let codec = Codec::new(CodecParams::fine());
            b.iter(|| {
                let compressed = codec.compress(xs);
                Codec::decompress(&compressed).expect("own payload decodes")
            })
        });
    }
    group.finish();
}

fn bench_models(c: &mut Criterion) {
    let hist: Vec<(SimTime, f64)> = trace_values(5000)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (SimTime::from_secs(31 * i as u64), v))
        .collect();
    let mut group = c.benchmark_group("models");
    group.bench_function("train_seasonal", |b| {
        b.iter(|| SeasonalModel::train(&hist, 24))
    });
    group.bench_function("train_ar4", |b| b.iter(|| ArModel::train(&hist, 4)));
    group.bench_function("train_seasonal_ar", |b| {
        b.iter(|| SeasonalArModel::train(&hist, 24, 2))
    });
    // Per-bin AR refinement: one shared Cholesky factor across every
    // bin's normal-equation solve, vs the naive formulation that
    // rebuilds and re-factorizes the same Gram matrix per bin. The gap
    // between these two datapoints is the factor-reuse speedup.
    group.bench_function("train_seasonal_ar_binned_shared_factor", |b| {
        b.iter(|| SeasonalArModel::train_binned(&hist, 24, 3))
    });
    group.bench_function("train_seasonal_ar_binned_refactorized", |b| {
        b.iter(|| SeasonalArModel::train_binned_refactorized(&hist, 24, 3))
    });
    let (model, _) = SeasonalArModel::train(&hist, 24, 2);
    let mut replica = model.clone_replica();
    group.bench_function("sensor_check", |b| {
        b.iter(|| replica.check(SimTime::from_days(2), 21.0, 1.0))
    });
    group.finish();
}

fn bench_skipgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("skipgraph");
    for n in [64u64, 1024] {
        let mut g: SkipGraph<u64> = SkipGraph::new(3);
        for k in 0..n {
            g.insert(k);
        }
        let intro = g.introducer().expect("non-empty");
        group.bench_with_input(BenchmarkId::new("search", n), &n, |b, &n| {
            let mut probe = 0;
            b.iter(|| {
                probe = (probe + 97) % n;
                g.search(intro, probe)
            })
        });
    }
    group.finish();
}

fn bench_linalg(c: &mut Criterion) {
    use presto_models::Matrix;
    // Blocked vs naive matmul: the gap at each size is the loop-tiling
    // win. Today's spatial model multiplies tens×tens; the 192/256
    // points cover the proxy-neighbourhood growth the blocking is for.
    let mut group = c.benchmark_group("linalg");
    for n in [48usize, 192, 256] {
        let fill = |seed: usize| {
            Matrix::from_vec(
                n,
                n,
                (0..n * n)
                    .map(|i| ((i * 31 + seed) % 97) as f64 / 97.0 - 0.5)
                    .collect(),
            )
        };
        let a = fill(1);
        let b = fill(2);
        group.bench_with_input(BenchmarkId::new("mul_blocked", n), &n, |bch, _| {
            bch.iter(|| a.mul(&b))
        });
        group.bench_with_input(BenchmarkId::new("mul_naive", n), &n, |bch, _| {
            bch.iter(|| a.mul_naive(&b))
        });
    }
    group.finish();
}

fn bench_archive(c: &mut Criterion) {
    let mut group = c.benchmark_group("archive");
    group.sample_size(20);
    group.bench_function("append_1k_scalars", |b| {
        b.iter(|| {
            let mut store = ArchiveStore::new(ArchiveConfig::default());
            let mut ledger = EnergyLedger::new();
            for i in 0..1000u64 {
                store
                    .append_scalar(SimTime::from_secs(31 * i), 20.0, &mut ledger)
                    .expect("append");
            }
            store
        })
    });
    group.bench_function("range_query_day", |b| {
        let mut store = ArchiveStore::new(ArchiveConfig::default());
        let mut ledger = EnergyLedger::new();
        for i in 0..2787u64 {
            store
                .append_scalar(SimTime::from_secs(31 * i), 20.0, &mut ledger)
                .expect("append");
        }
        b.iter(|| {
            store
                .query_range(SimTime::from_hours(6), SimTime::from_hours(18), &mut ledger)
                .expect("query")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wavelet,
    bench_models,
    bench_skipgraph,
    bench_linalg,
    bench_archive
);
criterion_main!(benches);
