//! Criterion bench over the Figure 2 sweep arms: measures the simulation
//! cost of each push policy on a fixed one-day trace, and doubles as a
//! regression check that the arms still run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presto_baselines::valuepush::energy_of_policy;
use presto_sensor::PushPolicy;
use presto_sim::SimDuration;
use presto_wavelet::CodecParams;
use presto_workloads::{LabDeployment, LabParams};

fn bench_arms(c: &mut Criterion) {
    let trace = LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        2005,
        SimDuration::from_days(1),
    );
    let mut group = c.benchmark_group("figure2_arms");
    group.sample_size(10);

    group.bench_function("value_driven_d1", |b| {
        b.iter(|| energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 1.0 }, 0.0, 1))
    });
    group.bench_function("value_driven_d2", |b| {
        b.iter(|| energy_of_policy(&trace, PushPolicy::ValueDriven { delta: 2.0 }, 0.0, 1))
    });
    for mins in [16.5f64, 132.0, 1058.0] {
        group.bench_with_input(
            BenchmarkId::new("batched_raw", format!("{mins}min")),
            &mins,
            |b, &mins| {
                b.iter(|| {
                    energy_of_policy(
                        &trace,
                        PushPolicy::Batched {
                            interval: SimDuration::from_mins_f64(mins),
                            compression: None,
                        },
                        0.0,
                        1,
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_wavelet", format!("{mins}min")),
            &mins,
            |b, &mins| {
                b.iter(|| {
                    energy_of_policy(
                        &trace,
                        PushPolicy::Batched {
                            interval: SimDuration::from_mins_f64(mins),
                            compression: Some(CodecParams::denoising()),
                        },
                        0.0,
                        1,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_arms);
criterion_main!(benches);
