//! Archive query-path bench: demonstrates that the indexed read path
//! (segment index + per-page time directory + decoded-page LRU +
//! streaming merge) costs O(pages overlapping the window) while the
//! pre-index full scan costs O(total archive pages).
//!
//! Arms, per archive size (32 and 128 blocks):
//!
//! * `narrow_indexed` — a window covering ≤ 1 block of data, indexed;
//! * `narrow_fullscan` — the same window through the full-scan
//!   reference path;
//! * `narrow_hot` — the same indexed window repeated against a warm
//!   decoded-page LRU;
//! * `full_indexed` — the whole history, indexed (merge-limited).
//!
//! Besides wall-clock, the run asserts the flash `reads` counters: the
//! narrow indexed query must touch ≥ 5× fewer pages than the full scan
//! on a ≥ 32-block archive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use presto_archive::{ArchiveConfig, ArchiveStore};
use presto_sim::{EnergyLedger, SimDuration, SimTime};

/// Dataflash geometry: 264-byte pages, 8 pages per block.
const BLOCK_BYTES: usize = 264 * 8;
/// 15-byte scalar records, 262 payload bytes per page.
const RECORDS_PER_BLOCK: u64 = (262 / 15) * 8;
const SAMPLE_STEP: SimDuration = SimDuration::from_secs(31);

/// Fills `blocks` worth of flash with 31-second scalars (no
/// reclamation), returning the store and the last timestamp.
fn filled_store(blocks: usize, cache_pages: usize) -> (ArchiveStore, SimTime) {
    let cfg = ArchiveConfig {
        capacity_bytes: blocks * BLOCK_BYTES,
        aging_enabled: false,
        page_cache_pages: cache_pages,
        ..ArchiveConfig::default()
    };
    let mut store = ArchiveStore::new(cfg);
    let mut l = EnergyLedger::new();
    // Fill just short of capacity so no block is reclaimed.
    let n = (blocks as u64 - 1) * RECORDS_PER_BLOCK;
    let mut last = SimTime::ZERO;
    for i in 0..n {
        last = SimTime::ZERO + SAMPLE_STEP * i;
        let v = 20.0 + (i as f64 * 0.003).sin() * 4.0;
        store.append_scalar(last, v, &mut l).expect("within capacity");
    }
    store.flush_page(&mut l).expect("flush");
    (store, last)
}

/// A window holding at most one block's worth of samples, from the
/// middle of the history.
fn narrow_window(last: SimTime) -> (SimTime, SimTime) {
    let mid = SimTime::ZERO + (last - SimTime::ZERO) / 2;
    (mid, mid + SAMPLE_STEP * (RECORDS_PER_BLOCK - 1))
}

/// Counter-based acceptance check: pages touched by the narrow indexed
/// query vs the full scan, independent of machine speed.
fn assert_pages_touched_ratio(blocks: usize) {
    let (mut store, last) = filled_store(blocks, 0);
    let mut l = EnergyLedger::new();
    let (t0, t1) = narrow_window(last);

    let before = store.flash_stats().reads;
    let indexed = store.query_range(t0, t1, &mut l).expect("indexed query");
    let indexed_reads = store.flash_stats().reads - before;

    let before = store.flash_stats().reads;
    let scanned = store
        .query_range_fullscan(t0, t1, &mut l)
        .expect("fullscan query");
    let fullscan_reads = store.flash_stats().reads - before;

    assert_eq!(indexed, scanned, "indexed and fullscan results diverged");
    assert!(!indexed.is_empty(), "narrow window unexpectedly empty");
    let ratio = fullscan_reads as f64 / indexed_reads.max(1) as f64;
    eprintln!(
        "  [pages touched] {blocks}-block archive, narrow window: \
         indexed {indexed_reads} reads vs fullscan {fullscan_reads} reads ({ratio:.1}x)"
    );
    assert!(
        ratio >= 5.0,
        "indexed narrow query must touch >=5x fewer pages ({ratio:.1}x on {blocks} blocks)"
    );
}

fn bench_archive_query(c: &mut Criterion) {
    for blocks in [32usize, 128] {
        assert_pages_touched_ratio(blocks);
    }

    let mut group = c.benchmark_group("archive_query");
    group.sample_size(20);
    for blocks in [32usize, 128] {
        // LRU sized 0 on the cold arms so every iteration pays real
        // (simulated) flash reads.
        let (mut cold, last) = filled_store(blocks, 0);
        let (t0, t1) = narrow_window(last);
        group.bench_with_input(BenchmarkId::new("narrow_indexed", blocks), &(), |b, ()| {
            let mut l = EnergyLedger::new();
            b.iter(|| cold.query_range(t0, t1, &mut l).expect("query"))
        });

        let (mut scan, _) = filled_store(blocks, 0);
        group.bench_with_input(BenchmarkId::new("narrow_fullscan", blocks), &(), |b, ()| {
            let mut l = EnergyLedger::new();
            b.iter(|| scan.query_range_fullscan(t0, t1, &mut l).expect("query"))
        });

        // Warm LRU: the proxy's repeated answer_past pulls over the same
        // recent range.
        let (mut hot, _) = filled_store(blocks, 64);
        group.bench_with_input(BenchmarkId::new("narrow_hot", blocks), &(), |b, ()| {
            let mut l = EnergyLedger::new();
            b.iter(|| hot.query_range(t0, t1, &mut l).expect("query"))
        });

        let (mut full, _) = filled_store(blocks, 0);
        group.bench_with_input(BenchmarkId::new("full_indexed", blocks), &(), |b, ()| {
            let mut l = EnergyLedger::new();
            b.iter(|| {
                full.query_range(SimTime::ZERO, last + SAMPLE_STEP, &mut l)
                    .expect("query")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_archive_query);
criterion_main!(benches);
