//! `bench-diff` — trajectory regression gate over `BENCH_*.json`.
//!
//! Compares a candidate benchmark artifact against a committed baseline
//! with per-metric tolerance bands. The gated surface is the headline
//! `scenario` / `throughput_ratio` pair, every numeric field of every
//! arm summary, and the flattened `metrics` list; the `timeline` and
//! `incidents` sections are for humans and trend tooling and are not
//! byte-gated (they move with every intentional behavior change).
//!
//! The vendored serde_json shim has no parser, so this module carries a
//! minimal recursive-descent JSON reader sufficient for the artifacts
//! the deterministic emitter in [`crate::report`] produces (objects,
//! arrays, strings, numbers, booleans, null).
//!
//! Band policy, per key (first match wins):
//!
//! * keys matching a **must-stay-zero** invariant (leaks, stale
//!   confidence, unattributed incidents, fenced pumping, malformed
//!   traces) fail on any nonzero candidate reading;
//! * keys matching a **host-dependent** class (`alloc.*`, wall-clock
//!   `profiler.*.micros`) are reported but never gated — they vary
//!   across machines and compiler versions;
//! * **bad-up** keys (failures, drops, retransmits) gate only the
//!   upward direction; **bad-down** keys (completions, answers, hits)
//!   gate only the downward direction; everything else is two-sided.
//!
//! A reading passes its band when `|candidate - baseline|` is within
//! `max(abs_slack, rel_tol * |baseline|)` in the gated direction.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Minimal JSON parser
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also what the emitter writes for non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// Numeric reading (`null` reads as NaN — the emitter's non-finite
    /// encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// String reading.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array reading.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| JsonValue::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass
                    // through unvalidated — input came from str).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("malformed number"))
    }
}

/// Parses a JSON document.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Tolerance bands
// ---------------------------------------------------------------------------

/// Which drift direction a key gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Any out-of-band drift is a regression.
    TwoSided,
    /// Only an out-of-band increase is a regression.
    BadUp,
    /// Only an out-of-band decrease is a regression.
    BadDown,
}

/// One key's tolerance band.
#[derive(Clone, Copy, Debug)]
pub struct Band {
    /// Relative tolerance as a fraction of the baseline magnitude.
    pub rel: f64,
    /// Absolute slack (wins for small baselines).
    pub abs: f64,
    /// Gated direction.
    pub direction: Direction,
}

/// Substring classes, first match wins. Keys naming failure/leak-style
/// counters gate upward only; keys naming useful-work counters gate
/// downward only.
const MUST_STAY_ZERO: &[&str] = &[
    "stale_confident",
    "answer_age_missing",
    "leak",
    "fenced_pumping",
    "trace_bad",
    "trace_orphans",
    "incidents_unattributed",
    "double_served",
];

/// Host-dependent rows: reported, never gated.
const UNGATED: &[&str] = &["alloc.", "micros"];

const BAD_UP: &[&str] = &[
    "failed",
    "dropped",
    "retransmit",
    "shed_episodes",
    "deadline",
    "misses",
    "evict",
    "incidents",
    "dead",
];

const BAD_DOWN: &[&str] = &[
    "completed",
    "answered",
    "submitted",
    "hits",
    "hit_rate",
    "throughput",
    "queries_per_sec",
    "terminals",
    "resumed",
    "age_count",
];

/// The band policy for one metric key.
pub fn band_for(key: &str) -> Option<Band> {
    if UNGATED.iter().any(|p| key.contains(p)) {
        return None;
    }
    if MUST_STAY_ZERO.iter().any(|p| key.contains(p)) {
        return Some(Band {
            rel: 0.0,
            abs: 0.0,
            direction: Direction::BadUp,
        });
    }
    let direction = if BAD_UP.iter().any(|p| key.contains(p)) {
        Direction::BadUp
    } else if BAD_DOWN.iter().any(|p| key.contains(p)) {
        Direction::BadDown
    } else {
        Direction::TwoSided
    };
    Some(Band {
        rel: 0.35,
        abs: 8.0,
        direction,
    })
}

/// Checks one reading against its band; `None` means in-band.
fn check(key: &str, baseline: f64, candidate: f64, band: Band) -> Option<String> {
    // Non-finite baselines (emitted as null) only require the candidate
    // to be non-finite too — e.g. an infinite throughput ratio.
    if !baseline.is_finite() || !candidate.is_finite() {
        return if baseline.is_finite() == candidate.is_finite() {
            None
        } else {
            Some(format!(
                "{key}: finiteness changed (baseline {baseline}, candidate {candidate})"
            ))
        };
    }
    let slack = band.abs.max(band.rel * baseline.abs());
    let delta = candidate - baseline;
    let out_of_band = match band.direction {
        Direction::TwoSided => delta.abs() > slack,
        Direction::BadUp => delta > slack,
        Direction::BadDown => delta < -slack,
    };
    if out_of_band {
        Some(format!(
            "{key}: {candidate} drifted out of band from baseline {baseline} \
             (slack {slack:.3}, {:?})",
            band.direction
        ))
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Artifact comparison
// ---------------------------------------------------------------------------

/// Comparison outcome.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Out-of-band readings and structural mismatches.
    pub regressions: Vec<String>,
    /// In-band readings compared.
    pub compared: usize,
    /// Keys present only in the candidate (informational).
    pub added: usize,
}

impl DiffReport {
    /// No regressions found.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn metric_map(doc: &JsonValue) -> BTreeMap<String, f64> {
    doc.get("metrics")
        .and_then(JsonValue::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    Some((
                        r.get("key")?.as_str()?.to_string(),
                        r.get("value")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn arm_map(doc: &JsonValue) -> BTreeMap<String, Vec<(String, f64)>> {
    doc.get("arms")
        .and_then(JsonValue::as_arr)
        .map(|arms| {
            arms.iter()
                .filter_map(|a| {
                    let name = a.get("arm")?.as_str()?.to_string();
                    let JsonValue::Obj(fields) = a else { return None };
                    let nums = fields
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                        .collect();
                    Some((name, nums))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares a candidate artifact against its baseline.
pub fn compare_bench(baseline: &JsonValue, candidate: &JsonValue) -> DiffReport {
    let mut report = DiffReport::default();
    let base_scenario = baseline.get("scenario").and_then(JsonValue::as_str);
    let cand_scenario = candidate.get("scenario").and_then(JsonValue::as_str);
    if base_scenario != cand_scenario {
        report.regressions.push(format!(
            "scenario mismatch: baseline {base_scenario:?}, candidate {cand_scenario:?}"
        ));
        return report;
    }

    let ratio = (
        baseline.get("throughput_ratio").and_then(JsonValue::as_f64),
        candidate.get("throughput_ratio").and_then(JsonValue::as_f64),
    );
    if let (Some(b), Some(c)) = ratio {
        let band = Band {
            rel: 0.25,
            abs: 0.05,
            direction: Direction::BadDown,
        };
        match check("throughput_ratio", b, c, band) {
            Some(msg) => report.regressions.push(msg),
            None => report.compared += 1,
        }
    }

    // Arms, matched by name; every baseline arm and numeric field must
    // survive.
    let base_arms = arm_map(baseline);
    let cand_arms = arm_map(candidate);
    for (name, fields) in &base_arms {
        let Some(cand_fields) = cand_arms.get(name) else {
            report
                .regressions
                .push(format!("arm `{name}` missing from candidate"));
            continue;
        };
        for (field, b) in fields {
            let Some((_, c)) = cand_fields.iter().find(|(k, _)| k == field) else {
                report
                    .regressions
                    .push(format!("arm `{name}` field `{field}` missing from candidate"));
                continue;
            };
            if let Some(band) = band_for(field) {
                match check(&format!("arms.{name}.{field}"), *b, *c, band) {
                    Some(msg) => report.regressions.push(msg),
                    None => report.compared += 1,
                }
            }
        }
    }

    // Flattened metrics.
    let base_metrics = metric_map(baseline);
    let cand_metrics = metric_map(candidate);
    for (key, b) in &base_metrics {
        let Some(band) = band_for(key) else { continue };
        let Some(c) = cand_metrics.get(key) else {
            report
                .regressions
                .push(format!("metric `{key}` missing from candidate"));
            continue;
        };
        match check(&format!("metrics.{key}"), *b, *c, band) {
            Some(msg) => report.regressions.push(msg),
            None => report.compared += 1,
        }
    }
    report.added = cand_metrics
        .keys()
        .filter(|k| !base_metrics.contains_key(*k))
        .count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{render_bench_json, ArmSummary, BenchJson, MetricLine};

    fn bench(ratio: f64, failed: u64, metrics: &[(&str, f64)]) -> BenchJson {
        BenchJson {
            scenario: "fleet".into(),
            throughput_ratio: ratio,
            arms: vec![ArmSummary {
                arm: "shed-on".into(),
                submitted: 500,
                answered_ok: 480,
                failed,
                ..ArmSummary::default()
            }],
            metrics: metrics
                .iter()
                .map(|(k, v)| MetricLine {
                    key: (*k).into(),
                    value: *v,
                })
                .collect(),
            ..BenchJson::default()
        }
    }

    fn parse(b: &BenchJson) -> JsonValue {
        parse_json(&render_bench_json(b)).expect("emitter output parses")
    }

    #[test]
    fn parser_round_trips_emitter_output() {
        let b = bench(1.5, 20, &[("pipeline.rpcs_issued", 321.0)]);
        let doc = parse(&b);
        assert_eq!(
            doc.get("scenario").and_then(JsonValue::as_str),
            Some("fleet")
        );
        assert_eq!(metric_map(&doc).get("pipeline.rpcs_issued"), Some(&321.0));
        assert_eq!(arm_map(&doc)["shed-on"]
            .iter()
            .find(|(k, _)| k == "submitted")
            .map(|(_, v)| *v), Some(500.0));
    }

    #[test]
    fn parser_handles_escapes_and_null() {
        let doc = parse_json(r#"{"k": "a\"b\\c\nd", "v": null, "t": true}"#).unwrap();
        assert_eq!(doc.get("k").and_then(JsonValue::as_str), Some("a\"b\\c\nd"));
        assert!(doc.get("v").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(doc.get("t"), Some(&JsonValue::Bool(true)));
        assert!(parse_json("{\"k\": }").is_err());
        assert!(parse_json("[1,2] trailing").is_err());
    }

    #[test]
    fn identical_artifacts_diff_clean() {
        let b = bench(1.5, 20, &[("pipeline.rpcs_issued", 321.0)]);
        let report = compare_bench(&parse(&b), &parse(&b));
        assert!(report.is_clean(), "{:?}", report.regressions);
        assert!(report.compared > 5);
    }

    #[test]
    fn direction_aware_bands_catch_the_bad_side_only() {
        let base = bench(1.5, 20, &[("fleet_router.failed_deadline", 20.0)]);
        // Fewer failures: improvement, not a regression.
        let better = bench(1.6, 10, &[("fleet_router.failed_deadline", 5.0)]);
        assert!(compare_bench(&parse(&base), &parse(&better)).is_clean());
        // Failure count doubling past the band: regression.
        let worse = bench(1.5, 60, &[("fleet_router.failed_deadline", 60.0)]);
        let report = compare_bench(&parse(&base), &parse(&worse));
        assert!(!report.is_clean());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("failed_deadline")), "{:?}", report.regressions);
    }

    #[test]
    fn zero_invariants_fail_on_any_nonzero_reading() {
        let base = bench(1.5, 20, &[("fleet.leak_router_open", 0.0)]);
        let leaky = bench(1.5, 20, &[("fleet.leak_router_open", 1.0)]);
        let report = compare_bench(&parse(&base), &parse(&leaky));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("leak_router_open")), "{:?}", report.regressions);
    }

    #[test]
    fn missing_metric_and_ungated_alloc_rows() {
        let base = bench(
            1.5,
            20,
            &[("pipeline.rpcs_issued", 100.0), ("alloc.peak_bytes", 1e9)],
        );
        // Dropping a gated metric is a regression; alloc rows may drift
        // or vanish freely.
        let cand = bench(1.5, 20, &[("pipeline.rpcs_issued", 110.0)]);
        let report = compare_bench(&parse(&base), &parse(&cand));
        assert!(report.is_clean(), "{:?}", report.regressions);
        let gone = bench(1.5, 20, &[("alloc.peak_bytes", 5e12)]);
        let report = compare_bench(&parse(&base), &parse(&gone));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("pipeline.rpcs_issued")), "{:?}", report.regressions);
    }

    #[test]
    fn throughput_ratio_gates_downward_only() {
        let base = bench(1.5, 20, &[]);
        let faster = bench(3.0, 20, &[]);
        assert!(compare_bench(&parse(&base), &parse(&faster)).is_clean());
        let slower = bench(0.9, 20, &[]);
        let report = compare_bench(&parse(&base), &parse(&slower));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("throughput_ratio")), "{:?}", report.regressions);
    }
}
