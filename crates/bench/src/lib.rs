//! Experiment library behind the regeneration binaries and benches.
//!
//! Every table and figure of the paper, plus the E1–E8 extension
//! experiments from DESIGN.md, is a pure function of a configuration
//! here, so the `cargo run -p presto-bench --bin <id>` binaries, the
//! Criterion benches, and the integration tests all execute identical
//! code. Results serialize to JSON (via the workspace-approved `serde`)
//! next to the human-readable tables.

pub mod diff;
pub mod experiments;
pub mod failure;
pub mod figure2;
pub mod fleet;
pub mod partition;
pub mod query_pipeline;
pub mod report;
pub mod slice_scenario;
pub mod table1;

/// Renders a JSON value for machine-readable output next to each table.
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
}
