//! The fleet-scenario experiment: skewed multi-proxy load, query
//! shedding on vs off, and a proxy crash + re-home cycle.
//!
//! Two identically seeded fleets run the same Zipf-skewed multi-user
//! workload (one hot proxy absorbing most of the traffic) through the
//! same lossy downlinks, inter-link mesh, and proxy-crash schedule.
//! The only difference is the router's shed switch:
//!
//! * **shedding off** — every query is served where it enters; the hot
//!   proxy's per-epoch attempt budget saturates, its queue grows, and
//!   late queries fail honestly at their deadlines;
//! * **shedding on** — the admission controller reads per-proxy
//!   pressure and forwards archive-range queries from the hot proxy to
//!   cool peers, which pull the sensors over cross-proxy channels.
//!
//! The report compares answered-query throughput, p99 terminal
//! latency (honest failures included at deadline + grace — the latency
//! a user actually experiences), per-proxy completion fairness, and
//! the stale-confident count (answers claiming tight sigma while far
//! from the live truth — must be zero: shedding may slow an answer,
//! never silently wrong one). Leak probes must read clean after the
//! drain window, across the crash + re-home cycle included.

use crate::report::{scope_incidents, scope_timeline, IncidentOut, SeriesOut};
use presto_core::SystemConfig;
use presto_fleet::{fleet_scope_config, FleetConfig, FleetDeployment, FleetScopeBounds, FEED_STALE_CONFIDENT};
use presto_net::LossProcess;
use presto_proxy::{PipelineAnswer, PipelineQuery, QueryClass};
use presto_sim::metrics::Summary;
use presto_sim::{
    FaultPlan, FleetLoadConfig, FleetQueryLoad, QueryLoadConfig, SimDuration, SimTime,
};
use serde::Serialize;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct FleetScenarioConfig {
    /// Warmup (archive + model build) before the query phase, hours.
    pub warmup_hours: u64,
    /// Query-phase length, hours.
    pub query_hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Proxies in the fleet.
    pub proxies: usize,
    /// Sensors per proxy.
    pub sensors_per_proxy: usize,
    /// Downlink loss (Bernoulli, request and reply paths).
    pub loss: f64,
    /// Concurrent users.
    pub users: usize,
    /// Mean queries per user per hour.
    pub queries_per_user_per_hour: f64,
    /// Zipf skew over proxies (proxy 0 hottest).
    pub zipf_s: f64,
    /// Query tolerance (tight, so precision misses force pulls).
    pub tolerance: f64,
    /// Crash window for the last proxy, hours into the query phase
    /// (`None` disables; the sensors re-home and stay re-homed).
    pub crash_hours: Option<(u64, u64)>,
}

impl Default for FleetScenarioConfig {
    fn default() -> Self {
        FleetScenarioConfig {
            warmup_hours: 12,
            query_hours: 4,
            seed: 2005,
            proxies: 4,
            sensors_per_proxy: 3,
            loss: 0.3,
            users: 32,
            queries_per_user_per_hour: 120.0,
            zipf_s: 1.6,
            tolerance: 0.05,
            crash_hours: Some((1, 1000)),
        }
    }
}

impl FleetScenarioConfig {
    /// The small fixed-seed configuration the CI smoke runs.
    pub fn quick() -> Self {
        FleetScenarioConfig {
            warmup_hours: 16,
            query_hours: 2,
            proxies: 3,
            sensors_per_proxy: 2,
            users: 28,
            queries_per_user_per_hour: 100.0,
            ..FleetScenarioConfig::default()
        }
    }
}

/// One arm's (shedding on or off) measurements.
#[derive(Clone, Debug, Serialize)]
pub struct FleetArmReport {
    /// Queries submitted.
    pub submitted: u64,
    /// Terminals observed (every submitted query must terminate).
    pub completed: u64,
    /// Terminals with a real (non-Failed) answer.
    pub answered_ok: u64,
    /// Honest failures (router + pipeline deadlines, entry death).
    pub failed: u64,
    /// Queries shed from hot proxies.
    pub shed: u64,
    /// Pipeline completions straight from radio-free fast paths.
    pub completed_fast: u64,
    /// Pipeline completions from matched pull replies.
    pub completed_pull: u64,
    /// Pull RPCs issued across proxies.
    pub rpcs_issued: u64,
    /// Shed/resumed queries that completed with a real answer.
    pub forwarded_ok: u64,
    /// Answered-query throughput over the phase, queries/hour.
    pub throughput_qph: f64,
    /// Terminal-latency p50, seconds (failures included at
    /// deadline + grace).
    pub p50_s: f64,
    /// Terminal-latency p99, seconds.
    pub p99_s: f64,
    /// Per-proxy answered fraction, by entry proxy.
    pub per_proxy_answer_rate: Vec<f64>,
    /// min / max of `per_proxy_answer_rate` (1.0 = perfectly fair).
    pub fairness: f64,
    /// Answers claiming sigma ≤ tolerance while far from the live
    /// truth (must be zero).
    pub stale_confident: u64,
    /// Sensors re-homed after the proxy crash.
    pub rehomed: u64,
    /// Inter-link messages dropped after retransmission exhaustion.
    pub mesh_dropped: u64,
    /// Leak probes after the drain window (all must be zero).
    pub leaked_router: u64,
    /// Leaked pending pipeline queries.
    pub leaked_pipeline: u64,
    /// Leaked pending-RPC entries (home + cross-proxy channels).
    pub leaked_rpcs: u64,
    /// Leaked in-flight mesh messages.
    pub leaked_mesh: u64,
    /// Terminal-latency p90, seconds.
    pub p90_s: f64,
    /// Real answers carrying an explicit serve-time age.
    pub answer_age_count: u64,
    /// Real data-carrying answers missing the age stamp (must be 0).
    pub answer_age_missing: u64,
    /// Answer-age p50, seconds.
    pub answer_age_p50_s: f64,
    /// Finished query traces collected from the router tracer.
    pub trace_terminals: u64,
    /// Traces with ≠1 terminal or non-monotone timestamps (must be 0).
    pub trace_bad: u64,
    /// Open trace logs (router + pipelines) after drain (must be 0).
    pub trace_orphans: u64,
    /// Downlink request retransmissions (home channels).
    pub retransmits: u64,
    /// Payload bytes the sensors offered to the MAC.
    pub radio_bytes: u64,
    /// Total sensor-tier energy, joules.
    pub sensor_energy_j: f64,
    /// The flattened unified-telemetry snapshot (the BENCH artifact
    /// rows).
    pub metrics: Vec<(String, f64)>,
    /// presto-scope epoch trajectories (the BENCH timeline section).
    pub timeline: Vec<SeriesOut>,
    /// Watchdog incident log, with fault attribution.
    pub incidents: Vec<IncidentOut>,
    /// Incidents no injected fault explains (must be zero — every
    /// violation in this scenario is the crash schedule's doing).
    pub incidents_unattributed: u64,
}

impl FleetArmReport {
    /// This arm's row in the shared benchmark artifact.
    pub fn summarize(&self, arm: &str) -> crate::report::ArmSummary {
        crate::report::ArmSummary {
            arm: arm.to_string(),
            submitted: self.submitted,
            answered_ok: self.answered_ok,
            failed: self.failed,
            queries_per_sec: self.throughput_qph / 3600.0,
            latency_p50_s: self.p50_s,
            latency_p90_s: self.p90_s,
            latency_p99_s: self.p99_s,
            answer_age_count: self.answer_age_count,
            answer_age_missing: self.answer_age_missing,
            answer_age_p50_s: self.answer_age_p50_s,
            shed: self.shed,
            rehomed: self.rehomed,
            retransmits: self.retransmits,
            radio_bytes: self.radio_bytes,
            sensor_energy_j: self.sensor_energy_j,
            cache_hit_rate: 0.0,
            stale_confident: self.stale_confident,
            trace_terminals: self.trace_terminals,
            trace_bad: self.trace_bad,
            trace_orphans: self.trace_orphans,
        }
    }
}

/// Scenario result: both arms plus the headline comparisons.
#[derive(Clone, Debug, Serialize)]
pub struct FleetScenarioReport {
    /// Configured downlink loss.
    pub configured_loss: f64,
    /// Zipf exponent.
    pub zipf_s: f64,
    /// Shedding on.
    pub shed_on: FleetArmReport,
    /// Shedding off.
    pub shed_off: FleetArmReport,
    /// `shed_on.throughput / shed_off.throughput`.
    pub throughput_gain: f64,
    /// The shared-artifact alias for [`FleetScenarioReport::throughput_gain`]
    /// — every scenario report emits `throughput_ratio` under the same
    /// key.
    pub throughput_ratio: f64,
    /// `shed_off.p99 / shed_on.p99`.
    pub p99_gain: f64,
}

fn fleet(cfg: &FleetScenarioConfig, shed: bool) -> FleetDeployment {
    let mut sys_cfg = SystemConfig {
        proxies: cfg.proxies,
        sensors_per_proxy: cfg.sensors_per_proxy,
        seed: cfg.seed,
        lab: presto_workloads::LabParams {
            events_per_day: 0.0,
            // The quiet regime where model-driven silence actually
            // holds: with the default heavy-tailed jitter the sensors
            // push nearly every epoch, the proxy caches densify, and
            // every query completes radio-free — no pipeline pressure,
            // nothing to shed. Quiet sensors keep the caches sparse so
            // tight-tolerance queries genuinely pull.
            jitter_sigma: 0.08,
            heavy_prob: 0.0,
            field_sigma: 0.05,
            ..presto_workloads::LabParams::default()
        },
        ..SystemConfig::default()
    };
    if cfg.loss > 0.0 {
        sys_cfg.reliability.downlink.request_loss = LossProcess::Bernoulli(cfg.loss);
        sys_cfg.reliability.downlink.reply_loss = LossProcess::Bernoulli(cfg.loss);
    }
    // A tight per-epoch attempt budget is the contended resource the
    // deployment tier arbitrates: one proxy can push ~4 lossy pulls
    // per epoch through it, so the Zipf-hot proxy saturates while its
    // peers idle — exactly the imbalance shedding exists to absorb.
    sys_cfg.proxy.pipeline.epoch_attempt_budget = 8;
    // Full trace spans: the router traces by default; turning the
    // pipeline tracer on too gets per-RPC attempt/retransmit/defer
    // events spliced into every fleet trace for the BENCH artifact.
    sys_cfg.proxy.pipeline.trace = true;
    // The standard fleet scope: epoch time-series sampling plus the
    // SLO watchdogs, so every run exports a trajectory and any
    // violation lands in the incident log with the faults to blame.
    sys_cfg.scope = fleet_scope_config(&FleetScopeBounds::default());
    // A bounded summary cache (the paper's "cache of summary
    // information"): the queryable age band below is deliberately
    // larger than this, so the workload's working set does not fit and
    // distinct archive windows genuinely pull instead of re-reading
    // spans earlier pulls densified. Large enough for model training
    // (min_history 500).
    sys_cfg.proxy.cache_capacity = 700;
    if let Some((from_h, to_h)) = cfg.crash_hours {
        let start = SimTime::from_hours(cfg.warmup_hours + from_h);
        let end = SimTime::from_hours(cfg.warmup_hours + to_h);
        sys_cfg.faults = FaultPlan::none().with_proxy_crash(cfg.proxies - 1, start, end);
    }
    let mut fc = FleetConfig {
        system: sys_cfg,
        ..FleetConfig::default()
    };
    fc.router.shed_enabled = shed;
    // Latency classes: the tight-tolerance archive class gets the full
    // default deadline; a loose NOW class trades deadline for budget.
    fc.router.latency_classes = vec![
        QueryClass {
            rate_per_hour: cfg.users as f64 * cfg.queries_per_user_per_hour,
            latency_bound: SimDuration::from_mins(10),
            tolerance: cfg.tolerance,
        },
        QueryClass {
            rate_per_hour: 10.0,
            latency_bound: SimDuration::from_mins(4),
            tolerance: 1.5,
        },
    ];
    FleetDeployment::new(fc)
}

fn load(cfg: &FleetScenarioConfig) -> FleetQueryLoad {
    FleetQueryLoad::new(
        FleetLoadConfig {
            load: QueryLoadConfig {
                users: cfg.users,
                queries_per_user_per_hour: cfg.queries_per_user_per_hour,
                // Windows stay inside the model-era (quiet) span: the
                // pre-model warmup hours pushed every sample, so
                // windows reaching that far back would hit dense cache
                // instead of pulling.
                window_min: SimDuration::from_mins(10),
                window_max: SimDuration::from_mins(30),
                max_age: SimDuration::from_hours(cfg.warmup_hours.saturating_sub(8).max(2)),
                // Mostly-distinct windows: dashboard-style hot windows
                // coalesce into one pull and carry no load, so the
                // skew stress comes from the uniform draws.
                hot_fraction: 0.1,
                tolerances: vec![cfg.tolerance],
                seed: cfg.seed ^ 0xF1_EE7,
                ..QueryLoadConfig::default()
            },
            groups: cfg.proxies,
            zipf_s: cfg.zipf_s,
        },
        cfg.sensors_per_proxy,
    )
}

fn run_arm(cfg: &FleetScenarioConfig, shed: bool) -> FleetArmReport {
    let epoch = SystemConfig::default().lab.epoch;
    let warmup_epochs = SimDuration::from_hours(cfg.warmup_hours).div_duration(epoch);
    let query_epochs = SimDuration::from_hours(cfg.query_hours).div_duration(epoch);
    // Drain: the longest per-query deadline plus the router grace.
    let drain_epochs = SimDuration::from_mins(14).div_duration(epoch) + 4;
    let phase_hours = (query_epochs + drain_epochs) as f64 * epoch.as_secs_f64() / 3600.0;

    let mut fleet = fleet(cfg, shed);
    for _ in 0..warmup_epochs {
        fleet.step_epoch();
    }
    let mut gen = load(cfg);
    let mut submitted = 0u64;
    let mut per_proxy_submitted = vec![0u64; cfg.proxies];
    let mut per_proxy_ok = vec![0u64; cfg.proxies];
    let mut latencies = Summary::new();
    let mut ages = Summary::new();
    let mut answered_ok = 0u64;
    let mut failed = 0u64;
    let mut forwarded_ok = 0u64;
    let mut stale_confident = 0u64;
    let mut completed = 0u64;
    let mut answer_age_missing = 0u64;
    let mut trace_terminals = 0u64;
    let mut trace_bad = 0u64;

    // NOW queries answer "the value when you asked" (the pipeline's
    // value-identity contract anchors at submission), so the
    // stale-confidence oracle is the truth at submission time.
    let mut truth_at_submit: std::collections::BTreeMap<u64, f64> =
        std::collections::BTreeMap::new();
    for e in 0..query_epochs + drain_epochs {
        if e < query_epochs {
            let t = fleet.now();
            let truth_now = fleet.system.truth.clone();
            for a in gen.step(t, epoch) {
                let gid = fleet.arrival_gid(&a);
                let ticket = fleet.submit_arrival(&a);
                if a.arrival.kind == presto_sim::QueryKind::Now {
                    truth_at_submit.insert(ticket, truth_now[gid as usize]);
                }
                submitted += 1;
                per_proxy_submitted[a.group.min(cfg.proxies - 1)] += 1;
            }
        }
        // The stale-confidence probe is driver-side knowledge (it needs
        // ground truth), so it reaches the watchdog as a feed; growth
        // in the cumulative count is a violation.
        fleet
            .system
            .scope_mut()
            .feed(FEED_STALE_CONFIDENT, stale_confident as f64);
        fleet.step_epoch();
        for c in fleet.take_completed() {
            completed += 1;
            latencies.record((c.completed_at - c.submitted_at).as_secs_f64());
            // Drop the oracle entry on every terminal (failed NOW
            // queries included) so the map tracks only open tickets.
            let submit_truth = truth_at_submit.remove(&c.ticket);
            let ok = c.answer.source() != presto_proxy::AnswerSource::Failed;
            if ok {
                answered_ok += 1;
                per_proxy_ok[c.entry] += 1;
                if c.forwarded {
                    forwarded_ok += 1;
                }
                match c.answer_age {
                    Some(age) => ages.record(age.as_secs_f64()),
                    // Aggregates over empty ranges honestly carry no
                    // age; anything else must be stamped.
                    None => {
                        let empty_aggregate = matches!(
                            (&c.query, &c.answer),
                            (PipelineQuery::Aggregate { .. }, PipelineAnswer::Scalar(a))
                                if a.sigma.is_infinite()
                        );
                        if !empty_aggregate {
                            answer_age_missing += 1;
                        }
                    }
                }
                // Stale-confidence probe on NOW answers: an answer
                // claiming sigma within the tolerance must sit near
                // the truth at submission (generous slack for the
                // sampling gap between the serving sample and the
                // submission reading — the metric hunts
                // confidently-wrong answers, which err at the signal
                // scale).
                if let (PipelineQuery::Now { tolerance, .. }, PipelineAnswer::Scalar(ans)) =
                    (&c.query, &c.answer)
                {
                    if let Some(truth) = submit_truth {
                        let err = (ans.value - truth).abs();
                        if ans.sigma <= *tolerance && err > tolerance + 0.5 {
                            stale_confident += 1;
                        }
                    }
                }
            } else {
                failed += 1;
            }
        }
        // Drain finished traces each epoch (bounded FIFO) and audit
        // well-formedness as they stream out.
        for tr in fleet.router.tracer_mut().take_finished() {
            trace_terminals += 1;
            if tr.terminal_count() != 1 || !tr.is_monotone() {
                trace_bad += 1;
            }
        }
    }

    let rates: Vec<f64> = (0..cfg.proxies)
        .map(|p| {
            if per_proxy_submitted[p] == 0 {
                1.0
            } else {
                per_proxy_ok[p] as f64 / per_proxy_submitted[p] as f64
            }
        })
        .collect();
    // Fairness compares *surviving* entry proxies: a crashed proxy's
    // users lose their connection in both arms identically (honest
    // failures no router policy can serve), so including it would
    // only mask the hot-vs-cold imbalance shedding addresses.
    let crashed = cfg.crash_hours.map(|_| cfg.proxies - 1);
    let fairness = {
        let surviving = rates
            .iter()
            .enumerate()
            .filter(|&(p, _)| Some(p) != crashed)
            .map(|(_, &r)| r);
        let (mut lo, mut hi) = (f64::INFINITY, 0.0f64);
        for r in surviving {
            lo = lo.min(r);
            hi = hi.max(r);
        }
        if hi > 0.0 {
            lo / hi
        } else {
            1.0
        }
    };
    let leaks = fleet.leaks();
    let ps = fleet.system.pipeline_stats();
    let snap = fleet.telemetry_snapshot();
    let trace_orphans = fleet.router.tracer().open_count() as u64
        + (0..cfg.proxies)
            .map(|p| fleet.system.proxies[p].pipeline().tracer().open_count() as u64)
            .sum::<u64>();
    FleetArmReport {
        submitted,
        completed,
        answered_ok,
        failed,
        shed: fleet.router.stats().shed,
        completed_fast: ps.completed_fast,
        completed_pull: ps.completed_pull,
        rpcs_issued: ps.rpcs_issued,
        forwarded_ok,
        throughput_qph: answered_ok as f64 / phase_hours,
        p50_s: latencies.median(),
        p99_s: latencies.quantile(0.99),
        per_proxy_answer_rate: rates,
        fairness,
        stale_confident,
        rehomed: fleet.rehomed_sensors(),
        mesh_dropped: fleet.mesh.stats().dropped,
        leaked_router: leaks.router_open as u64,
        leaked_pipeline: leaks.pipeline_pending as u64,
        leaked_rpcs: leaks.rpcs_in_flight as u64,
        leaked_mesh: leaks.mesh_in_flight as u64,
        p90_s: latencies.quantile(0.90),
        answer_age_count: ages.count() as u64,
        answer_age_missing,
        answer_age_p50_s: ages.median(),
        trace_terminals,
        trace_bad,
        trace_orphans,
        retransmits: snap.get("downlink.retransmits").unwrap_or(0.0) as u64,
        radio_bytes: snap.get("sensor.bytes_sent").unwrap_or(0.0) as u64,
        sensor_energy_j: fleet.system.sensor_ledger_total().total(),
        metrics: snap.flatten(),
        timeline: scope_timeline(fleet.system.scope()),
        incidents: scope_incidents(fleet.system.scope()),
        incidents_unattributed: fleet.system.scope().unattributed_incidents() as u64,
    }
}

/// One same-seed arm reduced to byte-comparable artifacts: the dynamic
/// half of the determinism story (the static half is `presto-lint`'s D1
/// pass — see ANALYSIS.md). Two runs with the same config must produce
/// identical strings, byte for byte; any divergence means something
/// outside the seeded RNGs (iteration order, wall-clock, uninitialized
/// state) leaked into behavior.
pub struct DeterminismFingerprint {
    /// `Snapshot::render()` of the final unified telemetry tree — every
    /// counter, gauge, and histogram bucket in sorted dotted-path order.
    pub snapshot: String,
    /// One `Debug` line per completion, in completion order: ticket,
    /// query, routing (entry/served_by/forwarded), the full answer
    /// (values, sigma, provenance, data_through), and both timestamps.
    pub completions: String,
}

/// Drives one arm exactly like the scenario does and fingerprints it.
pub fn determinism_fingerprint(cfg: &FleetScenarioConfig, shed: bool) -> DeterminismFingerprint {
    use std::fmt::Write as _;
    let epoch = SystemConfig::default().lab.epoch;
    let warmup_epochs = SimDuration::from_hours(cfg.warmup_hours).div_duration(epoch);
    let query_epochs = SimDuration::from_hours(cfg.query_hours).div_duration(epoch);
    let drain_epochs = SimDuration::from_mins(14).div_duration(epoch) + 4;

    let mut fleet = fleet(cfg, shed);
    for _ in 0..warmup_epochs {
        fleet.step_epoch();
    }
    let mut gen = load(cfg);
    let mut completions = String::new();
    for e in 0..query_epochs + drain_epochs {
        if e < query_epochs {
            let t = fleet.now();
            for a in gen.step(t, epoch) {
                fleet.submit_arrival(&a);
            }
        }
        fleet.step_epoch();
        for c in fleet.take_completed() {
            let _ = writeln!(completions, "{c:?}");
        }
    }
    // The profiler section is host wall-clock phase timing — the same
    // telemetry-timer carve-out the static D2 allowlist grants
    // `crates/telemetry/src/profiler.rs` — so it is excluded from the
    // byte-identity check; everything else in the tree must match.
    let snapshot = fleet
        .telemetry_snapshot()
        .render()
        .lines()
        .filter(|l| !l.starts_with("profiler."))
        .fold(String::new(), |mut out, l| {
            out.push_str(l);
            out.push('\n');
            out
        });
    DeterminismFingerprint {
        snapshot,
        completions,
    }
}

/// Runs both arms.
pub fn fleet_scenario(cfg: &FleetScenarioConfig) -> FleetScenarioReport {
    let shed_on = run_arm(cfg, true);
    let shed_off = run_arm(cfg, false);
    let throughput_gain = if shed_off.throughput_qph > 0.0 {
        shed_on.throughput_qph / shed_off.throughput_qph
    } else {
        f64::INFINITY
    };
    let p99_gain = if shed_on.p99_s > 0.0 {
        shed_off.p99_s / shed_on.p99_s
    } else {
        f64::INFINITY
    };
    FleetScenarioReport {
        configured_loss: cfg.loss,
        zipf_s: cfg.zipf_s,
        shed_on,
        shed_off,
        throughput_gain,
        throughput_ratio: throughput_gain,
        p99_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_shedding_beats_no_shedding_under_skew() {
        let r = fleet_scenario(&FleetScenarioConfig::quick());
        for (label, arm) in [("on", &r.shed_on), ("off", &r.shed_off)] {
            assert!(arm.submitted > 200, "workload too small ({label}): {arm:?}");
            assert_eq!(
                arm.completed, arm.submitted,
                "every query must terminate ({label}): {arm:?}"
            );
            assert_eq!(arm.stale_confident, 0, "stale-confident answers ({label}): {arm:?}");
            assert_eq!(arm.leaked_router, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_pipeline, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_rpcs, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_mesh, 0, "({label}) {arm:?}");
            assert!(arm.rehomed >= 2, "crash must re-home sensors ({label}): {arm:?}");
            assert_eq!(
                arm.trace_terminals, arm.submitted,
                "every query yields exactly one finished trace ({label})"
            );
            assert_eq!(arm.trace_bad, 0, "malformed traces ({label})");
            assert_eq!(arm.trace_orphans, 0, "orphan traces after drain ({label})");
            assert_eq!(arm.answer_age_missing, 0, "unstamped answers ({label})");
            assert!(arm.answer_age_count > 0, "no answer carried an age ({label})");
            assert!(
                arm.metrics.iter().any(|(k, v)| k == "pipeline.rpcs_issued" && *v > 0.0),
                "telemetry snapshot missing pipeline counters ({label})"
            );
            assert_eq!(
                arm.incidents_unattributed, 0,
                "incidents outside fault windows ({label}): {:?}",
                arm.incidents
            );
            assert!(
                arm.timeline
                    .iter()
                    .any(|s| s.path == "fleet.pressure_max" && !s.points.is_empty()),
                "scope timeline missing the pressure trajectory ({label})"
            );
        }
        assert!(r.shed_on.shed > 0, "hot proxy never shed: {:?}", r.shed_on);
        assert!(
            r.shed_on.forwarded_ok > 0,
            "no shed query answered: {:?}",
            r.shed_on
        );
        assert_eq!(r.shed_off.shed, 0);
        assert!(
            r.throughput_gain > 1.0,
            "shedding must raise answered throughput: {r:?}"
        );
        assert!(r.p99_gain > 1.0, "shedding must cut p99: {r:?}");
        assert!(
            r.shed_on.fairness > r.shed_off.fairness,
            "shedding must improve per-proxy fairness: on {} off {}",
            r.shed_on.fairness,
            r.shed_off.fairness
        );
    }
}
