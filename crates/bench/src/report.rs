//! Shared scenario summary formatting and the `BENCH_*.json` benchmark
//! artifacts.
//!
//! Every fleet-tier scenario bin funnels its headline numbers through
//! the same two outputs:
//!
//! * [`render_summary`] — stable `key=value` grep lines (`scenario=`,
//!   `arm=`, `throughput_ratio=`) so CI and humans can diff runs
//!   without parsing JSON;
//! * [`write_bench_json`] — a machine-readable artifact
//!   (`BENCH_fleet.json`, `BENCH_partition.json`, …) carrying
//!   queries/sec, latency percentiles, answer-age coverage,
//!   shed/re-home counts, radio bytes, retransmits, energy, and the
//!   full flattened unified-telemetry snapshot.

use presto_telemetry::Snapshot;
use serde::Serialize;

/// One flattened telemetry reading (`dotted.path`, value).
#[derive(Clone, Debug, Serialize)]
pub struct MetricLine {
    /// Dotted snapshot path (`pipeline.rpcs_issued`, `profiler.epochs`).
    pub key: String,
    /// The reading.
    pub value: f64,
}

/// One arm's headline numbers in the shared artifact.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ArmSummary {
    /// Arm label (`shed-on`, `with-partition`, …).
    pub arm: String,
    /// Queries submitted.
    pub submitted: u64,
    /// Terminals with a real (non-Failed) answer.
    pub answered_ok: u64,
    /// Honest failures.
    pub failed: u64,
    /// Answered-query throughput, queries per second.
    pub queries_per_sec: f64,
    /// Terminal-latency percentiles, seconds (failures included).
    pub latency_p50_s: f64,
    /// p90.
    pub latency_p90_s: f64,
    /// p99.
    pub latency_p99_s: f64,
    /// Answers that carried an explicit serve-time age.
    pub answer_age_count: u64,
    /// Real data-carrying answers *missing* the age stamp (must be 0 —
    /// the coverage probe CI greps).
    pub answer_age_missing: u64,
    /// Answer-age p50, seconds.
    pub answer_age_p50_s: f64,
    /// Queries shed off hot proxies.
    pub shed: u64,
    /// Sensors re-homed across proxy deaths.
    pub rehomed: u64,
    /// Downlink request retransmissions.
    pub retransmits: u64,
    /// Payload bytes the sensors offered to the MAC.
    pub radio_bytes: u64,
    /// Total sensor-tier energy, joules.
    pub sensor_energy_j: f64,
    /// Cache hit rate over archive-range lookups (slice-tier lookups
    /// when sliced execution is on, reply-cache lookups otherwise).
    pub cache_hit_rate: f64,
    /// Confident answers contradicted by their own window — an Ok
    /// answer with no samples, out-of-window samples, or a coverage
    /// stamp from the future (must be 0).
    pub stale_confident: u64,
    /// Finished query traces collected.
    pub trace_terminals: u64,
    /// Traces violating well-formedness (≠1 terminal or non-monotone
    /// timestamps; must be 0).
    pub trace_bad: u64,
    /// Open (un-terminated) trace logs after the drain (must be 0).
    pub trace_orphans: u64,
}

/// The benchmark artifact a scenario bin writes.
#[derive(Clone, Debug, Serialize)]
pub struct BenchJson {
    /// Scenario name (`fleet`, `partition`, `query_pipeline`).
    pub scenario: String,
    /// Headline cross-arm ratio (primary/secondary arm throughput).
    pub throughput_ratio: f64,
    /// Per-arm headline numbers.
    pub arms: Vec<ArmSummary>,
    /// The primary arm's flattened unified-telemetry snapshot.
    pub metrics: Vec<MetricLine>,
}

/// Flattens a telemetry snapshot into artifact rows.
pub fn snapshot_metrics(snap: &Snapshot) -> Vec<MetricLine> {
    snap.flatten()
        .into_iter()
        .map(|(key, value)| MetricLine { key, value })
        .collect()
}

/// Renders the stable grep lines every scenario bin prints:
///
/// ```text
/// scenario=fleet arm=shed-on submitted=812 answered_ok=700 ...
/// scenario=fleet throughput_ratio=1.43
/// ```
pub fn render_summary(b: &BenchJson) -> String {
    let mut out = String::new();
    for a in &b.arms {
        out.push_str(&format!(
            "scenario={} arm={} submitted={} answered_ok={} failed={} \
             queries_per_sec={:.4} latency_p50_s={:.3} latency_p90_s={:.3} \
             latency_p99_s={:.3} answer_age_count={} answer_age_missing={} \
             answer_age_p50_s={:.3} shed={} rehomed={} retransmits={} \
             radio_bytes={} sensor_energy_j={:.3} cache_hit_rate={:.4} \
             stale_confident={} trace_terminals={} \
             trace_bad={} trace_orphans={}\n",
            b.scenario,
            a.arm,
            a.submitted,
            a.answered_ok,
            a.failed,
            a.queries_per_sec,
            a.latency_p50_s,
            a.latency_p90_s,
            a.latency_p99_s,
            a.answer_age_count,
            a.answer_age_missing,
            a.answer_age_p50_s,
            a.shed,
            a.rehomed,
            a.retransmits,
            a.radio_bytes,
            a.sensor_energy_j,
            a.cache_hit_rate,
            a.stale_confident,
            a.trace_terminals,
            a.trace_bad,
            a.trace_orphans,
        ));
    }
    out.push_str(&format!(
        "scenario={} throughput_ratio={:.4}\n",
        b.scenario, b.throughput_ratio
    ));
    out
}

/// Writes the artifact as JSON to `path`.
pub fn write_bench_json(path: &str, b: &BenchJson) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(b)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lines_carry_stable_keys() {
        let b = BenchJson {
            scenario: "fleet".into(),
            throughput_ratio: 1.25,
            arms: vec![ArmSummary {
                arm: "shed-on".into(),
                submitted: 10,
                answered_ok: 9,
                ..ArmSummary::default()
            }],
            metrics: vec![MetricLine {
                key: "pipeline.submitted".into(),
                value: 10.0,
            }],
        };
        let s = render_summary(&b);
        assert!(s.contains("scenario=fleet arm=shed-on submitted=10 answered_ok=9"));
        assert!(s.contains("scenario=fleet throughput_ratio=1.2500"));
    }

    #[test]
    fn bench_json_is_python_parseable_shape() {
        // The vendored serde shim renders Debug-derived JSON; the
        // artifact must come out as an object with the four top-level
        // keys the CI validator reads.
        let b = BenchJson {
            scenario: "fleet".into(),
            throughput_ratio: f64::INFINITY,
            arms: Vec::new(),
            metrics: Vec::new(),
        };
        let json = serde_json::to_string_pretty(&b).expect("renders");
        assert!(json.contains("\"scenario\": \"fleet\""));
        assert!(json.contains("\"throughput_ratio\": null"), "{json}");
        assert!(json.contains("\"arms\": []"));
    }
}
