//! Shared scenario summary formatting and the `BENCH_*.json` benchmark
//! artifacts.
//!
//! Every fleet-tier scenario bin funnels its headline numbers through
//! the same two outputs:
//!
//! * [`render_summary`] — stable `key=value` grep lines (`scenario=`,
//!   `arm=`, `throughput_ratio=`) so CI and humans can diff runs
//!   without parsing JSON;
//! * [`write_bench_json`] — a machine-readable artifact
//!   (`BENCH_fleet.json`, `BENCH_partition.json`, …) carrying
//!   queries/sec, latency percentiles, answer-age coverage,
//!   shed/re-home counts, radio bytes, retransmits, energy, and the
//!   full flattened unified-telemetry snapshot.

use presto_telemetry::{PrestoScope, Snapshot};
use serde::Serialize;

/// One flattened telemetry reading (`dotted.path`, value).
#[derive(Clone, Debug, Serialize)]
pub struct MetricLine {
    /// Dotted snapshot path (`pipeline.rpcs_issued`, `profiler.epochs`).
    pub key: String,
    /// The reading.
    pub value: f64,
}

/// One arm's headline numbers in the shared artifact.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ArmSummary {
    /// Arm label (`shed-on`, `with-partition`, …).
    pub arm: String,
    /// Queries submitted.
    pub submitted: u64,
    /// Terminals with a real (non-Failed) answer.
    pub answered_ok: u64,
    /// Honest failures.
    pub failed: u64,
    /// Answered-query throughput, queries per second.
    pub queries_per_sec: f64,
    /// Terminal-latency percentiles, seconds (failures included).
    pub latency_p50_s: f64,
    /// p90.
    pub latency_p90_s: f64,
    /// p99.
    pub latency_p99_s: f64,
    /// Answers that carried an explicit serve-time age.
    pub answer_age_count: u64,
    /// Real data-carrying answers *missing* the age stamp (must be 0 —
    /// the coverage probe CI greps).
    pub answer_age_missing: u64,
    /// Answer-age p50, seconds.
    pub answer_age_p50_s: f64,
    /// Queries shed off hot proxies.
    pub shed: u64,
    /// Sensors re-homed across proxy deaths.
    pub rehomed: u64,
    /// Downlink request retransmissions.
    pub retransmits: u64,
    /// Payload bytes the sensors offered to the MAC.
    pub radio_bytes: u64,
    /// Total sensor-tier energy, joules.
    pub sensor_energy_j: f64,
    /// Cache hit rate over archive-range lookups (slice-tier lookups
    /// when sliced execution is on, reply-cache lookups otherwise).
    pub cache_hit_rate: f64,
    /// Confident answers contradicted by their own window — an Ok
    /// answer with no samples, out-of-window samples, or a coverage
    /// stamp from the future (must be 0).
    pub stale_confident: u64,
    /// Finished query traces collected.
    pub trace_terminals: u64,
    /// Traces violating well-formedness (≠1 terminal or non-monotone
    /// timestamps; must be 0).
    pub trace_bad: u64,
    /// Open (un-terminated) trace logs after the drain (must be 0).
    pub trace_orphans: u64,
}

/// One downsampled bin of a presto-scope time series.
#[derive(Clone, Debug, Serialize)]
pub struct TimelinePoint {
    /// Bin start, simulated seconds.
    pub t_s: f64,
    /// Minimum reading folded into the bin.
    pub min: f64,
    /// Maximum reading folded in.
    pub max: f64,
    /// Most recent reading folded in.
    pub last: f64,
    /// Raw readings folded in.
    pub samples: u64,
}

/// One sampled series' epoch trajectory.
#[derive(Clone, Debug, Serialize)]
pub struct SeriesOut {
    /// Dotted snapshot path (or feed name) the series watched.
    pub path: String,
    /// Downsampled bins, oldest first.
    pub points: Vec<TimelinePoint>,
}

/// One watchdog incident, with its blame window.
#[derive(Clone, Debug, Serialize)]
pub struct IncidentOut {
    /// Rule family (`stale_confident`, `answer_age_p99`, …).
    pub rule: String,
    /// The watched path.
    pub path: String,
    /// First violating epoch, simulated seconds.
    pub opened_s: f64,
    /// First clean epoch after the episode (`None` if still open).
    pub closed_s: Option<f64>,
    /// Worst offending reading inside the episode.
    pub observed: f64,
    /// The rule's bound.
    pub bound: f64,
    /// Whether any injected fault overlaps the violation window.
    pub attributed: bool,
    /// The `FaultPlan` faults active in the padded violation window.
    pub faults: Vec<String>,
}

/// The benchmark artifact a scenario bin writes.
#[derive(Clone, Debug, Default, Serialize)]
pub struct BenchJson {
    /// Scenario name (`fleet`, `partition`, `query_pipeline`).
    pub scenario: String,
    /// Headline cross-arm ratio (primary/secondary arm throughput).
    pub throughput_ratio: f64,
    /// Per-arm headline numbers.
    pub arms: Vec<ArmSummary>,
    /// The primary arm's flattened unified-telemetry snapshot.
    pub metrics: Vec<MetricLine>,
    /// The primary arm's presto-scope epoch trajectories.
    pub timeline: Vec<SeriesOut>,
    /// The primary arm's watchdog incident log.
    pub incidents: Vec<IncidentOut>,
}

/// Exports a scope's ring-buffered series as artifact timelines.
pub fn scope_timeline(scope: &PrestoScope) -> Vec<SeriesOut> {
    scope
        .series()
        .iter()
        .map(|(path, ring)| SeriesOut {
            path: path.clone(),
            points: ring
                .bins()
                .iter()
                .map(|b| TimelinePoint {
                    t_s: b.t.as_secs_f64(),
                    min: b.min,
                    max: b.max,
                    last: b.last,
                    samples: b.samples,
                })
                .collect(),
        })
        .collect()
}

/// Exports a scope's watchdog incident log as artifact rows.
pub fn scope_incidents(scope: &PrestoScope) -> Vec<IncidentOut> {
    scope
        .incidents()
        .iter()
        .map(|i| IncidentOut {
            rule: i.rule.to_string(),
            path: i.path.clone(),
            opened_s: i.opened_at.as_secs_f64(),
            closed_s: i.closed_at.map(|t| t.as_secs_f64()),
            observed: i.observed,
            bound: i.bound,
            attributed: i.attributed,
            faults: i.faults.iter().map(|f| format!("{f:?}")).collect(),
        })
        .collect()
}

/// Flattens a telemetry snapshot into artifact rows.
pub fn snapshot_metrics(snap: &Snapshot) -> Vec<MetricLine> {
    snap.flatten()
        .into_iter()
        .map(|(key, value)| MetricLine { key, value })
        .collect()
}

/// Renders the stable grep lines every scenario bin prints:
///
/// ```text
/// scenario=fleet arm=shed-on submitted=812 answered_ok=700 ...
/// scenario=fleet throughput_ratio=1.43
/// ```
pub fn render_summary(b: &BenchJson) -> String {
    let mut out = String::new();
    for a in &b.arms {
        out.push_str(&format!(
            "scenario={} arm={} submitted={} answered_ok={} failed={} \
             queries_per_sec={:.4} latency_p50_s={:.3} latency_p90_s={:.3} \
             latency_p99_s={:.3} answer_age_count={} answer_age_missing={} \
             answer_age_p50_s={:.3} shed={} rehomed={} retransmits={} \
             radio_bytes={} sensor_energy_j={:.3} cache_hit_rate={:.4} \
             stale_confident={} trace_terminals={} \
             trace_bad={} trace_orphans={}\n",
            b.scenario,
            a.arm,
            a.submitted,
            a.answered_ok,
            a.failed,
            a.queries_per_sec,
            a.latency_p50_s,
            a.latency_p90_s,
            a.latency_p99_s,
            a.answer_age_count,
            a.answer_age_missing,
            a.answer_age_p50_s,
            a.shed,
            a.rehomed,
            a.retransmits,
            a.radio_bytes,
            a.sensor_energy_j,
            a.cache_hit_rate,
            a.stale_confident,
            a.trace_terminals,
            a.trace_bad,
            a.trace_orphans,
        ));
    }
    out.push_str(&format!(
        "scenario={} throughput_ratio={:.4}\n",
        b.scenario, b.throughput_ratio
    ));
    out
}

// ---------------------------------------------------------------------------
// Deterministic JSON emission
// ---------------------------------------------------------------------------
//
// The vendored serde_json shim transliterates `Debug` output, which is
// fine for human-readable experiment dumps but too loose for artifacts
// that get byte-compared: `bench-diff` and the committed baselines need
// every run of the same binary on the same seed to emit the identical
// byte stream. The emitter below renders `BenchJson` directly — strings
// escaped per RFC 8259, floats via Rust's shortest round-trip `Display`
// (deterministic for identical bit patterns), non-finite floats as
// `null` — with no dependence on `Debug` formatting.

/// Escapes a string for a JSON string literal (quotes not included).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a float deterministically: shortest round-trip decimal for
/// finite values, `null` for NaN/±inf (JSON has no non-finite numbers).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn push_arm(out: &mut String, a: &ArmSummary, indent: &str) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{indent}{{\n\
         {indent}  \"arm\": \"{}\",\n\
         {indent}  \"submitted\": {},\n\
         {indent}  \"answered_ok\": {},\n\
         {indent}  \"failed\": {},\n\
         {indent}  \"queries_per_sec\": {},\n\
         {indent}  \"latency_p50_s\": {},\n\
         {indent}  \"latency_p90_s\": {},\n\
         {indent}  \"latency_p99_s\": {},\n\
         {indent}  \"answer_age_count\": {},\n\
         {indent}  \"answer_age_missing\": {},\n\
         {indent}  \"answer_age_p50_s\": {},\n\
         {indent}  \"shed\": {},\n\
         {indent}  \"rehomed\": {},\n\
         {indent}  \"retransmits\": {},\n\
         {indent}  \"radio_bytes\": {},\n\
         {indent}  \"sensor_energy_j\": {},\n\
         {indent}  \"cache_hit_rate\": {},\n\
         {indent}  \"stale_confident\": {},\n\
         {indent}  \"trace_terminals\": {},\n\
         {indent}  \"trace_bad\": {},\n\
         {indent}  \"trace_orphans\": {}\n\
         {indent}}}",
        json_escape(&a.arm),
        a.submitted,
        a.answered_ok,
        a.failed,
        json_num(a.queries_per_sec),
        json_num(a.latency_p50_s),
        json_num(a.latency_p90_s),
        json_num(a.latency_p99_s),
        a.answer_age_count,
        a.answer_age_missing,
        json_num(a.answer_age_p50_s),
        a.shed,
        a.rehomed,
        a.retransmits,
        a.radio_bytes,
        json_num(a.sensor_energy_j),
        json_num(a.cache_hit_rate),
        a.stale_confident,
        a.trace_terminals,
        a.trace_bad,
        a.trace_orphans,
    );
}

/// Renders the artifact as deterministic JSON text.
pub fn render_bench_json(b: &BenchJson) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"scenario\": \"{}\",\n  \"throughput_ratio\": {},\n  \"arms\": [",
        json_escape(&b.scenario),
        json_num(b.throughput_ratio)
    );
    for (i, a) in b.arms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        push_arm(&mut out, a, "    ");
    }
    out.push_str(if b.arms.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"metrics\": [");
    for (i, m) in b.metrics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"key\": \"{}\", \"value\": {}}}",
            json_escape(&m.key),
            json_num(m.value)
        );
    }
    out.push_str(if b.metrics.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"timeline\": [");
    for (i, s) in b.timeline.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"path\": \"{}\", \"points\": [",
            json_escape(&s.path)
        );
        for (j, p) in s.points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"t_s\": {}, \"min\": {}, \"max\": {}, \"last\": {}, \"samples\": {}}}",
                json_num(p.t_s),
                json_num(p.min),
                json_num(p.max),
                json_num(p.last),
                p.samples
            );
        }
        out.push_str("]}");
    }
    out.push_str(if b.timeline.is_empty() { "],\n" } else { "\n  ],\n" });
    out.push_str("  \"incidents\": [");
    for (i, inc) in b.incidents.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let closed = match inc.closed_s {
            Some(t) => json_num(t),
            None => "null".to_string(),
        };
        let faults: Vec<String> = inc
            .faults
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        let _ = write!(
            out,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"opened_s\": {}, \
             \"closed_s\": {}, \"observed\": {}, \"bound\": {}, \
             \"attributed\": {}, \"faults\": [{}]}}",
            json_escape(&inc.rule),
            json_escape(&inc.path),
            json_num(inc.opened_s),
            closed,
            json_num(inc.observed),
            json_num(inc.bound),
            inc.attributed,
            faults.join(", ")
        );
    }
    out.push_str(if b.incidents.is_empty() { "]\n" } else { "\n  ]\n" });
    out.push_str("}\n");
    out
}

/// Writes the artifact as deterministic JSON to `path`.
pub fn write_bench_json(path: &str, b: &BenchJson) -> std::io::Result<()> {
    std::fs::write(path, render_bench_json(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_lines_carry_stable_keys() {
        let b = BenchJson {
            scenario: "fleet".into(),
            throughput_ratio: 1.25,
            arms: vec![ArmSummary {
                arm: "shed-on".into(),
                submitted: 10,
                answered_ok: 9,
                ..ArmSummary::default()
            }],
            metrics: vec![MetricLine {
                key: "pipeline.submitted".into(),
                value: 10.0,
            }],
            ..BenchJson::default()
        };
        let s = render_summary(&b);
        assert!(s.contains("scenario=fleet arm=shed-on submitted=10 answered_ok=9"));
        assert!(s.contains("scenario=fleet throughput_ratio=1.2500"));
    }

    fn sample_bench() -> BenchJson {
        BenchJson {
            scenario: "fleet".into(),
            throughput_ratio: f64::INFINITY,
            arms: vec![ArmSummary {
                arm: "shed-on".into(),
                submitted: 10,
                answered_ok: 9,
                queries_per_sec: 0.125,
                ..ArmSummary::default()
            }],
            metrics: vec![MetricLine {
                key: "pipeline.\"odd\\key\"".into(),
                value: f64::NAN,
            }],
            timeline: vec![SeriesOut {
                path: "fleet.pressure_max".into(),
                points: vec![TimelinePoint {
                    t_s: 30.0,
                    min: 1.0,
                    max: 4.5,
                    last: 2.0,
                    samples: 3,
                }],
            }],
            incidents: vec![IncidentOut {
                rule: "pressure_watermark".into(),
                path: "fleet.pressure_max".into(),
                opened_s: 60.0,
                closed_s: None,
                observed: 5.0,
                bound: 4.0,
                attributed: true,
                faults: vec!["MeshPartition { group: [2] }".into()],
            }],
        }
    }

    #[test]
    fn bench_json_emitter_is_valid_and_escaped() {
        let json = render_bench_json(&sample_bench());
        assert!(json.contains("\"scenario\": \"fleet\""), "{json}");
        assert!(json.contains("\"throughput_ratio\": null"), "{json}");
        // Quotes and backslashes in keys survive as JSON escapes.
        assert!(json.contains("pipeline.\\\"odd\\\\key\\\""), "{json}");
        // NaN values render as null, not as a bare token.
        assert!(json.contains("\"value\": null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
        assert!(json.contains("\"timeline\""), "{json}");
        assert!(json.contains("\"t_s\": 30"), "{json}");
        assert!(json.contains("\"rule\": \"pressure_watermark\""), "{json}");
        assert!(json.contains("\"closed_s\": null"), "{json}");
        assert!(json.contains("\"attributed\": true"), "{json}");
    }

    #[test]
    fn bench_json_emitter_is_byte_deterministic() {
        let b = sample_bench();
        assert_eq!(render_bench_json(&b), render_bench_json(&b));
        // Empty sections still close their brackets.
        let empty = BenchJson::default();
        let json = render_bench_json(&empty);
        assert!(json.contains("\"arms\": []"), "{json}");
        assert!(json.contains("\"incidents\": []"), "{json}");
    }
}
