//! The partition-scenario experiment: split-brain fault injection over
//! the fleet, with and without the partition, on one seed.
//!
//! Mid-phase, the mesh links around one proxy are cut (its downlinks
//! stay up — the sensors keep talking to it) and later healed. The
//! quorum membership must fence the minority proxy (it stops accepting
//! queries and stops driving radio), the majority must declare it dead
//! once the threshold passes and re-home its sensors, and the heal
//! must re-admit it through a quorum-confirmed rebirth plus an
//! archive-backed re-sync — all without ever serving a sensor's home
//! uplink from two proxies in one epoch, without a single
//! stale-confident answer, and with an explicit `answer_age` stamped
//! on every real answer. The no-partition arm on the same seed bounds
//! the throughput cost: a split brain may slow the fleet, never
//! corrupt it.

use crate::report::{scope_incidents, scope_timeline, IncidentOut, SeriesOut};
use presto_core::SystemConfig;
use presto_fleet::{fleet_scope_config, FleetConfig, FleetDeployment, FleetScopeBounds, FEED_STALE_CONFIDENT};
use presto_net::LossProcess;
use presto_proxy::{PipelineAnswer, PipelineQuery, QueryClass};
use presto_sim::metrics::Summary;
use presto_sim::{
    FaultPlan, FleetLoadConfig, FleetQueryLoad, QueryLoadConfig, SimDuration, SimTime,
};
use serde::Serialize;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct PartitionScenarioConfig {
    /// Warmup (archive + model build) before the query phase, hours.
    pub warmup_hours: u64,
    /// Query-phase length, hours.
    pub query_hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Proxies in the fleet.
    pub proxies: usize,
    /// Sensors per proxy.
    pub sensors_per_proxy: usize,
    /// Downlink loss (Bernoulli, request and reply paths).
    pub loss: f64,
    /// Concurrent users.
    pub users: usize,
    /// Mean queries per user per hour.
    pub queries_per_user_per_hour: f64,
    /// Zipf skew over proxies (proxy 0 hottest).
    pub zipf_s: f64,
    /// Query tolerance.
    pub tolerance: f64,
    /// Partition window, minutes into the query phase: the last proxy
    /// is cut from the mesh over `[start, start + len)`.
    pub cut_minutes: (u64, u64),
}

impl Default for PartitionScenarioConfig {
    fn default() -> Self {
        PartitionScenarioConfig {
            warmup_hours: 16,
            query_hours: 2,
            seed: 2005,
            proxies: 3,
            sensors_per_proxy: 2,
            loss: 0.3,
            users: 28,
            queries_per_user_per_hour: 100.0,
            zipf_s: 1.6,
            tolerance: 0.05,
            cut_minutes: (30, 40),
        }
    }
}

impl PartitionScenarioConfig {
    /// The small fixed-seed configuration the CI smoke runs.
    pub fn quick() -> Self {
        PartitionScenarioConfig::default()
    }
}

/// One arm's (partition injected or not) measurements.
#[derive(Clone, Debug, Serialize)]
pub struct PartitionArmReport {
    /// Queries submitted.
    pub submitted: u64,
    /// Terminals observed (every submitted query must terminate).
    pub completed: u64,
    /// Terminals with a real (non-Failed) answer.
    pub answered_ok: u64,
    /// Honest failures.
    pub failed: u64,
    /// Admissions refused because the entry or serving proxy was
    /// fenced (minority side of the split).
    pub failed_fenced: u64,
    /// Epochs in which the minority proxy was fenced.
    pub fenced_epochs: u64,
    /// Epochs in which any sensor's home uplink was driven by two
    /// proxies, by a non-owner, or by a fenced/declared-dead proxy
    /// (must be zero — the single-owner invariant).
    pub double_served_epochs: u64,
    /// Quorum death declarations.
    pub deaths_declared: u64,
    /// Quorum-confirmed rebirths (the heal re-admitting the minority).
    pub rejoins: u64,
    /// Sensors re-homed off the declared proxy.
    pub rehomed: u64,
    /// Answers claiming tight sigma while far from the live truth
    /// (must be zero).
    pub stale_confident: u64,
    /// Real answers missing the explicit `answer_age` stamp (must be
    /// zero).
    pub answer_age_missing: u64,
    /// Median age of real answers at serve time, seconds.
    pub answer_age_p50_s: f64,
    /// Answered-query throughput over the phase, queries/hour.
    pub throughput_qph: f64,
    /// Terminal-latency p99, seconds (failures included).
    pub p99_s: f64,
    /// Leak probes after the drain window (all must be zero).
    pub leaked_router: u64,
    /// Leaked pending pipeline queries.
    pub leaked_pipeline: u64,
    /// Leaked pending-RPC entries.
    pub leaked_rpcs: u64,
    /// Leaked in-flight mesh messages.
    pub leaked_mesh: u64,
    /// Terminal-latency p50 / p90, seconds.
    pub p50_s: f64,
    /// p90.
    pub p90_s: f64,
    /// Finished query traces collected from the router tracer.
    pub trace_terminals: u64,
    /// Traces with ≠1 terminal or non-monotone timestamps (must be 0).
    pub trace_bad: u64,
    /// Open trace logs (router + pipelines) after drain (must be 0).
    pub trace_orphans: u64,
    /// Failed / fenced terminals whose full cause chain the flight
    /// recorder reproduces (begins `Submitted`, exactly one terminal,
    /// matching cause).
    pub recorder_chains_ok: u64,
    /// Failed terminals the recorder lost or retained malformed (must
    /// be 0 — the post-mortem guarantee).
    pub recorder_chains_bad: u64,
    /// Downlink request retransmissions (home channels).
    pub retransmits: u64,
    /// Payload bytes the sensors offered to the MAC.
    pub radio_bytes: u64,
    /// Total sensor-tier energy, joules.
    pub sensor_energy_j: f64,
    /// The flattened unified-telemetry snapshot (the BENCH artifact
    /// rows).
    pub metrics: Vec<(String, f64)>,
    /// presto-scope epoch trajectories (the BENCH timeline section).
    pub timeline: Vec<SeriesOut>,
    /// Watchdog incident log, with fault attribution.
    pub incidents: Vec<IncidentOut>,
    /// Incidents no injected fault explains (must be zero in both
    /// arms: outside the cut window the fleet is healthy).
    pub incidents_unattributed: u64,
    /// Incidents whose blame window names the injected mesh partition
    /// (the partitioned arm must log at least one).
    pub incidents_mesh_attributed: u64,
}

impl PartitionArmReport {
    /// This arm's row in the shared benchmark artifact.
    pub fn summarize(&self, arm: &str) -> crate::report::ArmSummary {
        crate::report::ArmSummary {
            arm: arm.to_string(),
            submitted: self.submitted,
            answered_ok: self.answered_ok,
            failed: self.failed,
            queries_per_sec: self.throughput_qph / 3600.0,
            latency_p50_s: self.p50_s,
            latency_p90_s: self.p90_s,
            latency_p99_s: self.p99_s,
            answer_age_count: self.answered_ok - self.answer_age_missing,
            answer_age_missing: self.answer_age_missing,
            answer_age_p50_s: self.answer_age_p50_s,
            shed: 0,
            rehomed: self.rehomed,
            retransmits: self.retransmits,
            radio_bytes: self.radio_bytes,
            sensor_energy_j: self.sensor_energy_j,
            cache_hit_rate: 0.0,
            stale_confident: self.stale_confident,
            trace_terminals: self.trace_terminals,
            trace_bad: self.trace_bad,
            trace_orphans: self.trace_orphans,
        }
    }
}

/// Scenario result: both arms plus the headline comparison.
#[derive(Clone, Debug, Serialize)]
pub struct PartitionScenarioReport {
    /// Configured downlink loss.
    pub configured_loss: f64,
    /// The partitioned proxy.
    pub minority: usize,
    /// Partition injected.
    pub with_partition: PartitionArmReport,
    /// Same seed, no partition.
    pub without_partition: PartitionArmReport,
    /// `with.throughput / without.throughput` — the availability cost
    /// of the split brain (bounded below by the CI smoke).
    pub throughput_ratio: f64,
}

fn fleet(cfg: &PartitionScenarioConfig, partition: bool) -> FleetDeployment {
    let minority = cfg.proxies - 1;
    let mut sys_cfg = SystemConfig {
        proxies: cfg.proxies,
        sensors_per_proxy: cfg.sensors_per_proxy,
        seed: cfg.seed,
        lab: presto_workloads::LabParams {
            events_per_day: 0.0,
            jitter_sigma: 0.08,
            heavy_prob: 0.0,
            field_sigma: 0.05,
            ..presto_workloads::LabParams::default()
        },
        ..SystemConfig::default()
    };
    if cfg.loss > 0.0 {
        sys_cfg.reliability.downlink.request_loss = LossProcess::Bernoulli(cfg.loss);
        sys_cfg.reliability.downlink.reply_loss = LossProcess::Bernoulli(cfg.loss);
    }
    sys_cfg.proxy.pipeline.epoch_attempt_budget = 8;
    sys_cfg.proxy.cache_capacity = 700;
    // The standard fleet scope: the fenced-admission watchdog is what
    // turns the injected cut into an attributed incident. This workload
    // serves PAST windows across the whole warmup archive, so answers
    // legitimately carry hours of age — the p99 bound only has to catch
    // serving data older than the archive itself.
    sys_cfg.scope = fleet_scope_config(&FleetScopeBounds {
        answer_age_p99_us: (cfg.warmup_hours + cfg.query_hours + 8) as f64 * 3600.0 * 1e6,
        ..FleetScopeBounds::default()
    });
    // Full trace spans: per-RPC pipeline events spliced into every
    // fleet trace, and the flight recorder retaining each failed /
    // fenced query's cause chain for the post-mortem checks below.
    sys_cfg.proxy.pipeline.trace = true;
    if partition {
        let (start_m, len_m) = cfg.cut_minutes;
        let from = SimTime::from_hours(cfg.warmup_hours) + SimDuration::from_mins(start_m);
        let to = from + SimDuration::from_mins(len_m);
        sys_cfg.faults = FaultPlan::none().with_mesh_partition(vec![minority], from, to);
    }
    let mut fc = FleetConfig {
        system: sys_cfg,
        ..FleetConfig::default()
    };
    fc.router.latency_classes = vec![
        QueryClass {
            rate_per_hour: cfg.users as f64 * cfg.queries_per_user_per_hour,
            latency_bound: SimDuration::from_mins(10),
            tolerance: cfg.tolerance,
        },
        QueryClass {
            rate_per_hour: 10.0,
            latency_bound: SimDuration::from_mins(4),
            tolerance: 1.5,
        },
    ];
    FleetDeployment::new(fc)
}

fn load(cfg: &PartitionScenarioConfig) -> FleetQueryLoad {
    FleetQueryLoad::new(
        FleetLoadConfig {
            load: QueryLoadConfig {
                users: cfg.users,
                queries_per_user_per_hour: cfg.queries_per_user_per_hour,
                window_min: SimDuration::from_mins(10),
                window_max: SimDuration::from_mins(30),
                max_age: SimDuration::from_hours(cfg.warmup_hours.saturating_sub(8).max(2)),
                hot_fraction: 0.1,
                tolerances: vec![cfg.tolerance],
                seed: cfg.seed ^ 0xF1_EE7,
                ..QueryLoadConfig::default()
            },
            groups: cfg.proxies,
            zipf_s: cfg.zipf_s,
        },
        cfg.sensors_per_proxy,
    )
}

fn run_arm(cfg: &PartitionScenarioConfig, partition: bool) -> PartitionArmReport {
    let minority = cfg.proxies - 1;
    let epoch = SystemConfig::default().lab.epoch;
    let warmup_epochs = SimDuration::from_hours(cfg.warmup_hours).div_duration(epoch);
    let query_epochs = SimDuration::from_hours(cfg.query_hours).div_duration(epoch);
    let drain_epochs = SimDuration::from_mins(14).div_duration(epoch) + 4;
    let phase_hours = (query_epochs + drain_epochs) as f64 * epoch.as_secs_f64() / 3600.0;

    let mut fleet = fleet(cfg, partition);
    for _ in 0..warmup_epochs {
        fleet.step_epoch();
    }
    let mut gen = load(cfg);
    let mut submitted = 0u64;
    let mut latencies = Summary::new();
    let mut ages = Summary::new();
    let mut answered_ok = 0u64;
    let mut failed = 0u64;
    let mut completed = 0u64;
    let mut stale_confident = 0u64;
    let mut answer_age_missing = 0u64;
    let mut fenced_epochs = 0u64;
    let mut double_served_epochs = 0u64;
    let mut trace_terminals = 0u64;
    let mut trace_bad = 0u64;
    let mut failed_tickets: Vec<u64> = Vec::new();

    let mut truth_at_submit: std::collections::BTreeMap<u64, f64> =
        std::collections::BTreeMap::new();
    for e in 0..query_epochs + drain_epochs {
        if e < query_epochs {
            let t = fleet.now();
            let truth_now = fleet.system.truth.clone();
            for a in gen.step(t, epoch) {
                let gid = fleet.arrival_gid(&a);
                let ticket = fleet.submit_arrival(&a);
                if a.arrival.kind == presto_sim::QueryKind::Now {
                    truth_at_submit.insert(ticket, truth_now[gid as usize]);
                }
                submitted += 1;
            }
        }
        // Driver-side probe feed: the watchdog flags any growth in the
        // cumulative stale-confident count.
        fleet
            .system
            .scope_mut()
            .feed(FEED_STALE_CONFIDENT, stale_confident as f64);
        fleet.step_epoch();
        if fleet.is_fenced(minority) {
            fenced_epochs += 1;
        }
        // Single-owner audit: one home driver per sensor, always the
        // current owner, never a fenced or declared-dead proxy.
        {
            let assignment = fleet.system.assignment();
            let mut home_seen = vec![false; assignment.len()];
            let mut violated = false;
            for &(p, gid, via_foreign) in fleet.pump_log() {
                if fleet.is_fenced(p) || fleet.membership().is_declared_dead(p) {
                    violated = true;
                }
                if !via_foreign {
                    if assignment[gid as usize] != p || home_seen[gid as usize] {
                        violated = true;
                    }
                    home_seen[gid as usize] = true;
                }
            }
            if violated {
                double_served_epochs += 1;
            }
        }
        for c in fleet.take_completed() {
            completed += 1;
            latencies.record((c.completed_at - c.submitted_at).as_secs_f64());
            let submit_truth = truth_at_submit.remove(&c.ticket);
            let ok = c.answer.source() != presto_proxy::AnswerSource::Failed;
            if ok {
                answered_ok += 1;
                match c.answer_age {
                    Some(age) => ages.record(age.as_secs_f64()),
                    // Aggregates over empty ranges honestly carry no
                    // age; anything else must be stamped.
                    None => {
                        let empty_aggregate = matches!(
                            (&c.query, &c.answer),
                            (PipelineQuery::Aggregate { .. }, PipelineAnswer::Scalar(a))
                                if a.sigma.is_infinite()
                        );
                        if !empty_aggregate {
                            answer_age_missing += 1;
                        }
                    }
                }
                if let (PipelineQuery::Now { tolerance, .. }, PipelineAnswer::Scalar(ans)) =
                    (&c.query, &c.answer)
                {
                    if let Some(truth) = submit_truth {
                        let err = (ans.value - truth).abs();
                        if ans.sigma <= *tolerance && err > tolerance + 0.5 {
                            stale_confident += 1;
                        }
                    }
                }
            } else {
                failed += 1;
                failed_tickets.push(c.ticket);
            }
        }
        for tr in fleet.router.tracer_mut().take_finished() {
            trace_terminals += 1;
            if tr.terminal_count() != 1 || !tr.is_monotone() {
                trace_bad += 1;
            }
        }
    }

    // Post-mortem guarantee: the flight recorder reproduces the full
    // cause chain — from `Submitted` to the one terminal — for every
    // failed or fenced query.
    let mut recorder_chains_ok = 0u64;
    let mut recorder_chains_bad = 0u64;
    {
        use presto_telemetry::SpanEvent;
        let rec = fleet.router.tracer().recorder();
        for &ticket in &failed_tickets {
            let well_formed = rec.find(ticket).is_some_and(|tr| {
                tr.events.first().map(|e| &e.event) == Some(&SpanEvent::Submitted)
                    && tr.terminal_count() == 1
                    && tr.is_monotone()
                    && tr.cause().is_some_and(|c| {
                        c != presto_telemetry::CompletionCause::Ok
                    })
            });
            if well_formed {
                recorder_chains_ok += 1;
            } else {
                recorder_chains_bad += 1;
            }
        }
    }

    let leaks = fleet.leaks();
    let ms = fleet.membership().stats();
    let snap = fleet.telemetry_snapshot();
    let trace_orphans = fleet.router.tracer().open_count() as u64
        + (0..cfg.proxies)
            .map(|p| fleet.system.proxies[p].pipeline().tracer().open_count() as u64)
            .sum::<u64>();
    let incidents = scope_incidents(fleet.system.scope());
    PartitionArmReport {
        submitted,
        completed,
        answered_ok,
        failed,
        failed_fenced: fleet.router.stats().failed_fenced,
        fenced_epochs,
        double_served_epochs,
        deaths_declared: ms.deaths_declared,
        rejoins: ms.rejoins,
        rehomed: fleet.rehomed_sensors(),
        stale_confident,
        answer_age_missing,
        answer_age_p50_s: ages.median(),
        throughput_qph: answered_ok as f64 / phase_hours,
        p99_s: latencies.quantile(0.99),
        leaked_router: leaks.router_open as u64,
        leaked_pipeline: leaks.pipeline_pending as u64,
        leaked_rpcs: leaks.rpcs_in_flight as u64,
        leaked_mesh: leaks.mesh_in_flight as u64,
        p50_s: latencies.median(),
        p90_s: latencies.quantile(0.90),
        trace_terminals,
        trace_bad,
        trace_orphans,
        recorder_chains_ok,
        recorder_chains_bad,
        retransmits: snap.get("downlink.retransmits").unwrap_or(0.0) as u64,
        radio_bytes: snap.get("sensor.bytes_sent").unwrap_or(0.0) as u64,
        sensor_energy_j: fleet.system.sensor_ledger_total().total(),
        metrics: snap.flatten(),
        timeline: scope_timeline(fleet.system.scope()),
        incidents_unattributed: fleet.system.scope().unattributed_incidents() as u64,
        incidents_mesh_attributed: incidents
            .iter()
            .filter(|i| i.faults.iter().any(|f| f.contains("MeshPartition")))
            .count() as u64,
        incidents,
    }
}

/// Runs both arms on one seed.
pub fn partition_scenario(cfg: &PartitionScenarioConfig) -> PartitionScenarioReport {
    let with_partition = run_arm(cfg, true);
    let without_partition = run_arm(cfg, false);
    let throughput_ratio = if without_partition.throughput_qph > 0.0 {
        with_partition.throughput_qph / without_partition.throughput_qph
    } else {
        f64::INFINITY
    };
    PartitionScenarioReport {
        configured_loss: cfg.loss,
        minority: cfg.proxies - 1,
        with_partition,
        without_partition,
        throughput_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_split_brain_stays_honest_and_heals() {
        let r = partition_scenario(&PartitionScenarioConfig::quick());
        for (label, arm) in [
            ("with", &r.with_partition),
            ("without", &r.without_partition),
        ] {
            assert!(arm.submitted > 200, "workload too small ({label}): {arm:?}");
            assert_eq!(
                arm.completed, arm.submitted,
                "every query must terminate ({label}): {arm:?}"
            );
            assert_eq!(arm.double_served_epochs, 0, "({label}) {arm:?}");
            assert_eq!(arm.stale_confident, 0, "({label}) {arm:?}");
            assert_eq!(arm.answer_age_missing, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_router, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_pipeline, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_rpcs, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_mesh, 0, "({label}) {arm:?}");
            assert_eq!(
                arm.trace_terminals, arm.submitted,
                "every query yields exactly one finished trace ({label})"
            );
            assert_eq!(arm.trace_bad, 0, "malformed traces ({label})");
            assert_eq!(arm.trace_orphans, 0, "orphan traces after drain ({label})");
            assert_eq!(
                arm.recorder_chains_bad, 0,
                "flight recorder must reproduce every failed query's cause chain ({label})"
            );
            assert_eq!(arm.recorder_chains_ok, arm.failed, "({label})");
            assert_eq!(
                arm.incidents_unattributed, 0,
                "watchdog fired outside any fault window ({label}): {:?}",
                arm.incidents
            );
        }
        assert!(
            r.without_partition.incidents.is_empty(),
            "clean arm must log zero incidents: {:?}",
            r.without_partition.incidents
        );
        assert!(
            r.with_partition.incidents_mesh_attributed >= 1,
            "no incident blamed the injected mesh cut: {:?}",
            r.with_partition.incidents
        );
        let w = &r.with_partition;
        assert!(w.fenced_epochs > 0, "minority never fenced: {w:?}");
        assert!(w.failed_fenced > 0, "no admission was fenced: {w:?}");
        assert_eq!(w.deaths_declared, 1, "{w:?}");
        assert_eq!(w.rejoins, 1, "heal must re-admit the minority: {w:?}");
        assert!(w.rehomed >= 2, "sensors never re-homed: {w:?}");
        assert_eq!(r.without_partition.fenced_epochs, 0);
        assert_eq!(r.without_partition.deaths_declared, 0);
        assert!(
            r.throughput_ratio >= 0.5,
            "split brain cost more than half the throughput: {r:?}"
        );
    }
}
