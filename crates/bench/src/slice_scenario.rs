//! The sliced-execution experiment: many users hammering a shared hot
//! archive window through one proxy under downlink loss.
//!
//! Two identically seeded deployments run the same seeded multi-user
//! workload (PAST windows drawn from a small set of staggered,
//! overlapping hot windows, plus background NOW traffic):
//!
//! * **sliced** — archive-range queries split into time-aligned slices
//!   served through the two-tier slice cache; overlapping windows from
//!   different users share slices, so most radio work is absorbed by
//!   the cache and a narrower window completes radio-free;
//! * **monolithic** — the same arrivals with slicing off: the exact
//!   match reply cache only absorbs byte-identical repeat windows, so
//!   overlapping-but-unequal windows each pay their own pull.
//!
//! Both arms run the same horizon plus the same drain window. The
//! report carries each arm's cache hit rate (slice tiers vs reply
//! cache), answered throughput, the stale-confident probe (an Ok
//! answer contradicted by its own window — must be zero), and the
//! trace/age coverage counters the CI smoke asserts on.

use crate::report::{scope_incidents, scope_timeline, IncidentOut, SeriesOut};
use presto_core::{PipelineAnswer, PrestoSystem, StoreQuery, SystemConfig};
use presto_fleet::FEED_STALE_CONFIDENT;
use presto_net::LossProcess;
use presto_proxy::{AnswerSource, SliceConfig};
use presto_sim::metrics::Summary;
use presto_sim::{SimDuration, SimTime};
use presto_telemetry::scope::WD_STALE_CONFIDENT;
use presto_telemetry::{CompletionCause, ScopeConfig, SeriesSpec, WatchdogRule};
use serde::Serialize;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct SliceScenarioConfig {
    /// Warmup (archive build) before the query phase, hours. The hot
    /// windows all lie inside this archived span, so every slice they
    /// touch is complete (cacheable) from the first pull.
    pub warmup_hours: u64,
    /// Query-phase length, hours.
    pub query_hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Sensors under the single proxy.
    pub sensors: usize,
    /// Downlink loss (Bernoulli, request and reply paths).
    pub loss: f64,
    /// Concurrent users.
    pub users: usize,
    /// Mean queries per user per hour.
    pub queries_per_user_per_hour: f64,
    /// PAST-query tolerance (shared across users, so overlapping
    /// windows share slice keys).
    pub tolerance: f64,
}

impl Default for SliceScenarioConfig {
    fn default() -> Self {
        SliceScenarioConfig {
            warmup_hours: 24,
            query_hours: 6,
            seed: 2005,
            sensors: 8,
            loss: 0.3,
            users: 16,
            queries_per_user_per_hour: 60.0,
            tolerance: 0.2,
        }
    }
}

impl SliceScenarioConfig {
    /// The small fixed-seed configuration the CI smoke runs.
    pub fn quick() -> Self {
        SliceScenarioConfig {
            warmup_hours: 8,
            query_hours: 2,
            sensors: 4,
            users: 8,
            ..SliceScenarioConfig::default()
        }
    }
}

/// One arm's results.
#[derive(Clone, Debug, Serialize)]
pub struct SliceArmReport {
    /// Queries emitted by the workload.
    pub submitted: u64,
    /// Terminals observed (must equal `submitted`).
    pub completed: u64,
    /// Terminals with a real (non-Failed) answer.
    pub answered_ok: u64,
    /// Honest failures.
    pub failed: u64,
    /// Completions that never touched the radio (fast paths + caches).
    pub completed_cached: u64,
    /// PAST submissions that took the sliced path.
    pub sliced: u64,
    /// Pull RPCs issued (slice sub-pulls included).
    pub rpcs_issued: u64,
    /// Archive-range cache hit rate: slice-tier lookups when slicing
    /// is on, reply-cache lookups otherwise.
    pub cache_hit_rate: f64,
    /// Slice-tier counters (all zero in the monolithic arm).
    pub slice_lookups: u64,
    /// L1 (RAM-tier) hits.
    pub slice_l1_hits: u64,
    /// L2 (spill-tier) hits, each promoting back to L1.
    pub slice_l2_hits: u64,
    /// L2→L1 promotions.
    pub slice_promotions: u64,
    /// Ok answers contradicted by their own window (must be 0).
    pub stale_confident: u64,
    /// Real answers missing the serve-time age stamp (must be 0).
    pub answer_age_missing: u64,
    /// Real answers carrying the age stamp.
    pub answer_age_count: u64,
    /// Answer-age p50, seconds.
    pub answer_age_p50_s: f64,
    /// Answered-query throughput over the phase, queries/hour.
    pub throughput_qph: f64,
    /// Terminal-latency percentiles, seconds (failures included).
    pub p50_s: f64,
    /// p90.
    pub p90_s: f64,
    /// p99.
    pub p99_s: f64,
    /// Finished query traces collected.
    pub trace_terminals: u64,
    /// Traces with ≠1 terminal or non-monotone timestamps (must be 0).
    pub trace_bad: u64,
    /// Open trace logs after the drain window (must be 0).
    pub trace_orphans: u64,
    /// Leak probes after the drain window (both must be zero).
    pub leaked_pending: u64,
    /// Leaked pending-RPC table entries.
    pub leaked_rpcs: u64,
    /// The flattened unified-telemetry snapshot.
    pub metrics: Vec<(String, f64)>,
    /// presto-scope epoch trajectories (the BENCH timeline section).
    pub timeline: Vec<SeriesOut>,
    /// Watchdog incident log (clean slice runs must keep this empty).
    pub incidents: Vec<IncidentOut>,
    /// Incidents no injected fault explains (must be zero).
    pub incidents_unattributed: u64,
}

impl SliceArmReport {
    /// This arm's row in the shared benchmark artifact.
    pub fn summarize(&self, arm: &str) -> crate::report::ArmSummary {
        crate::report::ArmSummary {
            arm: arm.to_string(),
            submitted: self.submitted,
            answered_ok: self.answered_ok,
            failed: self.failed,
            queries_per_sec: self.throughput_qph / 3600.0,
            latency_p50_s: self.p50_s,
            latency_p90_s: self.p90_s,
            latency_p99_s: self.p99_s,
            answer_age_count: self.answer_age_count,
            answer_age_missing: self.answer_age_missing,
            answer_age_p50_s: self.answer_age_p50_s,
            cache_hit_rate: self.cache_hit_rate,
            stale_confident: self.stale_confident,
            trace_terminals: self.trace_terminals,
            trace_bad: self.trace_bad,
            trace_orphans: self.trace_orphans,
            ..crate::report::ArmSummary::default()
        }
    }
}

/// Scenario result: both arms plus the headline comparisons.
#[derive(Clone, Debug, Serialize)]
pub struct SliceScenarioReport {
    /// Configured downlink loss.
    pub configured_loss: f64,
    /// Sliced execution on.
    pub sliced: SliceArmReport,
    /// Same seed, slicing off.
    pub monolithic: SliceArmReport,
    /// `sliced.throughput / monolithic.throughput` (must be ≥ 1: slice
    /// reuse cannot cost answered throughput).
    pub throughput_ratio: f64,
    /// `sliced.cache_hit_rate - monolithic.cache_hit_rate` (must be
    /// positive: slice sharing absorbs reads exact-match never could).
    pub hit_rate_gain: f64,
}

/// Deterministic splitmix64 step, the workload's only randomness.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The shared hot windows: 2 h 4 min spans (three 1-hour slices each)
/// staggered 30 min apart, all inside the archived warmup. Adjacent
/// stagger positions overlap by over 1.5 h, so different windows share
/// slices without sharing reply-cache keys.
fn hot_window(slot: u64) -> (SimTime, SimTime) {
    let from = SimTime::from_hours(1) + SimDuration::from_mins(30) * slot;
    (from, from + SimDuration::from_mins(124))
}

fn system(cfg: &SliceScenarioConfig, sliced: bool) -> PrestoSystem {
    let mut sys_cfg = SystemConfig {
        proxies: 1,
        sensors_per_proxy: cfg.sensors,
        seed: cfg.seed,
        lab: presto_workloads::LabParams {
            events_per_day: 0.0,
            ..presto_workloads::LabParams::default()
        },
        ..SystemConfig::default()
    };
    // Force the pull path so the comparison measures the caches, not
    // the coverage fast path, and trace so age coverage is auditable.
    sys_cfg.proxy.past_coverage_hit = f64::INFINITY;
    sys_cfg.proxy.pipeline.trace = true;
    // A single-system scope: fleet paths don't exist here, so the
    // timeline watches the pipeline/slice work rates and the recorder,
    // and the one watchdog is the driver-fed stale-confident probe.
    sys_cfg.scope = ScopeConfig {
        enabled: true,
        series: vec![
            SeriesSpec::delta("pipeline.rpcs_issued"),
            SeriesSpec::delta("pipeline.sliced"),
            SeriesSpec::delta("slice.lookups"),
            SeriesSpec::level("trace.recorder_len"),
        ],
        rules: vec![WatchdogRule::still(WD_STALE_CONFIDENT, FEED_STALE_CONFIDENT)],
        ..ScopeConfig::default()
    };
    if sliced {
        sys_cfg.proxy.pipeline.slice = Some(SliceConfig::default());
    }
    if cfg.loss > 0.0 {
        sys_cfg.reliability.downlink.request_loss = LossProcess::Bernoulli(cfg.loss);
        sys_cfg.reliability.downlink.reply_loss = LossProcess::Bernoulli(cfg.loss);
    }
    PrestoSystem::new(sys_cfg)
}

/// An Ok answer contradicted by its own query window: empty series,
/// out-of-window samples, or a coverage stamp from the future.
fn is_stale_confident(c: &presto_proxy::CompletedQuery) -> bool {
    match (&c.query, &c.answer) {
        (presto_proxy::PipelineQuery::Past { from, to, .. }, PipelineAnswer::Series(a)) => {
            a.source != AnswerSource::Failed
                && (a.samples.is_empty()
                    || a.samples.iter().any(|&(t, _)| t < *from || t > *to))
        }
        (_, PipelineAnswer::Scalar(a)) => {
            a.source != AnswerSource::Failed
                && a.data_through.is_some_and(|d| d > c.completed_at)
        }
        _ => false,
    }
}

fn run_arm(cfg: &SliceScenarioConfig, sliced: bool) -> SliceArmReport {
    let epoch = SystemConfig::default().lab.epoch;
    let query_epochs = SimDuration::from_hours(cfg.query_hours).div_duration(epoch);
    let deadline = SystemConfig::default().proxy.pipeline.deadline;
    let drain_epochs = deadline.div_duration(epoch) + 4;
    let phase_hours = (query_epochs + drain_epochs) as f64 * epoch.as_secs_f64() / 3600.0;
    // Per-epoch arrival probability for one user.
    let p_arrival = cfg.queries_per_user_per_hour * epoch.as_secs_f64() / 3600.0;
    let stagger_slots = 4u64;

    let mut sys = system(cfg, sliced);
    sys.run(SimDuration::from_hours(cfg.warmup_hours));

    let mut rng = cfg.seed ^ 0x5711CE;
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut answered_ok = 0u64;
    let mut failed = 0u64;
    let mut stale_confident = 0u64;
    let mut trace_terminals = 0u64;
    let mut trace_bad = 0u64;
    let mut answer_age_missing = 0u64;
    let mut latencies = Summary::new();
    let mut ages = Summary::new();

    for e in 0..query_epochs + drain_epochs {
        if e < query_epochs {
            for _user in 0..cfg.users {
                let r = mix(&mut rng);
                if (r % 10_000) as f64 >= p_arrival * 10_000.0 {
                    continue;
                }
                let sensor = (mix(&mut rng) % cfg.sensors as u64) as u16;
                let q = if mix(&mut rng).is_multiple_of(5) {
                    StoreQuery::Now {
                        sensor,
                        tolerance: cfg.tolerance,
                    }
                } else {
                    let (from, to) = hot_window(mix(&mut rng) % stagger_slots);
                    StoreQuery::Past {
                        sensor,
                        from,
                        to,
                        tolerance: cfg.tolerance,
                    }
                };
                if sys.submit_query(q).is_some() {
                    submitted += 1;
                }
            }
        }
        sys.scope_mut().feed(FEED_STALE_CONFIDENT, stale_confident as f64);
        sys.step_epoch();
        for (_, c) in sys.take_completed_queries() {
            completed += 1;
            latencies.record(c.answer.latency().as_secs_f64());
            let is_failed = match &c.answer {
                PipelineAnswer::Scalar(a) => a.source == AnswerSource::Failed,
                PipelineAnswer::Series(a) => a.source == AnswerSource::Failed,
            };
            if is_failed {
                failed += 1;
            } else {
                answered_ok += 1;
            }
            if is_stale_confident(&c) {
                stale_confident += 1;
            }
        }
        for tr in sys.proxies[0].pipeline_mut().tracer_mut().take_finished() {
            trace_terminals += 1;
            if tr.terminal_count() != 1 || !tr.is_monotone() {
                trace_bad += 1;
            }
            match tr.answer_age() {
                Some(age) => ages.record(age.as_secs_f64()),
                None if tr.cause() == Some(CompletionCause::Ok) => answer_age_missing += 1,
                None => {}
            }
        }
    }

    let ps = sys.pipeline_stats();
    let ss = sys.slice_cache_stats();
    let cache = sys.proxies[0].pipeline().reply_cache();
    let cache_hit_rate = if sliced {
        ss.hit_rate()
    } else {
        let total = cache.hits() + cache.misses();
        if total == 0 {
            0.0
        } else {
            cache.hits() as f64 / total as f64
        }
    };
    let snap = sys.telemetry_snapshot();
    SliceArmReport {
        submitted,
        completed,
        answered_ok,
        failed,
        completed_cached: ps.completed_fast + ps.completed_cached,
        sliced: ps.sliced,
        rpcs_issued: ps.rpcs_issued,
        cache_hit_rate,
        slice_lookups: ss.lookups,
        slice_l1_hits: ss.l1_hits,
        slice_l2_hits: ss.l2_hits,
        slice_promotions: ss.promotions,
        stale_confident,
        answer_age_missing,
        answer_age_count: ages.count() as u64,
        answer_age_p50_s: ages.median(),
        throughput_qph: answered_ok as f64 / phase_hours,
        p50_s: latencies.median(),
        p90_s: latencies.quantile(0.90),
        p99_s: latencies.quantile(0.99),
        trace_terminals,
        trace_bad,
        trace_orphans: sys.proxies[0].pipeline().tracer().open_count() as u64,
        leaked_pending: sys.pipeline_pending_total() as u64,
        leaked_rpcs: sys.async_in_flight_total() as u64,
        metrics: snap.flatten(),
        timeline: scope_timeline(sys.scope()),
        incidents: scope_incidents(sys.scope()),
        incidents_unattributed: sys.scope().unattributed_incidents() as u64,
    }
}

/// Runs both arms over the identical seeded workload.
pub fn slice_scenario(cfg: &SliceScenarioConfig) -> SliceScenarioReport {
    let sliced = run_arm(cfg, true);
    let monolithic = run_arm(cfg, false);
    let throughput_ratio = if monolithic.throughput_qph > 0.0 {
        sliced.throughput_qph / monolithic.throughput_qph
    } else {
        f64::INFINITY
    };
    let hit_rate_gain = sliced.cache_hit_rate - monolithic.cache_hit_rate;
    SliceScenarioReport {
        configured_loss: cfg.loss,
        sliced,
        monolithic,
        throughput_ratio,
        hit_rate_gain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_slice_cache_absorbs_shared_hot_reads() {
        let r = slice_scenario(&SliceScenarioConfig::quick());
        for (label, arm) in [("sliced", &r.sliced), ("monolithic", &r.monolithic)] {
            assert!(arm.submitted > 50, "({label}) workload too small: {arm:?}");
            assert_eq!(
                arm.completed, arm.submitted,
                "({label}) every query must terminate"
            );
            assert_eq!(arm.stale_confident, 0, "({label}) {arm:?}");
            assert_eq!(arm.answer_age_missing, 0, "({label}) {arm:?}");
            assert_eq!(arm.trace_bad, 0, "({label}) {arm:?}");
            assert_eq!(arm.trace_orphans, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_pending, 0, "({label}) {arm:?}");
            assert_eq!(arm.leaked_rpcs, 0, "({label}) {arm:?}");
            assert!(
                arm.incidents.is_empty(),
                "({label}) clean run must log zero incidents: {:?}",
                arm.incidents
            );
            assert_eq!(arm.incidents_unattributed, 0, "({label}) {arm:?}");
            assert!(
                arm.timeline.iter().any(|s| s.path == "slice.lookups"
                    || s.path == "pipeline.rpcs_issued"),
                "({label}) timeline missing the work-rate series"
            );
        }
        assert!(r.sliced.sliced > 0, "hot windows must take the sliced path");
        assert!(
            r.sliced.slice_l1_hits + r.sliced.slice_l2_hits <= r.sliced.slice_lookups,
            "tier hits cannot exceed lookups: {:?}",
            r.sliced
        );
        assert!(
            r.sliced.slice_promotions <= r.sliced.slice_l2_hits,
            "every promotion starts as an L2 hit: {:?}",
            r.sliced
        );
        assert!(
            r.hit_rate_gain > 0.0,
            "slice sharing must beat exact-match caching: {r:?}"
        );
        assert!(
            r.throughput_ratio >= 1.0,
            "slice reuse must not cost answered throughput: {r:?}"
        );
    }
}
