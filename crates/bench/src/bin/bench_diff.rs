//! Trajectory regression gate: compare two `BENCH_*.json` artifacts.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--deny]
//! ```
//!
//! Parses both artifacts, compares the headline ratio, every arm
//! summary field, and the flattened metrics list against per-metric
//! tolerance bands (see `presto_bench::diff`), and prints one line per
//! out-of-band reading. With `--deny`, any regression (or unreadable
//! artifact) exits non-zero — the CI wiring runs each scenario smoke
//! and then gates its fresh BENCH file against the committed baseline
//! in `crates/baselines/bench/`.

use presto_bench::diff::{compare_bench, parse_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let deny = args.iter().any(|a| a == "--deny");
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [baseline_path, candidate_path] = paths.as_slice() else {
        eprintln!("usage: bench_diff <baseline.json> <candidate.json> [--deny]");
        std::process::exit(2);
    };
    let load = |path: &str| -> Result<_, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("bench-diff: {e}");
                }
            }
            std::process::exit(2);
        }
    };
    let report = compare_bench(&baseline, &candidate);
    for r in &report.regressions {
        println!("REGRESSION {r}");
    }
    println!(
        "bench-diff: {} readings in band, {} regressions, {} new candidate metrics \
         ({baseline_path} vs {candidate_path})",
        report.compared,
        report.regressions.len(),
        report.added
    );
    if deny && !report.is_clean() {
        eprintln!("bench-diff --deny: candidate drifted out of tolerance");
        std::process::exit(1);
    }
}
