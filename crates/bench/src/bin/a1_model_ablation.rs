//! A1 ablation: model class under model-driven push — which predictor
//! silences the radio best on the lab workload?

use presto_bench::experiments::{a1_model_ablation, render_json};

fn main() {
    let days = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(6);
    let rows = a1_model_ablation(days, 19);
    print!("{}", render_json("A1 — push rate by model class (tolerance 1.0)", &rows));
}
