//! Cross-proxy fleet under Zipf-skewed load: shedding on vs off.
//!
//! `fleet_scenario [hours]` — the full experiment (default 4 h query
//! phase over a 12 h warmup, 4 proxies × 3 sensors, Zipf 1.6 skew,
//! 30% downlink loss, a permanent proxy crash one hour in).
//! `fleet_scenario --quick` runs the small fixed-seed CI smoke
//! (2 h query phase / 16 h warmup, 3 proxies × 2 sensors, 28 users at
//! 100 q/h) and exits non-zero
//! unless, under one-hot-proxy skew: shedding-on beats shedding-off on
//! answered-query throughput AND p99 terminal latency, per-proxy
//! completion fairness improves, zero stale-confident answers appear
//! in either arm, and every leak probe reads zero after the proxy
//! crash + re-home cycle.
//! `fleet_scenario --determinism` runs the quick arm twice with the
//! same seed and exits non-zero unless the full telemetry snapshot and
//! the completion set are byte-identical across the two runs.

use presto_bench::experiments::render_json;
use presto_bench::fleet::{determinism_fingerprint, fleet_scenario, FleetScenarioConfig};
use presto_bench::report::{render_summary, write_bench_json, BenchJson, MetricLine};

// Counting allocator: BENCH_fleet.json carries allocations/epoch and the
// peak-RSS proxy. The counters are process-cumulative, so the rows are
// appended here (deltas around the scenario call), never folded into the
// telemetry snapshot the determinism audit compares.
#[global_allocator]
static ALLOC: presto_telemetry::alloc::CountingAlloc = presto_telemetry::alloc::CountingAlloc;

fn main() {
    let arg = std::env::args().nth(1);
    if arg.as_deref() == Some("--determinism") {
        determinism_audit();
        return;
    }
    let quick = arg.as_deref() == Some("--quick");
    let cfg = if quick {
        FleetScenarioConfig::quick()
    } else {
        FleetScenarioConfig {
            query_hours: arg.and_then(|a| a.parse().ok()).unwrap_or(4),
            ..FleetScenarioConfig::default()
        }
    };
    let allocs_before = presto_telemetry::alloc::allocation_count();
    let r = fleet_scenario(&cfg);
    let allocs_total = presto_telemetry::alloc::allocation_count() - allocs_before;
    let peak_bytes = presto_telemetry::alloc::peak_bytes();
    print!(
        "{}",
        render_json(
            &format!(
                "fleet scenario — {} proxies × {} sensors, Zipf {:.1}, {} users, {:.0}% loss",
                cfg.proxies,
                cfg.sensors_per_proxy,
                cfg.zipf_s,
                cfg.users,
                cfg.loss * 100.0
            ),
            &r
        )
    );
    // The shared benchmark artifact: stable grep lines on stdout plus
    // the machine-readable BENCH_fleet.json next to the run.
    let mut bench = BenchJson {
        scenario: "fleet".into(),
        throughput_ratio: r.throughput_ratio,
        arms: vec![
            r.shed_on.summarize("shed-on"),
            r.shed_off.summarize("shed-off"),
        ],
        metrics: r
            .shed_on
            .metrics
            .iter()
            .map(|(k, v)| MetricLine {
                key: k.clone(),
                value: *v,
            })
            .collect(),
        timeline: r.shed_on.timeline.clone(),
        incidents: r.shed_on.incidents.clone(),
    };
    // Allocation-pressure rows (host-dependent, so bench-diff leaves
    // the `alloc.` prefix ungated; CI only asserts they are non-zero).
    let epochs = r
        .shed_on
        .metrics
        .iter()
        .find(|(k, _)| k == "profiler.epochs")
        .map_or(0.0, |(_, v)| *v);
    for (key, value) in [
        ("alloc.allocations_total", allocs_total as f64),
        (
            "alloc.allocations_per_epoch",
            if epochs > 0.0 {
                allocs_total as f64 / epochs
            } else {
                0.0
            },
        ),
        ("alloc.peak_bytes", peak_bytes as f64),
    ] {
        bench.metrics.push(MetricLine {
            key: key.into(),
            value,
        });
    }
    print!("{}", render_summary(&bench));
    let mut failures = Vec::new();
    if let Err(e) = write_bench_json("BENCH_fleet.json", &bench) {
        failures.push(format!("could not write BENCH_fleet.json: {e}"));
    }
    for (label, arm) in [("shed-on", &r.shed_on), ("shed-off", &r.shed_off)] {
        if arm.trace_terminals != arm.submitted || arm.trace_bad > 0 || arm.trace_orphans > 0 {
            failures.push(format!(
                "{label}: trace audit failed ({} terminals for {} submitted, {} malformed, {} orphans)",
                arm.trace_terminals, arm.submitted, arm.trace_bad, arm.trace_orphans
            ));
        }
        if arm.answer_age_missing > 0 {
            failures.push(format!(
                "{label}: {} real answers missing answer_age",
                arm.answer_age_missing
            ));
        }
        if arm.completed != arm.submitted {
            failures.push(format!(
                "{label}: {} of {} queries never terminated",
                arm.submitted - arm.completed,
                arm.submitted
            ));
        }
        if arm.stale_confident > 0 {
            failures.push(format!(
                "{label}: {} stale-confident answers",
                arm.stale_confident
            ));
        }
        let leaks =
            arm.leaked_router + arm.leaked_pipeline + arm.leaked_rpcs + arm.leaked_mesh;
        if leaks > 0 {
            failures.push(format!(
                "{label}: leaked entries after drain (router {}, pipeline {}, rpcs {}, mesh {})",
                arm.leaked_router, arm.leaked_pipeline, arm.leaked_rpcs, arm.leaked_mesh
            ));
        }
        if cfg.crash_hours.is_some() && arm.rehomed < cfg.sensors_per_proxy as u64 {
            failures.push(format!(
                "{label}: proxy crash re-homed only {} sensors",
                arm.rehomed
            ));
        }
        if arm.incidents_unattributed > 0 {
            failures.push(format!(
                "{label}: {} watchdog incidents outside any fault window",
                arm.incidents_unattributed
            ));
        }
    }
    if r.shed_on.timeline.iter().all(|s| s.points.is_empty()) {
        failures.push("presto-scope exported an empty timeline".into());
    }
    if allocs_total == 0 || peak_bytes == 0 {
        failures.push("counting allocator reported zero activity".into());
    }
    if r.shed_on.shed == 0 {
        failures.push("shedding never fired under skew".into());
    }
    if r.shed_on.forwarded_ok == 0 {
        failures.push("no shed query completed with a real answer".into());
    }
    if r.throughput_gain <= 1.0 {
        failures.push(format!(
            "shedding did not raise answered throughput: {:.1} vs {:.1} q/h",
            r.shed_on.throughput_qph, r.shed_off.throughput_qph
        ));
    }
    if r.p99_gain <= 1.0 {
        failures.push(format!(
            "shedding did not cut p99: {:.1} s vs {:.1} s",
            r.shed_on.p99_s, r.shed_off.p99_s
        ));
    }
    if r.shed_on.fairness <= r.shed_off.fairness {
        failures.push(format!(
            "shedding did not improve per-proxy fairness: {:.3} vs {:.3}",
            r.shed_on.fairness, r.shed_off.fairness
        ));
    }
    if !failures.is_empty() {
        eprintln!("fleet-scenario {} FAILED:", if quick { "smoke" } else { "run" });
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "fleet-scenario {} OK — {} queries, shed {}, {:.1} vs {:.1} q/h ({:.2}×), \
         p99 {:.0} s vs {:.0} s, fairness {:.2} vs {:.2}, {} re-homed",
        if quick { "smoke" } else { "run" },
        r.shed_on.submitted,
        r.shed_on.shed,
        r.shed_on.throughput_qph,
        r.shed_off.throughput_qph,
        r.throughput_gain,
        r.shed_on.p99_s,
        r.shed_off.p99_s,
        r.shed_on.fairness,
        r.shed_off.fairness,
        r.shed_on.rehomed
    );
}

/// Same-seed double run of the quick shedding arm: the telemetry
/// snapshot and completion set must match byte for byte.
fn determinism_audit() {
    let cfg = FleetScenarioConfig::quick();
    let a = determinism_fingerprint(&cfg, true);
    let b = determinism_fingerprint(&cfg, true);
    let snap_ok = a.snapshot == b.snapshot;
    let comp_ok = a.completions == b.completions;
    println!(
        "determinism audit: snapshot {} bytes ({}), completions {} lines ({})",
        a.snapshot.len(),
        if snap_ok { "identical" } else { "DIVERGED" },
        a.completions.lines().count(),
        if comp_ok { "identical" } else { "DIVERGED" },
    );
    if !snap_ok {
        for (la, lb) in a.snapshot.lines().zip(b.snapshot.lines()) {
            if la != lb {
                eprintln!("snapshot diff:\n  run1: {la}\n  run2: {lb}");
            }
        }
    }
    if !comp_ok {
        let diverged = a
            .completions
            .lines()
            .zip(b.completions.lines())
            .enumerate()
            .find(|(_, (la, lb))| la != lb);
        if let Some((i, (la, lb))) = diverged {
            eprintln!("completion diff at line {i}:\n  run1: {la}\n  run2: {lb}");
        } else {
            eprintln!(
                "completion count diff: {} vs {} lines",
                a.completions.lines().count(),
                b.completions.lines().count()
            );
        }
    }
    if !(snap_ok && comp_ok) {
        eprintln!("fleet determinism audit FAILED");
        std::process::exit(1);
    }
    println!("fleet determinism audit passed");
}
