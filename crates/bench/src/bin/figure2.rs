//! Regenerates Figure 2: total push energy vs batching interval.
//!
//! Usage: `cargo run --release -p presto-bench --bin figure2 [days]`
//! (default 36 days, matching the Intel Lab trace span).

use presto_bench::figure2::{check_shape, generate, render, Figure2Config};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(36);
    let cfg = Figure2Config {
        days,
        ..Figure2Config::default()
    };
    let data = generate(&cfg);
    print!("{}", render(&data));
    match check_shape(&data) {
        Ok(()) => println!("\nshape check: OK (batched arms decrease, wavelet below raw, value-driven flat with d1 > d2)"),
        Err(e) => println!("\nshape check: FAILED — {e}"),
    }
    println!("\nJSON:\n{}", presto_bench::to_json(&data));
}
