//! E1: rare-event recall — model-driven push vs periodic pull.

use presto_bench::experiments::{e1_rare_events, render_json};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let r = e1_rare_events(days, 11);
    print!(
        "{}",
        render_json(
            &format!(
                "E1 — rare-event recall over {days} days ({} events injected)",
                r.events
            ),
            &r
        )
    );
}
