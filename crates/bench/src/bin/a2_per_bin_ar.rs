//! A2 — does per-bin AR residual refinement earn its push rate?
//!
//! `EngineConfig::per_bin_ar` refines the SeasonalAr residual stage
//! with per-bin lag coefficients. On workloads whose residual dynamics
//! change by regime (traffic: rush-hour vs night; eldercare: sleep vs
//! active hours) the refinement should predict better, so a
//! model-driven sensor pushes fewer deviations. This bin measures that
//! directly: one sensor + one proxy per arm, identical workload series,
//! hourly train checks, deviations and uplink bytes counted over the
//! post-warmup half. The result decides the config default (recorded
//! in CHANGES.md).

use presto_net::LinkModel;
use presto_proxy::{EngineConfig, PrestoProxy, ProxyConfig};
use presto_sensor::{PushPolicy, SensorConfig, SensorNode};
use presto_sim::{SimDuration, SimTime};
use presto_workloads::{EldercareGen, TrafficGen, TrafficParams};

struct ArmResult {
    pushes: u64,
    bytes: u64,
    models_pushed: u64,
}

/// Drives one sensor + proxy over a scalar series with hourly train
/// checks; measures pushes/bytes over the second half (post-warmup).
fn run_arm(series: &[(SimTime, f64)], per_bin_ar: bool, tolerance: f64) -> ArmResult {
    let mut proxy = PrestoProxy::new(ProxyConfig {
        engine: EngineConfig {
            per_bin_ar,
            ..EngineConfig::default()
        },
        push_tolerance: tolerance,
        ..ProxyConfig::default()
    });
    proxy.register_sensor(0);
    let mut node = SensorNode::new(
        0,
        SensorConfig {
            push: PushPolicy::ModelDriven { tolerance },
            ..SensorConfig::default()
        },
        LinkModel::perfect(),
    );
    let mut chan = presto_reliability::DownlinkChannel::perfect();
    let mid = series.len() / 2;
    let mut half_stats = (0u64, 0u64, 0u64);
    let mut last_train = SimTime::ZERO;
    for (i, &(t, v)) in series.iter().enumerate() {
        if i == mid {
            half_stats = (
                node.stats().deviations_pushed,
                node.stats().bytes_sent,
                proxy.stats().models_pushed,
            );
        }
        for msg in node.on_sample(t, v, Some(proxy.ledger_mut())) {
            proxy.on_uplink(&msg);
        }
        if t - last_train >= SimDuration::from_hours(1) {
            last_train = t;
            proxy.maybe_train_and_push(t, 0, &mut node, &mut chan);
        }
    }
    ArmResult {
        pushes: node.stats().deviations_pushed - half_stats.0,
        bytes: node.stats().bytes_sent - half_stats.1,
        models_pushed: proxy.stats().models_pushed - half_stats.2,
    }
}

fn eldercare_series(days: u64, seed: u64) -> Vec<(SimTime, f64)> {
    let epoch = SimDuration::from_secs(31);
    let mut gen = EldercareGen::new(epoch, 2.0, seed);
    gen.generate(SimDuration::from_hours(24 * days))
        .into_iter()
        .map(|s| (s.timestamp, s.level))
        .collect()
}

fn traffic_series(days: u64, seed: u64) -> Vec<(SimTime, f64)> {
    // Detections bucketed into 5-minute counts: a rate series with
    // regime-dependent dynamics (rush peaks, quiet nights).
    let bucket = SimDuration::from_mins(5);
    let mut gen = TrafficGen::new(
        TrafficParams {
            sensors: 1,
            ..TrafficParams::default()
        },
        seed,
    );
    let dets = gen.generate(SimTime::ZERO, SimDuration::from_hours(24 * days));
    let buckets = (days * 24 * 12) as usize;
    let mut counts = vec![0.0f64; buckets];
    for d in dets {
        let idx = (d.timestamp.as_secs() / bucket.as_secs_f64() as u64) as usize;
        if idx < buckets {
            counts[idx] += 1.0;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (SimTime::ZERO + bucket * i as u64, c))
        .collect()
}

fn main() {
    let mut win_both = true;
    println!("workload        arm          pushes/day  bytes/day  models");
    for (name, series, tolerance, days) in [
        ("eldercare", eldercare_series(8, 11), 0.1, 8u64),
        ("traffic", traffic_series(8, 13), 2.0, 8u64),
    ] {
        let half_days = days as f64 / 2.0;
        let flat = run_arm(&series, false, tolerance);
        let binned = run_arm(&series, true, tolerance);
        for (arm, r) in [("flat-ar", &flat), ("per-bin-ar", &binned)] {
            println!(
                "{name:<15} {arm:<12} {:>10.1} {:>10.1} {:>7}",
                r.pushes as f64 / half_days,
                r.bytes as f64 / half_days,
                r.models_pushed
            );
        }
        let push_delta = flat.pushes as f64 - binned.pushes as f64;
        let rel = push_delta / flat.pushes.max(1) as f64 * 100.0;
        println!("{name:<15} push-rate win with per-bin AR: {rel:+.1}%\n");
        if binned.pushes >= flat.pushes {
            win_both = false;
        }
    }
    println!(
        "verdict: per-bin AR {} the push-rate win on both workloads",
        if win_both { "HOLDS" } else { "does NOT hold" }
    );
}
