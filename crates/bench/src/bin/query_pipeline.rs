//! Query pipeline vs serialized baseline under downlink loss.
//!
//! `query_pipeline [hours]` — the full experiment (default 6 h query
//! phase over a 24 h warmup, 8 sensors, 16 users, 30% downlink loss),
//! additionally requiring ≥ 8 simultaneously in-flight pulls and
//! pipeline throughput strictly above the serialized-RPC baseline.
//! `query_pipeline --quick` runs the small fixed-seed CI smoke
//! (2 h / 6 h warmup, 4 sensors, 10 users, same 30% loss) and exits
//! non-zero if concurrency (≥ 4 in-flight), termination (p99 finite,
//! zero leaked pending entries), or the throughput win fails.

use presto_bench::experiments::render_json;
use presto_bench::query_pipeline::{query_pipeline, QueryPipelineConfig};
use presto_bench::report::{render_summary, write_bench_json, ArmSummary, BenchJson};

fn main() {
    let arg = std::env::args().nth(1);
    let quick = arg.as_deref() == Some("--quick");
    let cfg = if quick {
        QueryPipelineConfig::quick()
    } else {
        QueryPipelineConfig {
            query_hours: arg.and_then(|a| a.parse().ok()).unwrap_or(6),
            ..QueryPipelineConfig::default()
        }
    };
    let min_in_flight = if quick { 4 } else { 8 };
    let r = query_pipeline(&cfg);
    print!(
        "{}",
        render_json(
            &format!(
                "query pipeline — {} h × {} users over {} sensors, {:.0}% downlink loss",
                cfg.query_hours,
                cfg.users,
                cfg.sensors,
                cfg.loss * 100.0
            ),
            &r
        )
    );
    let bench = BenchJson {
        scenario: "query_pipeline".into(),
        throughput_ratio: r.speedup,
        arms: vec![
            ArmSummary {
                arm: "pipeline".into(),
                submitted: r.submitted,
                answered_ok: r.answered_ok,
                failed: r.failed,
                queries_per_sec: r.pipeline_throughput_qph / 3600.0,
                latency_p50_s: r.pipeline_latency.p50_s,
                latency_p90_s: r.pipeline_latency.p95_s,
                latency_p99_s: r.pipeline_latency.p99_s,
                ..ArmSummary::default()
            },
            ArmSummary {
                arm: "serialized-baseline".into(),
                submitted: r.submitted,
                answered_ok: r.baseline_ok,
                failed: r.baseline_served - r.baseline_ok,
                queries_per_sec: r.baseline_throughput_qph / 3600.0,
                latency_p50_s: r.baseline_latency.p50_s,
                latency_p90_s: r.baseline_latency.p95_s,
                latency_p99_s: r.baseline_latency.p99_s,
                ..ArmSummary::default()
            },
        ],
        metrics: Vec::new(),
        ..BenchJson::default()
    };
    print!("{}", render_summary(&bench));
    let mut failures = Vec::new();
    if let Err(e) = write_bench_json("BENCH_query_pipeline.json", &bench) {
        failures.push(format!("could not write BENCH_query_pipeline.json: {e}"));
    }
    if r.completed != r.submitted {
        failures.push(format!(
            "{} of {} queries never terminated",
            r.submitted - r.completed,
            r.submitted
        ));
    }
    if r.leaked_pending > 0 || r.leaked_rpcs > 0 {
        failures.push(format!(
            "leaked entries: {} pending queries, {} pending RPCs",
            r.leaked_pending, r.leaked_rpcs
        ));
    }
    if r.max_in_flight < min_in_flight {
        failures.push(format!(
            "peak in-flight pulls {} < required {}",
            r.max_in_flight, min_in_flight
        ));
    }
    if !r.pipeline_latency.p99_s.is_finite() || r.pipeline_latency.p99_s <= 0.0 {
        failures.push(format!(
            "p99 latency not finite/real: {}",
            r.pipeline_latency.p99_s
        ));
    }
    if r.pipeline_throughput_qph <= r.baseline_throughput_qph {
        failures.push(format!(
            "pipeline throughput {:.1} q/h did not beat serialized baseline {:.1} q/h",
            r.pipeline_throughput_qph, r.baseline_throughput_qph
        ));
    }
    if !failures.is_empty() {
        eprintln!("query-pipeline {} FAILED:", if quick { "smoke" } else { "run" });
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "query-pipeline {} OK — {} queries, peak {} in-flight, {:.1} vs {:.1} q/h (speedup {:.2}×)",
        if quick { "smoke" } else { "run" },
        r.submitted,
        r.max_in_flight,
        r.pipeline_throughput_qph,
        r.baseline_throughput_qph,
        r.speedup
    );
}
