//! E2: answer-path breakdown and latency vs query tolerance.

use presto_bench::experiments::{e2_latency, render_json};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(5);
    let rows = e2_latency(days, 12);
    print!(
        "{}",
        render_json("E2 — answer path vs query tolerance", &rows)
    );
}
