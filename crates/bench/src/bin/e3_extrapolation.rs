//! E3: extrapolation accuracy vs the push-tolerance guarantee.

use presto_bench::experiments::{e3_extrapolation, render_json};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let rows = e3_extrapolation(days, 13);
    print!(
        "{}",
        render_json("E3 — extrapolation error vs push tolerance", &rows)
    );
}
