//! Failure scenario: 30% bursty fabric loss + a sensor crash/reboot.
//!
//! `failure_scenario [hours]` — defaults to 24 h with a crash at hours
//! 8–10; `failure_scenario --quick` runs the small fixed-seed CI smoke
//! (12 h, crash at 6–8) and exits non-zero if detection, recovery, or
//! the post-recovery ground-truth audit fails;
//! `failure_scenario --quick-correlated` runs the same smoke over
//! correlated (shared Gilbert–Elliott fading) loss with a pinned-bad
//! burst window, additionally requiring the burst to have exercised the
//! downlink retransmission machinery.

use presto_bench::experiments::render_json;
use presto_bench::failure::{failure_scenario, FailureScenarioConfig};

fn main() {
    let arg = std::env::args().nth(1);
    let quick = arg.as_deref() == Some("--quick");
    let quick_correlated = arg.as_deref() == Some("--quick-correlated");
    let cfg = if quick || quick_correlated {
        FailureScenarioConfig {
            hours: 12,
            crash_hours: Some((6, 8)),
            correlated: quick_correlated,
            ..FailureScenarioConfig::default()
        }
    } else {
        FailureScenarioConfig {
            hours: arg.and_then(|a| a.parse().ok()).unwrap_or(24),
            ..FailureScenarioConfig::default()
        }
    };
    let r = failure_scenario(&cfg);
    print!(
        "{}",
        render_json(
            &format!(
                "failure scenario — {} h, {:.0}% {} loss, crash {:?}",
                cfg.hours,
                cfg.loss * 100.0,
                if cfg.correlated {
                    "correlated (shared-fading)"
                } else {
                    "bursty"
                },
                cfg.crash_hours
            ),
            &r
        )
    );
    if quick || quick_correlated {
        let mut failures = Vec::new();
        if r.detection_latency_s.is_nan() || r.detection_latency_s > r.lease_s + 31.0 {
            failures.push(format!(
                "detection {}s exceeds lease {}s",
                r.detection_latency_s, r.lease_s
            ));
        }
        if r.recoveries == 0 {
            failures.push("no recovery replay completed".into());
        }
        if r.window_missing > 0 {
            failures.push(format!("{} silent gaps post-recovery", r.window_missing));
        }
        if r.window_max_err > 0.25 {
            failures.push(format!("post-recovery error {}", r.window_max_err));
        }
        if r.stale_answer_rate >= 0.05 {
            failures.push(format!("stale-answer rate {}", r.stale_answer_rate));
        }
        if quick_correlated && r.downlink_retransmits == 0 {
            failures.push("correlated loss never exercised downlink retransmission".into());
        }
        if !failures.is_empty() {
            eprintln!("failure-scenario smoke FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        eprintln!("failure-scenario smoke OK");
    }
}
