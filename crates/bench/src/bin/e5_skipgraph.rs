//! E5: skip-graph hop scaling with proxy count.

use presto_bench::experiments::{e5_skipgraph, render_json};

fn main() {
    let rows = e5_skipgraph(15);
    print!(
        "{}",
        render_json("E5 — skip-graph search/insert hops vs proxies", &rows)
    );
}
