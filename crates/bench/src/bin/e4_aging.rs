//! E4: graceful aging under storage pressure.

use presto_bench::experiments::{e4_aging, render_json};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(10);
    let rows = e4_aging(days, 14);
    print!(
        "{}",
        render_json("E4 — queryable history with and without aging", &rows)
    );
}
