//! Sliced range-query execution vs monolithic pulls under loss.
//!
//! `slice_scenario [hours]` — the full experiment (default 6 h query
//! phase over a 24 h warmup, 8 sensors, 16 users sharing staggered hot
//! windows, 30% downlink loss). `slice_scenario --quick` runs the
//! small fixed-seed CI smoke (2 h / 8 h warmup, 4 sensors, 8 users,
//! same loss) and exits non-zero if the slice cache fails to absorb
//! shared reads (hit rate must beat the monolithic arm's reply cache),
//! answered throughput drops below the monolithic arm, any answer is
//! stale-confident, or anything leaks.

use presto_bench::experiments::render_json;
use presto_bench::report::{render_summary, write_bench_json, BenchJson};
use presto_bench::slice_scenario::{slice_scenario, SliceScenarioConfig};

fn main() {
    let arg = std::env::args().nth(1);
    let quick = arg.as_deref() == Some("--quick");
    let cfg = if quick {
        SliceScenarioConfig::quick()
    } else {
        SliceScenarioConfig {
            query_hours: arg.and_then(|a| a.parse().ok()).unwrap_or(6),
            ..SliceScenarioConfig::default()
        }
    };
    let r = slice_scenario(&cfg);
    print!(
        "{}",
        render_json(
            &format!(
                "sliced execution — {} h × {} users over {} sensors, {:.0}% downlink loss",
                cfg.query_hours,
                cfg.users,
                cfg.sensors,
                cfg.loss * 100.0
            ),
            &r
        )
    );
    let bench = BenchJson {
        scenario: "slice".into(),
        throughput_ratio: r.throughput_ratio,
        arms: vec![
            r.sliced.summarize("sliced"),
            r.monolithic.summarize("monolithic"),
        ],
        metrics: r
            .sliced
            .metrics
            .iter()
            .map(|(key, value)| presto_bench::report::MetricLine {
                key: key.clone(),
                value: *value,
            })
            .collect(),
        timeline: r.sliced.timeline.clone(),
        incidents: r.sliced.incidents.clone(),
    };
    print!("{}", render_summary(&bench));
    let mut failures = Vec::new();
    if let Err(e) = write_bench_json("BENCH_slice.json", &bench) {
        failures.push(format!("could not write BENCH_slice.json: {e}"));
    }
    for (label, arm) in [("sliced", &r.sliced), ("monolithic", &r.monolithic)] {
        if arm.completed != arm.submitted {
            failures.push(format!(
                "({label}) {} of {} queries never terminated",
                arm.submitted - arm.completed,
                arm.submitted
            ));
        }
        if arm.stale_confident > 0 {
            failures.push(format!(
                "({label}) {} stale-confident answers",
                arm.stale_confident
            ));
        }
        if arm.answer_age_missing > 0 {
            failures.push(format!(
                "({label}) {} Ok answers missing the age stamp",
                arm.answer_age_missing
            ));
        }
        if arm.trace_bad > 0 || arm.trace_orphans > 0 {
            failures.push(format!(
                "({label}) malformed traces: {} bad, {} orphans",
                arm.trace_bad, arm.trace_orphans
            ));
        }
        if arm.leaked_pending > 0 || arm.leaked_rpcs > 0 {
            failures.push(format!(
                "({label}) leaked entries: {} pending queries, {} pending RPCs",
                arm.leaked_pending, arm.leaked_rpcs
            ));
        }
        if !arm.incidents.is_empty() || arm.incidents_unattributed > 0 {
            failures.push(format!(
                "({label}) clean run logged {} watchdog incidents ({} unattributed)",
                arm.incidents.len(),
                arm.incidents_unattributed
            ));
        }
    }
    if r.sliced.timeline.iter().all(|s| s.points.is_empty()) {
        failures.push("presto-scope exported an empty timeline".into());
    }
    if r.sliced.sliced == 0 {
        failures.push("no query took the sliced path".into());
    }
    if r.sliced.cache_hit_rate <= 0.0 {
        failures.push("slice cache never hit".into());
    }
    if r.hit_rate_gain <= 0.0 {
        failures.push(format!(
            "slice hit rate {:.3} did not beat the monolithic reply cache {:.3}",
            r.sliced.cache_hit_rate, r.monolithic.cache_hit_rate
        ));
    }
    if r.throughput_ratio < 1.0 {
        failures.push(format!(
            "sliced throughput {:.1} q/h fell below monolithic {:.1} q/h",
            r.sliced.throughput_qph, r.monolithic.throughput_qph
        ));
    }
    if !failures.is_empty() {
        eprintln!("slice {} FAILED:", if quick { "smoke" } else { "run" });
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "slice {} OK — {} queries, hit rate {:.3} vs {:.3}, throughput ratio {:.2}×",
        if quick { "smoke" } else { "run" },
        r.sliced.submitted,
        r.sliced.cache_hit_rate,
        r.monolithic.cache_hit_rate,
        r.throughput_ratio
    );
}
