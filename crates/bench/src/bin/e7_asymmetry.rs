//! E7: model build/check asymmetry.

use presto_bench::experiments::{e7_asymmetry, render_json};

fn main() {
    let rows = e7_asymmetry(17);
    print!(
        "{}",
        render_json("E7 — proxy train cycles vs sensor check cycles", &rows)
    );
}
