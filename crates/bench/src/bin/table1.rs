//! Regenerates Table 1: the quantified architecture comparison.
//!
//! Usage: `cargo run --release -p presto-bench --bin table1 [days] [sensors]`

use presto_baselines::DriverConfig;
use presto_bench::table1::{check_shape, generate, render, rows};

fn main() {
    let days = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);
    let sensors = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let cfg = DriverConfig {
        days,
        sensors,
        ..DriverConfig::default()
    };
    let reports = generate(&cfg);
    print!("{}", render(&reports));
    match check_shape(&reports) {
        Ok(()) => println!("\nshape check: OK (PRESTO: streaming-class latency, direct-class energy, PAST + prediction)"),
        Err(e) => println!("\nshape check: FAILED — {e}"),
    }
    println!("\nJSON:\n{}", presto_bench::to_json(&rows(&reports)));
}
