//! Split-brain partition over the fleet mesh: honesty under a
//! healed network cut.
//!
//! `partition_scenario [hours]` — the full experiment (default 2 h
//! query phase over a 16 h warmup, 3 proxies × 2 sensors, 30% downlink
//! loss, the last proxy cut from the mesh 30 min in for 40 min, then
//! healed). `partition_scenario --quick` runs the same fixed-seed
//! configuration as the CI smoke and exits non-zero unless, across the
//! cut + heal cycle: no sensor's home uplink is ever driven by two
//! proxies in one epoch, zero stale-confident answers appear, every
//! real answer carries an explicit serve-time age, the minority proxy
//! fences and is later re-admitted through a quorum-confirmed rebirth,
//! the partitioned arm keeps at least half the no-partition arm's
//! answered throughput, and every leak probe reads zero after drain.

use presto_bench::experiments::render_json;
use presto_bench::partition::{partition_scenario, PartitionScenarioConfig};
use presto_bench::report::{render_summary, write_bench_json, BenchJson, MetricLine};

fn main() {
    let arg = std::env::args().nth(1);
    let quick = arg.as_deref() == Some("--quick");
    let cfg = if quick {
        PartitionScenarioConfig::quick()
    } else {
        PartitionScenarioConfig {
            query_hours: arg.and_then(|a| a.parse().ok()).unwrap_or(2),
            ..PartitionScenarioConfig::default()
        }
    };
    let r = partition_scenario(&cfg);
    print!(
        "{}",
        render_json(
            &format!(
                "partition scenario — {} proxies × {} sensors, {:.0}% loss, \
                 proxy {} cut {}–{} min into the phase",
                cfg.proxies,
                cfg.sensors_per_proxy,
                cfg.loss * 100.0,
                r.minority,
                cfg.cut_minutes.0,
                cfg.cut_minutes.0 + cfg.cut_minutes.1
            ),
            &r
        )
    );
    let bench = BenchJson {
        scenario: "partition".into(),
        throughput_ratio: r.throughput_ratio,
        arms: vec![
            r.with_partition.summarize("with-partition"),
            r.without_partition.summarize("no-partition"),
        ],
        metrics: r
            .with_partition
            .metrics
            .iter()
            .map(|(k, v)| MetricLine {
                key: k.clone(),
                value: *v,
            })
            .collect(),
        timeline: r.with_partition.timeline.clone(),
        incidents: r.with_partition.incidents.clone(),
    };
    print!("{}", render_summary(&bench));
    let mut failures = Vec::new();
    if let Err(e) = write_bench_json("BENCH_partition.json", &bench) {
        failures.push(format!("could not write BENCH_partition.json: {e}"));
    }
    for (label, arm) in [
        ("with-partition", &r.with_partition),
        ("no-partition", &r.without_partition),
    ] {
        if arm.trace_terminals != arm.submitted || arm.trace_bad > 0 || arm.trace_orphans > 0 {
            failures.push(format!(
                "{label}: trace audit failed ({} terminals for {} submitted, {} malformed, {} orphans)",
                arm.trace_terminals, arm.submitted, arm.trace_bad, arm.trace_orphans
            ));
        }
        if arm.recorder_chains_bad > 0 {
            failures.push(format!(
                "{label}: flight recorder lost or malformed {} failed-query cause chains",
                arm.recorder_chains_bad
            ));
        }
        if arm.completed != arm.submitted {
            failures.push(format!(
                "{label}: {} of {} queries never terminated",
                arm.submitted - arm.completed,
                arm.submitted
            ));
        }
        if arm.double_served_epochs > 0 {
            failures.push(format!(
                "{label}: {} epochs with a double-served or mis-owned uplink",
                arm.double_served_epochs
            ));
        }
        if arm.stale_confident > 0 {
            failures.push(format!(
                "{label}: {} stale-confident answers",
                arm.stale_confident
            ));
        }
        if arm.answer_age_missing > 0 {
            failures.push(format!(
                "{label}: {} real answers missing answer_age",
                arm.answer_age_missing
            ));
        }
        let leaks =
            arm.leaked_router + arm.leaked_pipeline + arm.leaked_rpcs + arm.leaked_mesh;
        if leaks > 0 {
            failures.push(format!(
                "{label}: leaked entries after drain (router {}, pipeline {}, rpcs {}, mesh {})",
                arm.leaked_router, arm.leaked_pipeline, arm.leaked_rpcs, arm.leaked_mesh
            ));
        }
    }
    let w = &r.with_partition;
    if w.fenced_epochs == 0 {
        failures.push("minority proxy never fenced during the cut".into());
    }
    if w.deaths_declared != 1 {
        failures.push(format!(
            "expected exactly one quorum death declaration, saw {}",
            w.deaths_declared
        ));
    }
    if w.rejoins != 1 {
        failures.push(format!(
            "heal did not re-admit the minority (rejoins {})",
            w.rejoins
        ));
    }
    if w.rehomed < cfg.sensors_per_proxy as u64 {
        failures.push(format!(
            "declaration re-homed only {} sensors",
            w.rehomed
        ));
    }
    if r.without_partition.fenced_epochs > 0 || r.without_partition.deaths_declared > 0 {
        failures.push("clean arm fenced or declared a proxy".into());
    }
    // presto-scope acceptance: the injected cut must surface as at
    // least one incident blaming the mesh partition, nothing may fire
    // outside a fault window, and the clean arm must stay silent.
    if w.incidents_mesh_attributed == 0 {
        failures.push(format!(
            "no watchdog incident attributed to the mesh cut ({} incidents total)",
            w.incidents.len()
        ));
    }
    for (label, arm) in [
        ("with-partition", &r.with_partition),
        ("no-partition", &r.without_partition),
    ] {
        if arm.incidents_unattributed > 0 {
            failures.push(format!(
                "{label}: {} watchdog incidents outside any fault window",
                arm.incidents_unattributed
            ));
        }
    }
    if !r.without_partition.incidents.is_empty() {
        failures.push(format!(
            "clean arm logged {} watchdog incidents",
            r.without_partition.incidents.len()
        ));
    }
    if w.timeline.iter().all(|s| s.points.is_empty()) {
        failures.push("presto-scope exported an empty timeline".into());
    }
    if r.throughput_ratio < 0.5 {
        failures.push(format!(
            "split brain cost more than half the throughput: {:.1} vs {:.1} q/h ({:.2}×)",
            w.throughput_qph, r.without_partition.throughput_qph, r.throughput_ratio
        ));
    }
    if !failures.is_empty() {
        eprintln!(
            "partition-scenario {} FAILED:",
            if quick { "smoke" } else { "run" }
        );
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "partition-scenario {} OK — {} queries, fenced {} epochs, {} fenced refusals, \
         {} re-homed, rejoined, {:.1} vs {:.1} q/h ({:.2}×), age p50 {:.0} s, \
         {} incidents ({} mesh-attributed)",
        if quick { "smoke" } else { "run" },
        w.submitted,
        w.fenced_epochs,
        w.failed_fenced,
        w.rehomed,
        w.throughput_qph,
        r.without_partition.throughput_qph,
        r.throughput_ratio,
        w.answer_age_p50_s,
        w.incidents.len(),
        w.incidents_mesh_attributed
    );
}
