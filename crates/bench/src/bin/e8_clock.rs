//! E8: timestamp correction across drifting sensor clocks.

use presto_bench::experiments::{e8_clock, render_json};

fn main() {
    let rows = e8_clock(18);
    print!(
        "{}",
        render_json(
            "E8 — ordering violations before/after clock correction",
            &rows
        )
    );
}
