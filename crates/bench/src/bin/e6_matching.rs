//! E6: query–sensor matching — latency bound vs energy.

use presto_bench::experiments::{e6_matching, render_json};

fn main() {
    let rows = e6_matching(16);
    print!(
        "{}",
        render_json("E6 — matched duty cycle: energy vs latency bound", &rows)
    );
}
