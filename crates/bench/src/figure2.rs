//! Figure 2 reproduction: total energy cost vs batching interval.
//!
//! Paper series, identical workload for every arm:
//!
//! * Batched Push w/ Wavelet Denoising
//! * Batched Push w/o Compression
//! * Value-Driven Push (Delta = 1)
//! * Value-Driven Push (Delta = 2)
//!
//! X axis: batching interval in minutes, the paper's ×2 ladder
//! `16.5 … 2116`. Y axis: total push energy in joules over the whole
//! trace. The value-driven arms do not batch, so they appear as flat
//! lines — exactly as in the paper.

use presto_baselines::valuepush::{energy_of_policy, PolicyEnergy};
use presto_sensor::PushPolicy;
use presto_sim::SimDuration;
use presto_wavelet::CodecParams;
use presto_workloads::{LabDeployment, LabParams};
use serde::Serialize;

/// The paper's batching-interval ladder, minutes.
pub const INTERVALS_MIN: [f64; 8] = [16.5, 33.0, 66.0, 132.0, 264.0, 529.0, 1058.0, 2116.0];

/// Sweep configuration.
#[derive(Clone, Debug)]
pub struct Figure2Config {
    /// Trace duration in days (the Intel Lab trace spans ~36 days).
    pub days: u64,
    /// Workload seed.
    pub seed: u64,
    /// Frame loss probability.
    pub loss: f64,
    /// Workload parameters.
    pub lab: LabParams,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            days: 36,
            seed: 2005,
            loss: 0.0,
            lab: LabParams {
                // Rare events excluded: Figure 2 studies steady-state
                // push energy on the temperature trace.
                events_per_day: 0.0,
                ..LabParams::default()
            },
        }
    }
}

/// One x-axis point of the figure.
#[derive(Clone, Debug, Serialize)]
pub struct Figure2Row {
    /// Batching interval, minutes.
    pub interval_min: f64,
    /// Batched push with wavelet denoising, joules.
    pub batched_wavelet_j: f64,
    /// Batched push without compression, joules.
    pub batched_raw_j: f64,
    /// Value-driven push Δ=1, joules (flat across intervals).
    pub value_delta1_j: f64,
    /// Value-driven push Δ=2, joules (flat across intervals).
    pub value_delta2_j: f64,
}

/// The full figure: rows plus arm metadata.
#[derive(Clone, Debug, Serialize)]
pub struct Figure2Data {
    /// Per-interval rows.
    pub rows: Vec<Figure2Row>,
    /// Idle-listening energy over the trace (identical across arms).
    pub listen_baseline_j: f64,
    /// Trace length in samples.
    pub samples: usize,
}

/// Runs the sweep.
pub fn generate(cfg: &Figure2Config) -> Figure2Data {
    let trace = LabDeployment::single_sensor_trace(
        cfg.lab.clone(),
        cfg.seed,
        SimDuration::from_days(cfg.days),
    );
    let samples = trace.len();

    let run =
        |policy: PushPolicy| -> PolicyEnergy { energy_of_policy(&trace, policy, cfg.loss, 1) };

    // Value-driven arms are interval-independent: run once.
    let v1 = run(PushPolicy::ValueDriven { delta: 1.0 });
    let v2 = run(PushPolicy::ValueDriven { delta: 2.0 });
    let listen_baseline_j = v1.radio_j - v1.push_j;

    let rows = INTERVALS_MIN
        .iter()
        .map(|&mins| {
            let interval = SimDuration::from_mins_f64(mins);
            let raw = run(PushPolicy::Batched {
                interval,
                compression: None,
            });
            let wav = run(PushPolicy::Batched {
                interval,
                compression: Some(CodecParams::denoising()),
            });
            Figure2Row {
                interval_min: mins,
                batched_wavelet_j: wav.push_j,
                batched_raw_j: raw.push_j,
                value_delta1_j: v1.push_j,
                value_delta2_j: v2.push_j,
            }
        })
        .collect();

    Figure2Data {
        rows,
        listen_baseline_j,
        samples,
    }
}

/// Renders the figure as an aligned text table (the bench binary's
/// human-readable output).
pub fn render(data: &Figure2Data) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 2 — total push energy (J) over {} samples; idle listening baseline {:.1} J (identical across arms)\n",
        data.samples, data.listen_baseline_j
    ));
    out.push_str(&format!(
        "{:>12} {:>22} {:>22} {:>22} {:>22}\n",
        "interval min",
        "batched+wavelet J",
        "batched raw J",
        "value-driven d=1 J",
        "value-driven d=2 J"
    ));
    for r in &data.rows {
        out.push_str(&format!(
            "{:>12.1} {:>22.1} {:>22.1} {:>22.1} {:>22.1}\n",
            r.interval_min,
            r.batched_wavelet_j,
            r.batched_raw_j,
            r.value_delta1_j,
            r.value_delta2_j
        ));
    }
    out
}

/// Checks the figure's qualitative shape (used by tests and asserted by
/// the binary): batched arms decrease monotonically with interval,
/// wavelet ≤ raw everywhere, value-driven arms flat with Δ=1 > Δ=2, and
/// value-driven lines sit above the batched curves.
pub fn check_shape(data: &Figure2Data) -> Result<(), String> {
    let rows = &data.rows;
    if rows.len() < 2 {
        return Err("not enough rows".into());
    }
    for w in rows.windows(2) {
        if w[1].batched_raw_j > w[0].batched_raw_j * 1.02 {
            return Err(format!(
                "batched raw not decreasing: {} -> {}",
                w[0].batched_raw_j, w[1].batched_raw_j
            ));
        }
        if w[1].batched_wavelet_j > w[0].batched_wavelet_j * 1.02 {
            return Err(format!(
                "batched wavelet not decreasing: {} -> {}",
                w[0].batched_wavelet_j, w[1].batched_wavelet_j
            ));
        }
    }
    for r in rows {
        if r.batched_wavelet_j > r.batched_raw_j {
            return Err(format!(
                "wavelet above raw at {} min: {} vs {}",
                r.interval_min, r.batched_wavelet_j, r.batched_raw_j
            ));
        }
        if r.value_delta1_j <= r.value_delta2_j {
            return Err("delta=1 not above delta=2".into());
        }
        if r.value_delta1_j < r.batched_raw_j {
            return Err(format!(
                "value-driven d=1 below batched raw at {} min",
                r.interval_min
            ));
        }
    }
    // Compression gap should widen with batch size (paper's claim (b)).
    let first_ratio = rows[0].batched_raw_j / rows[0].batched_wavelet_j.max(1e-9);
    let last_ratio =
        rows[rows.len() - 1].batched_raw_j / rows[rows.len() - 1].batched_wavelet_j.max(1e-9);
    if last_ratio < first_ratio {
        return Err(format!(
            "compression gain not widening: {first_ratio:.2} -> {last_ratio:.2}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_has_paper_shape() {
        // A 6-day sweep is fast enough for CI while preserving the shape.
        let data = generate(&Figure2Config {
            days: 6,
            ..Figure2Config::default()
        });
        check_shape(&data).unwrap();
        assert_eq!(data.rows.len(), INTERVALS_MIN.len());
    }

    #[test]
    fn render_mentions_all_arms() {
        let data = generate(&Figure2Config {
            days: 2,
            ..Figure2Config::default()
        });
        let s = render(&data);
        assert!(s.contains("wavelet"));
        assert!(s.contains("value-driven d=1"));
    }
}
