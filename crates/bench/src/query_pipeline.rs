//! The query-pipeline experiment: one proxy absorbing heavy multi-user
//! query traffic under downlink loss.
//!
//! Two identically seeded deployments run the same seeded multi-user
//! workload (NOW / PAST / aggregate arrivals with shared hot windows):
//!
//! * **pipeline** — queries enter the proxy's asynchronous pipeline;
//!   precision misses enqueue and overlap across epochs, identical
//!   windows coalesce into one pull, repeat spans come from the shared
//!   pull-reply cache, and every completion (or honest deadline
//!   failure) is recorded with its per-query latency;
//! * **serialized baseline** — the same arrivals served through the
//!   blocking `UnifiedStore` path one at a time: each RPC's entire
//!   attempt/timeout schedule occupies the proxy, so later queries
//!   queue behind it (the pre-pipeline behavior).
//!
//! Both drivers run the same horizon plus the same drain window, so
//! throughput compares answered-query counts over equal wall-clock.
//! The report carries p50/p95/p99 latency for both, the pipeline's
//! peak in-flight pull count, coalescing and reply-cache counters, and
//! the leak probes the CI smoke asserts on.

use std::collections::VecDeque;

use presto_core::{PipelineAnswer, PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto_net::LossProcess;
use presto_proxy::AnswerSource;
use presto_sim::metrics::Summary;
use presto_sim::{QueryArrival, QueryKind, QueryLoad, QueryLoadConfig, SimDuration, SimTime};
use serde::Serialize;

/// Experiment parameters.
#[derive(Clone, Debug)]
pub struct QueryPipelineConfig {
    /// Warmup (archive + model build) before the query phase, hours.
    pub warmup_hours: u64,
    /// Query-phase length, hours.
    pub query_hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Sensors under the single proxy.
    pub sensors: usize,
    /// Downlink loss (Bernoulli, request and reply paths).
    pub loss: f64,
    /// Concurrent users.
    pub users: usize,
    /// Mean queries per user per hour.
    pub queries_per_user_per_hour: f64,
    /// Query tolerance (tight, so precision misses force pulls).
    pub tolerance: f64,
}

impl Default for QueryPipelineConfig {
    fn default() -> Self {
        QueryPipelineConfig {
            warmup_hours: 24,
            query_hours: 6,
            seed: 2005,
            sensors: 8,
            loss: 0.3,
            users: 16,
            queries_per_user_per_hour: 60.0,
            tolerance: 0.05,
        }
    }
}

impl QueryPipelineConfig {
    /// The small fixed-seed configuration the CI smoke runs.
    pub fn quick() -> Self {
        QueryPipelineConfig {
            warmup_hours: 6,
            query_hours: 2,
            sensors: 4,
            users: 10,
            ..QueryPipelineConfig::default()
        }
    }
}

/// Latency percentiles in seconds.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct LatencyProfile {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Mean.
    pub mean_s: f64,
}

impl LatencyProfile {
    fn of(s: &Summary) -> Self {
        LatencyProfile {
            p50_s: s.median(),
            p95_s: s.p95(),
            p99_s: s.quantile(0.99),
            mean_s: s.mean(),
        }
    }
}

/// Experiment result.
#[derive(Clone, Debug, Serialize)]
pub struct QueryPipelineReport {
    /// Configured downlink loss.
    pub configured_loss: f64,
    /// Queries emitted by the workload.
    pub submitted: u64,
    /// Pipeline: queries completed (any outcome).
    pub completed: u64,
    /// Pipeline: completions with a real answer (non-Failed).
    pub answered_ok: u64,
    /// Pipeline: honest deadline failures.
    pub failed: u64,
    /// Completions straight from cache/model fast paths.
    pub completed_fast: u64,
    /// Completions from the shared pull-reply cache (no radio).
    pub completed_cached: u64,
    /// Queries that coalesced onto an in-flight pull.
    pub coalesced: u64,
    /// Pull RPCs issued by the pipeline.
    pub rpcs_issued: u64,
    /// Peak simultaneously in-flight pulls at the proxy.
    pub max_in_flight: u64,
    /// Shared-cache hit / miss counters.
    pub reply_cache_hits: u64,
    /// Lookups that went to the radio.
    pub reply_cache_misses: u64,
    /// Leak probes after the drain window (must both be zero).
    pub leaked_pending: u64,
    /// Leaked pending-RPC table entries after the drain window.
    pub leaked_rpcs: u64,
    /// Pipeline answered-query throughput over the phase, queries/hour.
    pub pipeline_throughput_qph: f64,
    /// Pipeline per-query latency percentiles.
    pub pipeline_latency: LatencyProfile,
    /// Baseline: queries served within the same phase.
    pub baseline_served: u64,
    /// Baseline: served with a real answer.
    pub baseline_ok: u64,
    /// Baseline: arrivals still queued when the phase ended.
    pub baseline_unserved: u64,
    /// Baseline throughput over the same phase, queries/hour.
    pub baseline_throughput_qph: f64,
    /// Baseline per-query latency percentiles (queue wait + RPC).
    pub baseline_latency: LatencyProfile,
    /// `pipeline_throughput_qph / baseline_throughput_qph`.
    pub speedup: f64,
}

fn system(cfg: &QueryPipelineConfig) -> PrestoSystem {
    let mut sys_cfg = SystemConfig {
        proxies: 1,
        sensors_per_proxy: cfg.sensors,
        seed: cfg.seed,
        lab: presto_workloads::LabParams {
            events_per_day: 0.0,
            ..presto_workloads::LabParams::default()
        },
        ..SystemConfig::default()
    };
    if cfg.loss > 0.0 {
        sys_cfg.reliability.downlink.request_loss = LossProcess::Bernoulli(cfg.loss);
        sys_cfg.reliability.downlink.reply_loss = LossProcess::Bernoulli(cfg.loss);
    }
    PrestoSystem::new(sys_cfg)
}

fn load(cfg: &QueryPipelineConfig) -> QueryLoad {
    QueryLoad::new(
        QueryLoadConfig {
            users: cfg.users,
            queries_per_user_per_hour: cfg.queries_per_user_per_hour,
            max_age: SimDuration::from_hours(cfg.warmup_hours.min(12)),
            tolerances: vec![cfg.tolerance],
            seed: cfg.seed ^ 0x51_0AD,
            ..QueryLoadConfig::default()
        },
        cfg.sensors,
    )
}

fn to_store_query(a: &QueryArrival, tolerance: f64) -> StoreQuery {
    let sensor = a.sensor_slot as u16;
    match a.kind {
        QueryKind::Now => StoreQuery::Now { sensor, tolerance },
        QueryKind::Past => StoreQuery::Past {
            sensor,
            from: a.from,
            to: a.to,
            tolerance: a.tolerance,
        },
        QueryKind::Aggregate => StoreQuery::Aggregate {
            sensor,
            from: a.from,
            to: a.to,
            op: presto_sensor::AggregateOp::Mean,
        },
    }
}

/// Runs the experiment.
pub fn query_pipeline(cfg: &QueryPipelineConfig) -> QueryPipelineReport {
    let epoch = SystemConfig::default().lab.epoch;
    let query_epochs = SimDuration::from_hours(cfg.query_hours).div_duration(epoch);
    // Drain: one pipeline deadline past the last arrival, plus slack.
    let deadline = SystemConfig::default().proxy.pipeline.deadline;
    let drain_epochs = deadline.div_duration(epoch) + 4;
    let phase_hours =
        (query_epochs + drain_epochs) as f64 * epoch.as_secs_f64() / 3600.0;

    // ── pipeline run ────────────────────────────────────────────────
    let mut sys = system(cfg);
    sys.run(SimDuration::from_hours(cfg.warmup_hours));
    let mut gen = load(cfg);
    let mut latencies = Summary::new();
    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut answered_ok = 0u64;
    for e in 0..query_epochs + drain_epochs {
        if e < query_epochs {
            let t = sys.now();
            for a in gen.step(t, epoch) {
                if sys.submit_query(to_store_query(&a, cfg.tolerance)).is_some() {
                    submitted += 1;
                }
            }
        }
        sys.step_epoch();
        for (_, c) in sys.take_completed_queries() {
            completed += 1;
            // The answer's latency is already end-to-end: pull and
            // deadline completions fold the submit→complete wait in.
            latencies.record(c.answer.latency().as_secs_f64());
            let failed = match &c.answer {
                PipelineAnswer::Scalar(a) => a.source == AnswerSource::Failed,
                PipelineAnswer::Series(a) => a.source == AnswerSource::Failed,
            };
            if !failed {
                answered_ok += 1;
            }
        }
    }
    let ps = sys.pipeline_stats();
    let cache = sys.proxies[0].pipeline().reply_cache();
    let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
    let leaked_pending = sys.pipeline_pending_total() as u64;
    let leaked_rpcs = sys.async_in_flight_total() as u64;

    // ── serialized baseline ─────────────────────────────────────────
    // Identical deployment and workload; each query's blocking RPC
    // occupies the proxy for its full latency, so later arrivals queue.
    let mut base = system(cfg);
    base.run(SimDuration::from_hours(cfg.warmup_hours));
    let mut base_gen = load(cfg);
    let mut fifo: VecDeque<(SimTime, StoreQuery)> = VecDeque::new();
    let mut base_lat = Summary::new();
    let mut base_served = 0u64;
    let mut base_ok = 0u64;
    let mut server_free_at = base.now();
    for e in 0..query_epochs + drain_epochs {
        let t = base.now();
        if e < query_epochs {
            for a in base_gen.step(t, epoch) {
                fifo.push_back((t, to_store_query(&a, cfg.tolerance)));
            }
        }
        while let Some(&(arrived, q)) = fifo.front() {
            if server_free_at > t {
                break;
            }
            fifo.pop_front();
            let r = UnifiedStore::new(&mut base).query(q);
            let done_at = server_free_at.max(t) + r.latency;
            server_free_at = done_at;
            base_lat.record((done_at - arrived).as_secs_f64());
            base_served += 1;
            if r.source != AnswerSource::Failed {
                base_ok += 1;
            }
        }
        base.step_epoch();
    }

    let pipeline_throughput_qph = answered_ok as f64 / phase_hours;
    let baseline_throughput_qph = base_ok as f64 / phase_hours;
    QueryPipelineReport {
        configured_loss: cfg.loss,
        submitted,
        completed,
        answered_ok,
        failed: ps.failed,
        completed_fast: ps.completed_fast,
        completed_cached: ps.completed_cached,
        coalesced: ps.coalesced,
        rpcs_issued: ps.rpcs_issued,
        max_in_flight: ps.max_in_flight,
        reply_cache_hits: cache_hits,
        reply_cache_misses: cache_misses,
        leaked_pending,
        leaked_rpcs,
        pipeline_throughput_qph,
        pipeline_latency: LatencyProfile::of(&latencies),
        baseline_served: base_served,
        baseline_ok: base_ok,
        baseline_unserved: fifo.len() as u64,
        baseline_throughput_qph,
        baseline_latency: LatencyProfile::of(&base_lat),
        speedup: if baseline_throughput_qph > 0.0 {
            pipeline_throughput_qph / baseline_throughput_qph
        } else {
            f64::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_pipeline_beats_serialized_baseline_under_loss() {
        let r = query_pipeline(&QueryPipelineConfig::quick());
        assert!(r.submitted > 50, "workload too small: {r:?}");
        assert_eq!(
            r.completed, r.submitted,
            "every query must terminate: {r:?}"
        );
        assert_eq!(r.leaked_pending, 0, "leaked pending queries: {r:?}");
        assert_eq!(r.leaked_rpcs, 0, "leaked pending-RPC entries: {r:?}");
        assert!(
            r.max_in_flight >= 4,
            "expected overlapping in-flight pulls: {r:?}"
        );
        assert!(
            r.pipeline_latency.p99_s.is_finite() && r.pipeline_latency.p99_s > 0.0,
            "p99 must be finite and real: {r:?}"
        );
        assert!(
            r.pipeline_throughput_qph > r.baseline_throughput_qph,
            "pipeline must beat the serialized baseline: {r:?}"
        );
        assert!(r.coalesced > 0, "hot windows never coalesced: {r:?}");
    }
}
