//! The failure-scenario experiment: bursty loss + sensor crash/reboot.
//!
//! Runs the assembled three-tier system over a lossy fabric with an
//! injected sensor crash, probing queries throughout, and reports the
//! three numbers that summarize reliability:
//!
//! * **detection latency** — crash onset → proxy first grades the
//!   sensor non-Live (bounded by the heartbeat lease);
//! * **recovery latency** — gap detected → archive replay completed;
//! * **stale-answer rate** — fraction of probes answered *confidently
//!   but wrongly* (error above the query tolerance while the reported
//!   sigma claimed tolerance), the failure mode the liveness widening
//!   exists to eliminate.
//!
//! After the run, every archived sample in the affected window is
//! checked against the proxy's post-recovery PAST answer: a missing
//! sample is a silent gap, a large deviation a corrupted repair.

use presto_core::{PrestoSystem, StoreQuery, SystemConfig, UnifiedStore};
use presto_net::{GilbertElliott, LossProcess};
use presto_reliability::{Health, LivenessConfig, ReliabilityConfig};
use presto_sim::{EnergyLedger, FaultPlan, SimDuration, SimTime};
use serde::Serialize;

/// Scenario parameters.
#[derive(Clone, Debug)]
pub struct FailureScenarioConfig {
    /// Run length, hours.
    pub hours: u64,
    /// Master seed.
    pub seed: u64,
    /// Sensors under the single proxy.
    pub sensors: usize,
    /// Long-run fabric loss rate (bursty Gilbert–Elliott); 0 disables.
    pub loss: f64,
    /// Correlated loss: instead of independent per-channel chains, every
    /// channel near the proxy — uplinks, acks, downlink requests and
    /// replies — samples one shared Gilbert–Elliott fading state, and a
    /// deterministic burst window pins it bad mid-run.
    pub correlated: bool,
    /// Crash window of sensor 0, hours from start, `None` for no crash.
    pub crash_hours: Option<(u64, u64)>,
    /// NOW-probe interval.
    pub probe_every: SimDuration,
    /// NOW-probe tolerance.
    pub probe_tolerance: f64,
}

impl Default for FailureScenarioConfig {
    fn default() -> Self {
        FailureScenarioConfig {
            hours: 24,
            seed: 2005,
            sensors: 4,
            loss: 0.3,
            correlated: false,
            crash_hours: Some((8, 10)),
            probe_every: SimDuration::from_mins(5),
            probe_tolerance: 1.0,
        }
    }
}

/// Scenario result.
#[derive(Clone, Debug, Serialize)]
pub struct FailureReport {
    /// Long-run loss the fabric channel was configured for.
    pub configured_loss: f64,
    /// Messages offered / delivered / permanently dropped by the fabric.
    pub offered: u64,
    /// Deliveries (duplicates included).
    pub delivered: u64,
    /// Messages permanently dropped.
    pub dropped: u64,
    /// Retransmission attempts.
    pub retransmits: u64,
    /// Heartbeats transmitted.
    pub heartbeats: u64,
    /// Crash onset → first non-Live grade, seconds (NaN without crash).
    pub detection_latency_s: f64,
    /// Configured lease (the detection bound), seconds.
    pub lease_s: f64,
    /// Sequence gaps detected.
    pub gaps_detected: u64,
    /// Archive replays completed.
    pub recoveries: u64,
    /// Samples replayed from archives.
    pub samples_replayed: u64,
    /// Mean gap-detection → replay-complete latency, seconds.
    pub recovery_latency_s: f64,
    /// NOW probes issued.
    pub probes: u64,
    /// Probes answered confidently (sigma ≤ tolerance) but wrongly
    /// (error > tolerance).
    pub stale_confident: u64,
    /// `stale_confident / probes`.
    pub stale_answer_rate: f64,
    /// Probes during the outage window that honestly advertised
    /// degraded confidence (sigma > tolerance).
    pub outage_honest: u64,
    /// Query-path pull RPCs issued across proxies.
    pub pulls: u64,
    /// Query-path pull RPCs that failed after channel retries.
    pub pull_failures: u64,
    /// Downlink request retransmissions (loss on the pull path).
    pub downlink_retransmits: u64,
    /// Downlink RPCs that failed outright.
    pub downlink_rpc_failures: u64,
    /// Archived samples in the affected window.
    pub window_archived: u64,
    /// Archived samples missing from the post-recovery PAST answer.
    pub window_missing: u64,
    /// Max |proxy − archive| over matched samples in the window.
    pub window_max_err: f64,
}

/// A bursty chain with the requested stationary loss (bad-state dwell
/// ~15 frames, matching the indoor preset's burstiness).
fn bursty(loss: f64) -> GilbertElliott {
    let loss_good = (loss * 0.15).min(0.05);
    let loss_bad = 0.9;
    // pi_bad solves loss = (1-pi)*lg + pi*lb.
    let pi_bad = ((loss - loss_good) / (loss_bad - loss_good)).clamp(0.01, 0.9);
    let p_bg = 1.0 / 15.0;
    let p_gb = p_bg * pi_bad / (1.0 - pi_bad);
    GilbertElliott {
        p_gb,
        p_bg,
        loss_good,
        loss_bad,
    }
}

/// Runs the scenario.
pub fn failure_scenario(cfg: &FailureScenarioConfig) -> FailureReport {
    let reliability = ReliabilityConfig {
        heartbeat_every: SimDuration::from_mins(2),
        liveness: LivenessConfig {
            lease: SimDuration::from_mins(5),
            dead_after: SimDuration::from_mins(15),
        },
        ..ReliabilityConfig::default()
    };
    let mut sys_cfg = SystemConfig {
        proxies: 1,
        sensors_per_proxy: cfg.sensors,
        seed: cfg.seed,
        reliability,
        lab: presto_workloads::LabParams {
            // Rare events excluded: the stale-answer metric measures
            // reliability under loss, not spike decay inside the
            // cache-freshness window.
            events_per_day: 0.0,
            ..presto_workloads::LabParams::default()
        },
        ..SystemConfig::default()
    };
    if cfg.loss > 0.0 {
        if cfg.correlated {
            // One shared fading state for the whole neighbourhood: the
            // same chain, but bursts now hit every channel (uplink and
            // downlink) at once.
            sys_cfg.reliability.shared_fading = Some(bursty(cfg.loss));
        } else {
            sys_cfg.reliability.fabric.up_loss = LossProcess::Gilbert(bursty(cfg.loss));
            sys_cfg.reliability.fabric.down_loss = LossProcess::Bernoulli(cfg.loss / 3.0);
        }
    }
    let crash = cfg
        .crash_hours
        .map(|(a, b)| (SimTime::from_hours(a), SimTime::from_hours(b)));
    if let Some((down, up)) = crash {
        sys_cfg.faults = FaultPlan::none().with_crash(0, down, up);
    }
    if cfg.correlated {
        // A deterministic 20-minute total-fade burst in the first half,
        // clear of the crash window, so the report always includes a
        // stretch where every pull rides a pinned-bad shared path.
        let burst_at = SimTime::from_hours((cfg.hours / 4).max(1));
        sys_cfg.faults = sys_cfg
            .faults
            .with_shared_burst(burst_at, burst_at + SimDuration::from_mins(20));
    }
    let lease = sys_cfg.reliability.liveness.lease;
    let mut sys = PrestoSystem::new(sys_cfg);

    let epoch = sys.config().lab.epoch;
    let epochs = SimDuration::from_hours(cfg.hours).div_duration(epoch);
    let probe_epochs = cfg.probe_every.div_duration(epoch).max(1);

    let mut detection_at: Option<SimTime> = None;
    let mut probes = 0u64;
    let mut stale_confident = 0u64;
    let mut outage_honest = 0u64;

    for e in 0..epochs {
        sys.step_epoch();
        let t = sys.now();
        if let Some((down, _)) = crash {
            if detection_at.is_none() && t >= down && sys.health(0) != Health::Live {
                detection_at = Some(t);
            }
        }
        if e % probe_epochs == 0 && e > 0 {
            let truth = sys.truth[0];
            let in_outage = crash.is_some_and(|(down, up)| t >= down && t < up);
            let r = UnifiedStore::new(&mut sys).query(StoreQuery::Now {
                sensor: 0,
                tolerance: cfg.probe_tolerance,
            });
            probes += 1;
            let err = (r.value.unwrap_or(f64::NAN) - truth).abs();
            let confident = r.sigma <= cfg.probe_tolerance;
            // "Stale" = confidently wrong: the sigma claimed tolerance
            // while the error exceeded twice it (the 2× slack absorbs
            // the workload's legitimate epoch-to-epoch volatility
            // inside the cache-freshness window).
            if confident && (err.is_nan() || err > cfg.probe_tolerance * 2.0) {
                stale_confident += 1;
            }
            if in_outage && !confident {
                outage_honest += 1;
            }
        }
    }

    // Post-recovery ground-truth audit over the affected window.
    let (win_from, win_to) = match crash {
        Some((down, up)) => (down - SimDuration::from_hours(1), up + SimDuration::from_hours(1)),
        None => (
            SimTime::from_hours(cfg.hours / 2),
            SimTime::from_hours(cfg.hours / 2 + 2),
        ),
    };
    let mut ledger = EnergyLedger::new();
    let archived = sys.nodes[0][0]
        .archive_mut()
        .query_range_fullscan(win_from, win_to, &mut ledger)
        .expect("archive readable");
    let answer = UnifiedStore::new(&mut sys).query(StoreQuery::Past {
        sensor: 0,
        from: win_from,
        to: win_to,
        tolerance: 0.2,
    });
    let mut missing = 0u64;
    let mut max_err = 0.0f64;
    // Answer timestamps pass through the clock corrector, which can
    // shift them by sub-second residuals; match to the nearest series
    // sample within a second rather than requiring exact equality.
    let near = SimDuration::from_secs(1);
    for a in &archived {
        let idx = answer
            .series
            .partition_point(|&(ts, _)| ts < a.timestamp);
        let hit = [idx.checked_sub(1), Some(idx)]
            .into_iter()
            .flatten()
            .filter_map(|i| answer.series.get(i))
            .filter(|&&(ts, _)| {
                let d = if ts >= a.timestamp {
                    ts - a.timestamp
                } else {
                    a.timestamp - ts
                };
                d <= near
            })
            .min_by_key(|&&(ts, _)| {
                if ts >= a.timestamp {
                    (ts - a.timestamp).as_micros()
                } else {
                    (a.timestamp - ts).as_micros()
                }
            });
        match hit {
            Some(&(_, v)) => max_err = max_err.max((v - a.value).abs()),
            None => missing += 1,
        }
    }

    let fs = sys.fabric_stats();
    let rs = sys.recovery_stats();
    let dl = sys.downlink_stats();
    let (pulls, pull_failures) = sys
        .proxies
        .iter()
        .fold((0u64, 0u64), |(a, b), p| {
            (a + p.stats().pulls, b + p.stats().pull_failures)
        });
    let heartbeats: u64 = sys
        .nodes
        .iter()
        .flatten()
        .map(|n| n.stats().heartbeats_sent)
        .sum();
    FailureReport {
        configured_loss: cfg.loss,
        offered: fs.offered,
        delivered: fs.delivered,
        dropped: fs.dropped_retries + fs.dropped_budget,
        retransmits: fs.retransmits,
        heartbeats,
        detection_latency_s: match (crash, detection_at) {
            (Some((down, _)), Some(at)) => (at - down).as_secs_f64(),
            (Some(_), None) => f64::INFINITY,
            (None, _) => f64::NAN,
        },
        lease_s: lease.as_secs_f64(),
        gaps_detected: rs.gaps_detected,
        recoveries: rs.recoveries,
        samples_replayed: rs.samples_replayed,
        recovery_latency_s: sys.gaps.mean_recovery_latency_s(),
        probes,
        stale_confident,
        stale_answer_rate: if probes == 0 {
            0.0
        } else {
            stale_confident as f64 / probes as f64
        },
        outage_honest,
        pulls,
        pull_failures,
        downlink_retransmits: dl.retransmits,
        downlink_rpc_failures: dl.rpc_failures,
        window_archived: archived.len() as u64,
        window_missing: missing,
        window_max_err: max_err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_chain_hits_requested_stationary_loss() {
        for target in [0.1, 0.3, 0.5] {
            let g = bursty(target);
            assert!(
                (g.stationary_loss() - target).abs() < 0.02,
                "target {target}: got {}",
                g.stationary_loss()
            );
        }
    }

    #[test]
    fn quick_scenario_detects_recovers_and_matches_ground_truth() {
        let report = failure_scenario(&FailureScenarioConfig {
            hours: 14,
            crash_hours: Some((6, 8)),
            ..FailureScenarioConfig::default()
        });
        // Failure detected within the lease.
        assert!(
            report.detection_latency_s <= report.lease_s + 31.0,
            "detection {}s exceeds lease {}s",
            report.detection_latency_s,
            report.lease_s
        );
        // The missed span was replayed from the archive.
        assert!(report.recoveries >= 1, "no recovery: {report:?}");
        assert!(report.samples_replayed > 0);
        // Post-recovery answers match the archive: no silent gaps, and
        // matched samples within the recovery codec tolerance class.
        assert_eq!(report.window_missing, 0, "silent gaps: {report:?}");
        assert!(
            report.window_max_err <= 0.25,
            "post-recovery error {}",
            report.window_max_err
        );
        // Confident-but-wrong answers are rare even at 30% bursty loss.
        assert!(
            report.stale_answer_rate < 0.05,
            "stale rate {}",
            report.stale_answer_rate
        );
    }

    #[test]
    fn correlated_scenario_stresses_the_pull_path_without_lying() {
        let report = failure_scenario(&FailureScenarioConfig {
            hours: 14,
            correlated: true,
            crash_hours: Some((6, 8)),
            ..FailureScenarioConfig::default()
        });
        // The shared fade reaches the downlink: pulls retried, and the
        // pinned-bad burst forced some to fail outright.
        assert!(
            report.downlink_retransmits > 0,
            "correlated loss never touched the pull path: {report:?}"
        );
        // Detection and recovery still hold under correlated bursts.
        assert!(
            report.detection_latency_s <= report.lease_s + 31.0,
            "detection {}s exceeds lease {}s",
            report.detection_latency_s,
            report.lease_s
        );
        assert!(report.recoveries >= 1, "no recovery: {report:?}");
        assert_eq!(report.window_missing, 0, "silent gaps: {report:?}");
        // Failures surface honestly rather than as stale confidence.
        assert!(
            report.stale_answer_rate < 0.05,
            "stale rate {}",
            report.stale_answer_rate
        );
    }

    #[test]
    fn lossless_scenario_is_quiet() {
        let report = failure_scenario(&FailureScenarioConfig {
            hours: 6,
            loss: 0.0,
            crash_hours: None,
            ..FailureScenarioConfig::default()
        });
        assert_eq!(report.dropped, 0);
        assert_eq!(report.stale_confident, 0);
        assert_eq!(report.window_missing, 0);
        assert!(report.detection_latency_s.is_nan());
    }
}
