//! Table 1 reproduction: PRESTO vs the related-system families, measured.
//!
//! The paper's Table 1 is qualitative (which system supports which
//! mechanism); this regeneration keeps those columns and adds the
//! measured consequences — energy, latency, error, PAST answerability —
//! on a common workload, which is the comparison the table implies.

use presto_baselines::{direct, driver::render_table, stream, valuepush, ArchReport, DriverConfig};
use presto_core::run_presto;
use serde::Serialize;

/// Serializable row mirror of [`ArchReport`].
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Architecture label.
    pub architecture: String,
    /// Joules per sensor per day.
    pub energy_j_per_day: f64,
    /// Radio joules per sensor per day.
    pub radio_j_per_day: f64,
    /// Mean NOW latency, ms.
    pub now_latency_ms: f64,
    /// p95 NOW latency, ms.
    pub now_latency_p95_ms: f64,
    /// Mean NOW error.
    pub now_error: f64,
    /// Fraction of PAST queries answered.
    pub past_answered: f64,
    /// Supports PAST queries at all.
    pub supports_past: bool,
    /// Uses prediction.
    pub uses_prediction: bool,
}

impl From<&ArchReport> for Table1Row {
    fn from(r: &ArchReport) -> Self {
        Table1Row {
            architecture: r.label.clone(),
            energy_j_per_day: r.sensor_energy_per_day_j,
            radio_j_per_day: r.radio_energy_per_day_j,
            now_latency_ms: r.now_latency_mean_ms,
            now_latency_p95_ms: r.now_latency_p95_ms,
            now_error: r.now_error_mean,
            past_answered: r.past_answered_fraction,
            supports_past: r.supports_past,
            uses_prediction: r.uses_prediction,
        }
    }
}

/// Runs all five architecture arms on the shared workload.
pub fn generate(cfg: &DriverConfig) -> Vec<ArchReport> {
    vec![
        direct::run(cfg),
        stream::run(cfg, true),
        stream::run(cfg, false),
        valuepush::run(cfg, 1.0),
        run_presto(cfg),
    ]
}

/// Human-readable rendering.
pub fn render(reports: &[ArchReport]) -> String {
    let mut s = String::from("Table 1 — architecture comparison on the shared lab workload\n");
    s.push_str(&render_table(reports));
    s
}

/// Serializable rows.
pub fn rows(reports: &[ArchReport]) -> Vec<Table1Row> {
    reports.iter().map(Table1Row::from).collect()
}

/// The qualitative shape the paper's table asserts, checked against the
/// measured rows: PRESTO must combine streaming-class latency with far
/// better energy, and be the only arm with both PAST support and
/// prediction.
pub fn check_shape(reports: &[ArchReport]) -> Result<(), String> {
    let find = |needle: &str| {
        reports
            .iter()
            .find(|r| r.label.contains(needle))
            .ok_or_else(|| format!("missing row {needle}"))
    };
    let presto = find("PRESTO")?;
    let direct = find("direct")?;
    let stream = find("TinyDB")?;
    let value = find("value-push")?;

    if presto.now_latency_mean_ms >= direct.now_latency_mean_ms / 5.0 {
        return Err(format!(
            "PRESTO latency {} not ≪ direct {}",
            presto.now_latency_mean_ms, direct.now_latency_mean_ms
        ));
    }
    if presto.radio_energy_per_day_j >= stream.radio_energy_per_day_j / 2.0 {
        return Err(format!(
            "PRESTO energy {} not ≪ streaming {}",
            presto.radio_energy_per_day_j, stream.radio_energy_per_day_j
        ));
    }
    if !presto.supports_past || !presto.uses_prediction {
        return Err("PRESTO row lost its qualitative properties".into());
    }
    if value.supports_past {
        return Err("value-push should not support PAST".into());
    }
    if presto.past_answered_fraction < 0.8 {
        return Err(format!(
            "PRESTO PAST answerability too low: {}",
            presto.past_answered_fraction
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table_has_paper_shape() {
        let cfg = DriverConfig {
            sensors: 3,
            days: 2,
            ..DriverConfig::default()
        };
        let reports = generate(&cfg);
        assert_eq!(reports.len(), 5);
        check_shape(&reports).unwrap();
        let text = render(&reports);
        assert!(text.contains("PRESTO"));
        assert_eq!(rows(&reports).len(), 5);
    }
}
