//! Extension experiments E1–E8 (see DESIGN.md §4).
//!
//! Each function turns one prose claim from the paper into a measurement
//! on the same substrates the headline reproductions use.

use presto_archive::{ArchiveConfig, ArchiveStore};
use presto_index::{ClockCorrector, DriftClock, SkipGraph, UnifiedView};
use presto_models::{
    ArModel, LinearTrendModel, MarkovModel, ModelKind, Predictor, SeasonalArModel, SeasonalModel,
};
use presto_net::LinkModel;
use presto_reliability::DownlinkChannel;
use presto_proxy::{AnswerSource, PrestoProxy, ProxyConfig, QueryClass, QuerySensorMatcher};
use presto_sensor::{DownlinkMsg, PushPolicy, SensorConfig, SensorNode, UplinkPayload};
use presto_sim::metrics::Summary;
use presto_sim::{EnergyLedger, SimDuration, SimRng, SimTime};
use presto_workloads::{LabDeployment, LabParams, TrafficGen, TrafficParams};
use serde::Serialize;

fn diurnal_history(days: u64, step_mins: u64, seed: u64) -> Vec<(SimTime, f64)> {
    LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            epoch: SimDuration::from_mins(step_mins),
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    )
    .into_iter()
    .map(|r| (r.timestamp, r.value))
    .collect()
}

// ---------------------------------------------------------------------
// E1 — rare events are never missed under model-driven push.
// ---------------------------------------------------------------------

/// One arm of the rare-event experiment.
#[derive(Clone, Debug, Serialize)]
pub struct E1Arm {
    /// Arm label.
    pub arm: String,
    /// Fraction of injected events whose report reached the proxy.
    pub recall: f64,
    /// Sensor push energy over the run, joules.
    pub push_j: f64,
}

/// E1 result.
#[derive(Clone, Debug, Serialize)]
pub struct E1Result {
    /// Injected event count.
    pub events: u64,
    /// The arms.
    pub arms: Vec<E1Arm>,
}

/// Runs E1: model-driven push + event reports vs periodic pull at several
/// periods. Pull arms only see an event if a poll lands inside it.
pub fn e1_rare_events(days: u64, seed: u64) -> E1Result {
    let lab = LabParams {
        events_per_day: 10.0,
        ..LabParams::default()
    };
    let trace = LabDeployment::single_sensor_trace(lab, seed, SimDuration::from_days(days));
    let onsets: Vec<SimTime> = trace
        .windows(2)
        .filter(|w| w[1].event_active && !w[0].event_active)
        .map(|w| w[1].timestamp)
        .collect();
    let event_duration = SimDuration::from_mins(5);
    let mut arms = Vec::new();

    // Arm 1: PRESTO model-driven push with semantic event reports.
    {
        let hist: Vec<(SimTime, f64)> = trace
            .iter()
            .filter(|r| !r.event_active)
            .take(5000)
            .map(|r| (r.timestamp, r.value))
            .collect();
        let (model, _) = SeasonalArModel::train(&hist, 24, 2);
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::ModelDriven { tolerance: 1.0 },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        node.handle_downlink(
            SimTime::ZERO,
            &DownlinkMsg::ModelUpdate {
                kind: ModelKind::SeasonalAr,
                params: model.encode_params(),
            },
            None,
        );
        let mut reported = 0u64;
        let mut was_active = false;
        for r in &trace {
            node.on_sample(r.timestamp, r.value, None);
            if r.event_active
                && !was_active
                && node.on_event(r.timestamp, 1, Vec::new(), None).is_some()
            {
                reported += 1;
            }
            was_active = r.event_active;
        }
        let l = node.ledger();
        arms.push(E1Arm {
            arm: "model-driven push".into(),
            recall: reported as f64 / onsets.len().max(1) as f64,
            push_j: l.category(presto_sim::EnergyCategory::RadioTx),
        });
    }

    // Arms 2..: periodic pull at several periods — an event is caught
    // only if a poll instant falls inside its active window.
    for period_min in [10u64, 30, 120] {
        let period = SimDuration::from_mins(period_min);
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::Silent,
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut proxy = PrestoProxy::new(ProxyConfig::default());
        proxy.register_sensor(0);
        let mut link = DownlinkChannel::perfect();
        let mut caught = 0u64;
        let mut next_poll = SimTime::ZERO;
        let mut qid = 0u64;
        for r in &trace {
            node.on_sample(r.timestamp, r.value, None);
            if r.timestamp >= next_poll {
                next_poll = r.timestamp + period;
                qid += 1;
                let msg = DownlinkMsg::PullRequest {
                    query_id: qid,
                    from: r.timestamp - SimDuration::from_secs(31),
                    to: r.timestamp,
                    tolerance: 0.5,
                };
                let reply = proxy.rpc(r.timestamp, &msg, &mut node, &mut link).reply;
                if let Some(rep) = reply {
                    if let UplinkPayload::PullReply { samples, .. } = &rep.payload {
                        if let Some(last) = samples.last() {
                            // Did the poll land inside any event window?
                            if onsets
                                .iter()
                                .any(|&o| last.t >= o && last.t <= o + event_duration)
                            {
                                caught += 1;
                            }
                        }
                    }
                }
            }
        }
        // Each event is caught at most once.
        let recall = (caught.min(onsets.len() as u64)) as f64 / onsets.len().max(1) as f64;
        arms.push(E1Arm {
            arm: format!("periodic pull ({period_min} min)"),
            recall,
            push_j: node.ledger().category(presto_sim::EnergyCategory::RadioTx),
        });
    }

    E1Result {
        events: onsets.len() as u64,
        arms,
    }
}

// ---------------------------------------------------------------------
// E2 — answer-path breakdown and latency vs query tolerance.
// ---------------------------------------------------------------------

/// One tolerance point of E2.
#[derive(Clone, Debug, Serialize)]
pub struct E2Row {
    /// Query tolerance.
    pub tolerance: f64,
    /// Cache-hit fraction.
    pub cache_hit: f64,
    /// Extrapolation fraction.
    pub extrapolated: f64,
    /// Pull fraction.
    pub pulled: f64,
    /// Mean latency, ms.
    pub latency_mean_ms: f64,
    /// p95 latency, ms.
    pub latency_p95_ms: f64,
    /// Mean answer error.
    pub error_mean: f64,
}

/// Runs E2: a trained single-sensor PRESTO pair answering NOW queries at
/// random instants, swept over tolerance.
pub fn e2_latency(days: u64, seed: u64) -> Vec<E2Row> {
    let push_tolerance = 1.0;
    let trace = LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    );
    let mut rows = Vec::new();
    for tolerance in [0.25, 0.5, 1.0, 2.0] {
        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::ModelDriven {
                    tolerance: push_tolerance,
                },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let mut proxy = PrestoProxy::new(ProxyConfig {
            push_tolerance,
            ..ProxyConfig::default()
        });
        proxy.register_sensor(0);
        let mut link = DownlinkChannel::perfect();
        let mut rng = SimRng::new(seed ^ 0xE2);
        let mut latency = Summary::new();
        let mut error = Summary::new();
        let (mut hits, mut extr, mut pulls, mut total) = (0u64, 0u64, 0u64, 0u64);
        let train_every = 120usize;
        for (i, r) in trace.iter().enumerate() {
            for msg in node.on_sample(r.timestamp, r.value, None) {
                proxy.on_uplink(&msg);
            }
            if i % train_every == 0 {
                proxy.maybe_train_and_push(r.timestamp, 0, &mut node, &mut link);
            }
            // ~1 query per 20 epochs at a random offset.
            if rng.chance(0.05) && i > trace.len() / 4 {
                let a = proxy.answer_now(r.timestamp, 0, tolerance, &mut node, &mut link);
                total += 1;
                match a.source {
                    AnswerSource::CacheHit => hits += 1,
                    AnswerSource::Extrapolated | AnswerSource::SpatialExtrapolated => extr += 1,
                    AnswerSource::Pulled => pulls += 1,
                    AnswerSource::Failed => {}
                }
                latency.record(a.latency.as_millis_f64());
                error.record((a.value - r.value).abs());
            }
        }
        let denom = total.max(1) as f64;
        rows.push(E2Row {
            tolerance,
            cache_hit: hits as f64 / denom,
            extrapolated: extr as f64 / denom,
            pulled: pulls as f64 / denom,
            latency_mean_ms: latency.mean(),
            latency_p95_ms: latency.p95(),
            error_mean: error.mean(),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E3 — extrapolation accuracy vs the push-tolerance guarantee.
// ---------------------------------------------------------------------

/// One point of E3.
#[derive(Clone, Debug, Serialize)]
pub struct E3Row {
    /// Configured push tolerance.
    pub push_tolerance: f64,
    /// Mean |extrapolated − truth| while the sensor is silent.
    pub mean_abs_error: f64,
    /// Max |extrapolated − truth|.
    pub max_abs_error: f64,
    /// Fraction of silent epochs within the tolerance bound.
    pub within_bound: f64,
    /// Pushes per day the tolerance induced.
    pub pushes_per_day: f64,
}

/// Runs E3: for each push tolerance, train a model, run model-driven
/// push, and measure the proxy-side extrapolation error at every epoch
/// where the sensor stayed silent.
pub fn e3_extrapolation(days: u64, seed: u64) -> Vec<E3Row> {
    let trace = LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    );
    let split = trace.len() / 3;
    let hist: Vec<(SimTime, f64)> = trace[..split]
        .iter()
        .map(|r| (r.timestamp, r.value))
        .collect();
    let mut rows = Vec::new();
    for push_tolerance in [0.5, 1.0, 2.0, 4.0] {
        let (model, _) = SeasonalArModel::train(&hist, 24, 2);
        // Sensor replica.
        let mut sensor_model =
            SeasonalArModel::decode_params(&model.encode_params()).expect("own params decode");
        // Proxy replica (identical).
        let mut proxy_model =
            SeasonalArModel::decode_params(&model.encode_params()).expect("own params decode");
        let mut err = Summary::new();
        let mut within = 0u64;
        let mut silent = 0u64;
        let mut pushes = 0u64;
        for r in &trace[split..] {
            let pred = sensor_model.predict(r.timestamp);
            if (r.value - pred.value).abs() > push_tolerance {
                // Push: both replicas observe the value.
                sensor_model.observe(r.timestamp, r.value);
                proxy_model.observe(r.timestamp, r.value);
                pushes += 1;
            } else {
                // Silence: the proxy extrapolates.
                silent += 1;
                let e = (proxy_model.predict(r.timestamp).value - r.value).abs();
                err.record(e);
                if e <= push_tolerance + 1e-9 {
                    within += 1;
                }
            }
        }
        let run_days = (trace.len() - split) as f64 * 31.0 / 86_400.0;
        rows.push(E3Row {
            push_tolerance,
            mean_abs_error: err.mean(),
            max_abs_error: err.max(),
            within_bound: within as f64 / silent.max(1) as f64,
            pushes_per_day: pushes as f64 / run_days,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E4 — graceful aging under storage pressure.
// ---------------------------------------------------------------------

/// One capacity point of E4.
#[derive(Clone, Debug, Serialize)]
pub struct E4Row {
    /// Flash capacity, bytes.
    pub capacity_bytes: usize,
    /// With aging: queryable history span, hours.
    pub aged_history_hours: f64,
    /// Without aging: queryable history span, hours.
    pub dropped_history_hours: f64,
    /// RMSE of the oldest queryable day's reconstruction (aging on).
    pub oldest_day_rmse: f64,
}

/// Runs E4: write a long trace into archives of shrinking capacity, with
/// and without aging, and measure how much history stays queryable.
pub fn e4_aging(days: u64, seed: u64) -> Vec<E4Row> {
    let trace = LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    );
    let horizon = trace.last().map(|r| r.timestamp).unwrap_or(SimTime::ZERO);
    let mut rows = Vec::new();
    for capacity in [256 * 1024, 64 * 1024, 16 * 1024] {
        let run = |aging: bool| -> (f64, f64) {
            let mut store = ArchiveStore::new(ArchiveConfig {
                capacity_bytes: capacity,
                aging_enabled: aging,
                ..ArchiveConfig::default()
            });
            let mut ledger = EnergyLedger::new();
            for r in &trace {
                store
                    .append_scalar(r.timestamp, r.value, &mut ledger)
                    .expect("append");
            }
            let oldest = store.oldest_available().unwrap_or(horizon);
            let span_hours = (horizon - oldest).as_secs_f64() / 3600.0;
            // RMSE over the oldest still-queryable 12 hours.
            let from = oldest;
            let to = oldest + SimDuration::from_hours(12);
            let got = store.query_range(from, to, &mut ledger).unwrap_or_default();
            let mut se = 0.0;
            let mut n = 0usize;
            for s in &got {
                // Nearest truth sample.
                let idx = (s.timestamp.as_secs_f64() / 31.0).round() as usize;
                if let Some(r) = trace.get(idx) {
                    se += (s.value - r.value) * (s.value - r.value);
                    n += 1;
                }
            }
            let rmse = if n == 0 {
                f64::NAN
            } else {
                (se / n as f64).sqrt()
            };
            (span_hours, rmse)
        };
        let (aged_span, aged_rmse) = run(true);
        let (dropped_span, _) = run(false);
        rows.push(E4Row {
            capacity_bytes: capacity,
            aged_history_hours: aged_span,
            dropped_history_hours: dropped_span,
            oldest_day_rmse: aged_rmse,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E5 — skip-graph scaling.
// ---------------------------------------------------------------------

/// One size point of E5.
#[derive(Clone, Debug, Serialize)]
pub struct E5Row {
    /// Number of proxies in the index.
    pub proxies: usize,
    /// Mean search hops.
    pub search_hops_mean: f64,
    /// Mean insert hops.
    pub insert_hops_mean: f64,
}

/// Runs E5: index sizes 2–256 proxies, measuring search and insert hops.
pub fn e5_skipgraph(seed: u64) -> Vec<E5Row> {
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32, 64, 128, 256] {
        let mut g: SkipGraph<u64> = SkipGraph::new(seed);
        let mut insert_hops = 0u64;
        for k in 0..n as u64 {
            insert_hops += g.insert(k * 10).hops;
        }
        let intro = g.introducer().expect("non-empty");
        let mut search_hops = 0u64;
        let probes = 200u64;
        let mut rng = SimRng::new(seed ^ n as u64);
        for _ in 0..probes {
            let target = rng.below(n as u64 * 10);
            search_hops += g.search(intro, target).1.hops;
        }
        rows.push(E5Row {
            proxies: n,
            search_hops_mean: search_hops as f64 / probes as f64,
            insert_hops_mean: insert_hops as f64 / n as f64,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E6 — query–sensor matching: latency bound vs energy.
// ---------------------------------------------------------------------

/// One latency-bound point of E6.
#[derive(Clone, Debug, Serialize)]
pub struct E6Row {
    /// Registered worst-case latency bound, minutes.
    pub latency_bound_min: f64,
    /// Estimated sensor energy per day at the matched settings, joules.
    pub energy_per_day_j: f64,
    /// Measured worst-case downlink notification latency, ms.
    pub measured_worst_latency_ms: f64,
    /// Whether the measured latency met the bound.
    pub bound_met: bool,
}

/// Runs E6: register a query class per latency bound, apply the matcher's
/// retune to a live sensor, and measure the real wake-up latency.
pub fn e6_matching(seed: u64) -> Vec<E6Row> {
    let mut rows = Vec::new();
    for bound_min in [1.0f64, 5.0, 10.0, 30.0, 60.0] {
        let bound = SimDuration::from_mins_f64(bound_min);
        let mut matcher = QuerySensorMatcher::new();
        matcher.register(QueryClass {
            rate_per_hour: 4.0,
            latency_bound: bound,
            tolerance: 1.0,
        });
        let retune = matcher.derive_retune().expect("one class registered");

        let mut node = SensorNode::new(
            0,
            SensorConfig {
                push: PushPolicy::ModelDriven { tolerance: 1.0 },
                ..SensorConfig::default()
            },
            LinkModel::perfect(),
        );
        let DownlinkMsg::Retune {
            lpl_check_interval: Some(lpl),
            ..
        } = retune
        else {
            panic!("retune carries an LPL interval");
        };
        node.handle_downlink(SimTime::ZERO, &retune, None);

        // Energy estimate at the matched settings.
        let duty = presto_net::DutyCycle::lpl(lpl);
        let uplink = presto_net::Mac::uplink(
            presto_net::RadioModel::mica2(),
            presto_net::FrameFormat::tinyos_mica2(),
        );
        let energy = matcher.estimated_energy_per_day(&duty, &uplink, 64);

        // Measured worst-case downlink latency at this duty cycle: the
        // preamble spans one check interval.
        let mut proxy = PrestoProxy::new(ProxyConfig {
            sensor_lpl: lpl,
            ..ProxyConfig::default()
        });
        proxy.register_sensor(0);
        let mut link = DownlinkChannel::perfect();
        let mut worst = SimDuration::ZERO;
        for k in 0..5u64 {
            let msg = DownlinkMsg::PullRequest {
                query_id: k,
                from: SimTime::ZERO,
                to: SimTime::from_secs(1),
                tolerance: 1.0,
            };
            let latency = proxy
                .rpc(SimTime::from_mins(k * 2), &msg, &mut node, &mut link)
                .latency;
            worst = worst.max(latency);
        }
        rows.push(E6Row {
            latency_bound_min: bound_min,
            energy_per_day_j: energy,
            measured_worst_latency_ms: worst.as_millis_f64(),
            bound_met: worst <= bound,
        });
        let _ = seed;
    }
    rows
}

// ---------------------------------------------------------------------
// E7 — model build/check asymmetry.
// ---------------------------------------------------------------------

/// One model-class row of E7.
#[derive(Clone, Debug, Serialize)]
pub struct E7Row {
    /// Model class label.
    pub model: String,
    /// Proxy-side training cycles.
    pub train_cycles: u64,
    /// Sensor-side per-check cycles.
    pub check_cycles: u64,
    /// Asymmetry ratio (train / check).
    pub ratio: f64,
    /// Over-the-air parameter footprint, bytes.
    pub param_bytes: usize,
}

/// Runs E7 over every model class on a week of history.
pub fn e7_asymmetry(seed: u64) -> Vec<E7Row> {
    let hist = diurnal_history(7, 1, seed); // minutely for a hefty train set
    let mut rows = Vec::new();
    let entries: Vec<(String, Box<dyn Predictor>, u64)> = vec![
        {
            let (m, r) = SeasonalModel::train(&hist, 24);
            (
                "seasonal".into(),
                Box::new(m) as Box<dyn Predictor>,
                r.train_cycles,
            )
        },
        {
            let (m, r) = ArModel::train(&hist, 4);
            (
                "ar(4)".into(),
                Box::new(m) as Box<dyn Predictor>,
                r.train_cycles,
            )
        },
        {
            let (m, r) = SeasonalArModel::train(&hist, 24, 2);
            (
                "seasonal+ar(2)".into(),
                Box::new(m) as Box<dyn Predictor>,
                r.train_cycles,
            )
        },
        {
            let (m, r) = LinearTrendModel::train(&hist);
            (
                "linear-trend".into(),
                Box::new(m) as Box<dyn Predictor>,
                r.train_cycles,
            )
        },
        {
            let (m, r) = MarkovModel::train(&hist, 8);
            (
                "markov(8)".into(),
                Box::new(m) as Box<dyn Predictor>,
                r.train_cycles,
            )
        },
    ];
    for (label, model, train_cycles) in entries {
        let check = model.check_cycles();
        rows.push(E7Row {
            model: label,
            train_cycles,
            check_cycles: check,
            ratio: train_cycles as f64 / check.max(1) as f64,
            param_bytes: model.encode_params().len(),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// E8 — timestamp correction.
// ---------------------------------------------------------------------

/// One skew point of E8.
#[derive(Clone, Debug, Serialize)]
pub struct E8Row {
    /// Injected clock skew spread, ppm.
    pub skew_ppm: f64,
    /// Ordering violations among cross-sensor detections, uncorrected.
    pub violations_raw: u64,
    /// Ordering violations after beacon-based correction.
    pub violations_corrected: u64,
    /// Mean absolute timestamp error after correction, ms.
    pub residual_error_ms: f64,
}

/// Runs E8: vehicles pass a line of sensors whose clocks drift; the
/// unified view must restore detection order after correction.
pub fn e8_clock(seed: u64) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for skew_ppm in [0.0f64, 20.0, 50.0, 100.0] {
        let sensors = 4usize;
        let mut rng = SimRng::new(seed ^ 0xE8);
        let clocks: Vec<DriftClock> = (0..sensors)
            .map(|_| DriftClock {
                offset_s: rng.gaussian_ms(0.0, 5.0),
                skew_ppm: rng.gaussian_ms(0.0, skew_ppm),
            })
            .collect();

        // Calibrate correctors with hourly beacons over a day.
        let mut correctors: Vec<ClockCorrector> =
            (0..sensors).map(|_| ClockCorrector::new()).collect();
        for h in 0..24u64 {
            let t = SimTime::from_hours(h);
            for (c, corr) in clocks.iter().zip(correctors.iter_mut()) {
                corr.observe_beacon(c.local_time(t), t);
            }
        }

        // Generate a day of traffic across the sensor line.
        let mut traffic = TrafficGen::new(
            TrafficParams {
                sensors,
                inter_sensor_gap: SimDuration::from_secs(5),
                ..TrafficParams::default()
            },
            seed,
        );
        let dets = traffic.generate(SimTime::from_days(1), SimDuration::from_hours(6));

        let raw_pairs: Vec<(SimTime, SimTime)> = dets
            .iter()
            .map(|d| (d.timestamp, clocks[d.sensor].local_time(d.timestamp)))
            .collect();
        let corrected_pairs: Vec<(SimTime, SimTime)> = dets
            .iter()
            .map(|d| {
                (
                    d.timestamp,
                    correctors[d.sensor].correct(clocks[d.sensor].local_time(d.timestamp)),
                )
            })
            .collect();

        let residual: f64 = corrected_pairs
            .iter()
            .map(|&(truth, got)| (got.as_secs_f64() - truth.as_secs_f64()).abs())
            .sum::<f64>()
            / corrected_pairs.len().max(1) as f64;

        rows.push(E8Row {
            skew_ppm,
            violations_raw: UnifiedView::<()>::ordering_violations(&raw_pairs),
            violations_corrected: UnifiedView::<()>::ordering_violations(&corrected_pairs),
            residual_error_ms: residual * 1000.0,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// A1 — ablation: model class under model-driven push.
// ---------------------------------------------------------------------

/// One model-class row of the ablation.
#[derive(Clone, Debug, Serialize)]
pub struct A1Row {
    /// Model class label.
    pub model: String,
    /// Pushes per day the class induced at tolerance 1.0.
    pub pushes_per_day: f64,
    /// Sensor push energy per day, joules.
    pub push_j_per_day: f64,
    /// Parameter footprint shipped to the sensor, bytes.
    pub param_bytes: usize,
}

/// Runs A1: every model class drives model-driven push on the same
/// trace; fewer pushes means a better predictor of this workload.
pub fn a1_model_ablation(days: u64, seed: u64) -> Vec<A1Row> {
    let trace = LabDeployment::single_sensor_trace(
        LabParams {
            events_per_day: 0.0,
            ..LabParams::default()
        },
        seed,
        SimDuration::from_days(days),
    );
    let split = trace.len() / 3;
    let hist: Vec<(SimTime, f64)> = trace[..split]
        .iter()
        .map(|r| (r.timestamp, r.value))
        .collect();

    let entries: Vec<(String, ModelKind, Vec<u8>)> = vec![
        {
            let (m, _) = SeasonalModel::train(&hist, 24);
            ("seasonal".into(), ModelKind::Seasonal, m.encode_params())
        },
        {
            let (m, _) = ArModel::train(&hist, 2);
            ("ar(2)".into(), ModelKind::Ar, m.encode_params())
        },
        {
            let (m, _) = SeasonalArModel::train(&hist, 24, 2);
            (
                "seasonal+ar(2)".into(),
                ModelKind::SeasonalAr,
                m.encode_params(),
            )
        },
        {
            let (m, _) = LinearTrendModel::train(&hist);
            (
                "linear-trend".into(),
                ModelKind::LinearTrend,
                m.encode_params(),
            )
        },
        {
            let (m, _) = MarkovModel::train(&hist, 8);
            ("markov(8)".into(), ModelKind::Markov, m.encode_params())
        },
    ];

    let run_days = (trace.len() - split) as f64 * 31.0 / 86_400.0;
    entries
        .into_iter()
        .map(|(label, kind, params)| {
            let mut node = SensorNode::new(
                0,
                SensorConfig {
                    push: PushPolicy::ModelDriven { tolerance: 1.0 },
                    ..SensorConfig::default()
                },
                LinkModel::perfect(),
            );
            node.handle_downlink(
                SimTime::ZERO,
                &DownlinkMsg::ModelUpdate {
                    kind,
                    params: params.clone(),
                },
                None,
            );
            let energy_before = node.ledger().category(presto_sim::EnergyCategory::RadioTx);
            for r in &trace[split..] {
                node.on_sample(r.timestamp, r.value, None);
            }
            let push_j = node.ledger().category(presto_sim::EnergyCategory::RadioTx)
                - energy_before;
            A1Row {
                model: label,
                pushes_per_day: node.stats().deviations_pushed as f64 / run_days,
                push_j_per_day: push_j / run_days,
                param_bytes: params.len(),
            }
        })
        .collect()
}

// Small render helper shared by the binaries.

/// Renders rows of any serializable experiment as pretty JSON plus a
/// headline.
pub fn render_json<T: Serialize>(title: &str, rows: &T) -> String {
    format!("{title}\n{}\n", crate::to_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_model_driven_never_misses() {
        let r = e1_rare_events(4, 11);
        assert!(r.events > 5);
        let md = &r.arms[0];
        assert_eq!(md.arm, "model-driven push");
        assert!(md.recall > 0.99, "recall {}", md.recall);
        // Sparse pulls miss most events.
        let pull120 = r.arms.iter().find(|a| a.arm.contains("120")).unwrap();
        assert!(
            pull120.recall < 0.5,
            "120-min pull recall {}",
            pull120.recall
        );
    }

    #[test]
    fn e2_loose_tolerance_avoids_pulls() {
        let rows = e2_latency(3, 12);
        let loose = rows.iter().find(|r| r.tolerance == 2.0).unwrap();
        let tight = rows.iter().find(|r| r.tolerance == 0.25).unwrap();
        assert!(
            loose.pulled < tight.pulled,
            "loose {} tight {}",
            loose.pulled,
            tight.pulled
        );
        assert!(loose.latency_mean_ms < tight.latency_mean_ms);
    }

    #[test]
    fn e3_errors_respect_the_bound() {
        let rows = e3_extrapolation(4, 13);
        for r in &rows {
            assert!(
                r.within_bound > 0.95,
                "tol {} within {}",
                r.push_tolerance,
                r.within_bound
            );
        }
        // Tighter tolerance → more pushes.
        assert!(rows[0].pushes_per_day > rows[3].pushes_per_day);
    }

    #[test]
    fn e4_aging_keeps_more_history() {
        let rows = e4_aging(6, 14);
        for r in &rows {
            assert!(r.aged_history_hours >= r.dropped_history_hours, "{r:?}");
        }
        // The tightest capacity must show a real gap.
        let tight = rows.last().unwrap();
        assert!(
            tight.aged_history_hours > tight.dropped_history_hours * 1.5,
            "{tight:?}"
        );
    }

    #[test]
    fn e5_hops_grow_sublinearly() {
        let rows = e5_skipgraph(15);
        let h2 = rows.first().unwrap().search_hops_mean;
        let h256 = rows.last().unwrap().search_hops_mean;
        let _ = h2;
        // 128× more proxies, hops must stay far below linear growth.
        assert!(h256 < 40.0, "{h256}");
    }

    #[test]
    fn e6_relaxed_bounds_save_energy_and_meet_latency() {
        let rows = e6_matching(16);
        assert!(rows.iter().all(|r| r.bound_met), "{rows:?}");
        let tight = rows.first().unwrap();
        let relaxed = rows.last().unwrap();
        assert!(relaxed.energy_per_day_j < tight.energy_per_day_j);
    }

    #[test]
    fn e7_all_models_are_asymmetric() {
        let rows = e7_asymmetry(17);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.ratio > 100.0, "{} ratio {}", r.model, r.ratio);
            assert!(r.param_bytes < 1000, "{} params {}", r.model, r.param_bytes);
        }
    }

    #[test]
    fn a1_combined_model_is_quietest() {
        let rows = a1_model_ablation(3, 19);
        assert_eq!(rows.len(), 5);
        let by = |name: &str| {
            rows.iter()
                .find(|r| r.model.starts_with(name))
                .expect("row exists")
                .pushes_per_day
        };
        // The combined model must beat the seasonal table alone and the
        // trend line (the weakest predictors of diurnal + AR data).
        assert!(by("seasonal+ar") < by("seasonal"), "{rows:?}");
        assert!(by("seasonal+ar") < by("linear-trend"), "{rows:?}");
        // Every class keeps its parameters shippable.
        assert!(rows.iter().all(|r| r.param_bytes < 1024));
    }

    #[test]
    fn e8_correction_removes_violations() {
        let rows = e8_clock(18);
        let worst = rows.last().unwrap();
        assert!(
            worst.violations_raw > 0,
            "no violations injected at 100 ppm"
        );
        assert!(
            worst.violations_corrected < worst.violations_raw / 10,
            "{worst:?}"
        );
        assert!(worst.residual_error_ms < 1000.0);
    }
}
