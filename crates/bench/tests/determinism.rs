//! Dynamic determinism audit (tier-1): a same-seed double run of the
//! fleet scenario arm must be byte-identical — full telemetry snapshot
//! and completion set. This catches at runtime whatever the static D1
//! pass (`presto-lint`) misses: any iteration-order, wall-clock, or
//! uninitialized-state leak into simulated behavior shows up here as a
//! diverging counter or completion line.

use presto_bench::fleet::{determinism_fingerprint, FleetScenarioConfig};

#[test]
fn same_seed_double_run_is_byte_identical() {
    // A shrunken quick config: enough warmup to build models and enough
    // query phase to exercise submit/shed/pull/fail paths, small enough
    // for a debug-mode test.
    let cfg = FleetScenarioConfig {
        warmup_hours: 3,
        query_hours: 1,
        ..FleetScenarioConfig::quick()
    };
    let a = determinism_fingerprint(&cfg, true);
    let b = determinism_fingerprint(&cfg, true);

    assert!(
        !a.completions.is_empty(),
        "audit vacuous: no completions recorded"
    );
    assert!(
        a.snapshot.contains("pipeline."),
        "audit vacuous: snapshot missing pipeline section"
    );
    assert_eq!(
        a.snapshot, b.snapshot,
        "telemetry snapshot diverged between same-seed runs"
    );
    assert_eq!(
        a.completions, b.completions,
        "completion set diverged between same-seed runs"
    );
}
